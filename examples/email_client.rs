//! The email client of §III-C: horizontal decomposition in action.
//!
//! Builds the decomposed client, drives a normal mail workflow, then
//! delivers a booby-trapped HTML mail that exploits the renderer — and
//! shows that the compromise is contained, while the same exploit takes
//! the vertical monolith completely.
//!
//! ```text
//! cargo run --example email_client
//! ```

use lateral::apps::email::{horizontal_manifest, HorizontalEmail, VerticalEmail, EXPLOIT_MARKER};
use lateral::components::legacyos::LEGACY_EXPLOIT;
use lateral::core::analysis;
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::Substrate;

fn pool() -> Vec<Box<dyn Substrate>> {
    vec![Box::new(SoftwareSubstrate::new("email-example"))]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- the horizontal client ------------------------------------------
    let mut app = HorizontalEmail::build(pool())?;
    println!("composed the horizontal email client:");
    for name in app.assembly.component_names() {
        if name != "__env__" {
            println!("  {name} on {}", app.assembly.substrate_of(&name)?);
        }
    }

    // Normal workflow: store mail, ask the address book, render a mail.
    app.assembly.call_component_badged(
        "mail-store",
        lateral::substrate::cap::Badge(0xE4F),
        b"put:user=env;Subject: lunch?",
    )?;
    let rendered = app.assembly.call_component(
        "html-renderer",
        b"<p>Dear <b>user</b>, lunch at <i>noon</i>?</p>",
    )?;
    println!("\nrendered mail: {}", String::from_utf8_lossy(&rendered));

    // ---- the attack -------------------------------------------------------
    let evil_mail = format!("<p>You won!</p><script>{EXPLOIT_MARKER}</script>");
    println!("\ndelivering booby-trapped mail to the renderer…");
    app.deliver_hostile("html-renderer", evil_mail.as_bytes())?;
    let report = app.attack_report("html-renderer")?;
    println!("renderer exploited: {}", report.active);
    println!(
        "attacker escalation: {} OOB reads succeeded, {} forged caps honored, \
         {} channels available",
        report.oob_reads_succeeded, report.forged_succeeded, report.granted_channels
    );
    println!("contained by the substrate: {}", report.contained());

    // Static analysis agrees with the runtime result.
    let br = analysis::blast_radius(&horizontal_manifest(), "html-renderer");
    println!(
        "static blast radius of the renderer: {} assets",
        br.reachable_assets.len()
    );

    // ---- the same attack against the vertical monolith --------------------
    let mut monolith = VerticalEmail::build(pool())?;
    monolith.deliver_hostile("html-renderer", LEGACY_EXPLOIT.as_bytes())?;
    match monolith.loot()? {
        Some(loot) => {
            println!("\nvertical monolith after ONE renderer bug — attacker loots:\n  {loot}")
        }
        None => println!("\nvertical monolith survived (unexpected)"),
    }

    println!("\nFigure 1, reproduced: horizontal aggregation contains what the");
    println!("vertical stack surrenders wholesale.");
    Ok(())
}
