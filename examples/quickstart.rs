//! Quickstart: write a trusted component once, run it on two different
//! isolation substrates, seal data to its identity, and attest it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::hw::machine::MachineBuilder;
use lateral::microkernel::Microkernel;
use lateral::substrate::attest::TrustPolicy;
use lateral::substrate::cap::Badge;
use lateral::substrate::component::{Component, ComponentError, Invocation};
use lateral::substrate::software::SoftwareSubstrate;
use lateral::substrate::substrate::{DomainContext, DomainSpec, Substrate};

/// A tiny trusted component: a counter that seals its state on demand.
/// Note that it is written purely against the unified interface — it has
/// no idea which substrate it runs on.
struct TrustedCounter {
    count: u64,
}

impl Component for TrustedCounter {
    fn label(&self) -> &str {
        "trusted-counter"
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        match inv.data {
            b"bump" => {
                self.count += 1;
                Ok(self.count.to_le_bytes().to_vec())
            }
            b"seal" => ctx
                .seal(&self.count.to_le_bytes())
                .map_err(|e| ComponentError::new(e.to_string())),
            _ => Err(ComponentError::new("unknown request")),
        }
    }
}

fn drive(substrate: &mut dyn Substrate) -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "--- running on the '{}' substrate ---",
        substrate.profile().name
    );

    // Spawn the component in its own protection domain.
    let counter = substrate.spawn(
        DomainSpec::named("counter").with_image(b"trusted-counter v1"),
        Box::new(TrustedCounter { count: 0 }),
    )?;
    let client = substrate.spawn(
        DomainSpec::named("client"),
        Box::new(lateral::substrate::testkit::Echo),
    )?;

    // POLA: communication exists only because we grant it.
    let cap = substrate.grant_channel(client, counter, Badge(1))?;
    for _ in 0..3 {
        substrate.invoke(client, &cap, b"bump")?;
    }
    let reply = substrate.invoke(client, &cap, b"bump")?;
    println!(
        "counter value: {}",
        u64::from_le_bytes(reply.as_slice().try_into()?)
    );

    // Sealed storage: bound to the component's code identity.
    let sealed = substrate.invoke(client, &cap, b"seal")?;
    println!(
        "sealed state: {} bytes (opaque to everyone else)",
        sealed.len()
    );

    // Attestation, where the substrate has a hardware secret.
    match substrate.attest(counter, b"quickstart-binding") {
        Ok(evidence) => {
            let mut policy = TrustPolicy::new();
            policy.trust_platform(substrate.platform_verifying_key()?);
            policy.expect_measurement(substrate.measurement(counter)?);
            policy.verify(&evidence)?;
            println!("attestation: verified ({})", evidence.substrate);
        }
        Err(e) => println!("attestation: {e}"),
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pure software isolation (the Rust type system as substrate).
    let mut software = SoftwareSubstrate::new("quickstart");
    drive(&mut software)?;

    // 2. The same component, unmodified, on a simulated microkernel with
    //    a measured-boot attestation identity.
    let machine = MachineBuilder::new()
        .name("quickstart-board")
        .frames(64)
        .build();
    let mut kernel = Microkernel::new(machine, "quickstart").with_attestation(
        SigningKey::from_seed(b"quickstart platform"),
        Digest::of(b"measured boot stack"),
    );
    drive(&mut kernel)?;

    println!("same component, two substrates — the paper's §III-A in action");
    Ok(())
}
