//! Generic cross-machine composition: a sealing vault exported from an
//! SGX assembly, consumed from a laptop over an adversarial network,
//! gated on channel-bound attestation — all through the reusable
//! `lateral::core::remote` machinery (no application-specific protocol
//! code).
//!
//! ```text
//! cargo run --example distributed_vault
//! ```

use lateral::core::composer::compose;
use lateral::core::manifest::{AppManifest, ComponentManifest};
use lateral::core::remote::{call, establish, RemoteClient, RemoteServer, ServiceExport};
use lateral::crypto::sign::SigningKey;
use lateral::hw::machine::MachineBuilder;
use lateral::net::channel::ChannelPolicy;
use lateral::net::sim::Network;
use lateral::net::Addr;
use lateral::sgx::Sgx;
use lateral::substrate::attacker::AttackerModel;
use lateral::substrate::attest::TrustPolicy;
use lateral::substrate::cap::Badge;
use lateral::substrate::component::Component;
use lateral::substrate::substrate::Substrate;
use lateral::substrate::testkit::Sealer;

fn factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
    (cm.name == "vault").then(|| Box::new(Sealer) as Box<dyn Component>)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut net = Network::new("vault-demo");

    // --- cloud side: compose the vault; it lands in an SGX enclave ------
    let sgx = Sgx::new(
        MachineBuilder::new().name("cloud").frames(256).build(),
        "cloud",
    );
    let quoting_key = sgx.platform_verifying_key()?;
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(sgx)];
    let app = AppManifest::new(
        "vault-service",
        vec![ComponentManifest::new("vault")
            .image(b"vault v1 (audited)")
            .requires(&[AttackerModel::RemoteSoftware, AttackerModel::PhysicalBus])],
    );
    let mut cloud = compose(&app, pool, &mut factory)?;
    println!("vault placed on: {}", cloud.substrate_of("vault")?);

    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("vault.cloud.example"),
        ServiceExport {
            component: "vault".into(),
            badge: Badge(0x0B57),
            identity: SigningKey::from_seed(b"vault channel id"),
            client_policy: ChannelPolicy::open(),
            attest: true, // bind SGX evidence into every handshake
        },
    );

    // --- laptop side: trust only the audited build on genuine hardware --
    let mut trust = TrustPolicy::new();
    trust.trust_platform(quoting_key);
    trust.expect_measurement(cloud.measurement("vault")?);
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("laptop.example"),
        Addr::new("vault.cloud.example"),
        SigningKey::from_seed(b"laptop id"),
        ChannelPolicy::open().with_attestation(trust),
        None,
    );

    establish(&mut net, &mut client, None, &mut server, &mut cloud)?;
    let attested = client.peer().unwrap().attested.clone().unwrap();
    println!(
        "connected; the vault proved (in-channel) it runs {} on {}",
        attested.measurement.short_hex(),
        attested.substrate
    );

    // Seal a secret remotely; only this vault identity can ever unseal it.
    let sealed = call(
        &mut net,
        &mut client,
        &mut server,
        &mut cloud,
        b"s:the launch codes",
    )?;
    println!("sealed remotely: {} bytes", sealed.len());
    let mut req = b"u:".to_vec();
    req.extend_from_slice(&sealed);
    let plain = call(&mut net, &mut client, &mut server, &mut cloud, &req)?;
    println!("unsealed remotely: {:?}", String::from_utf8_lossy(&plain));

    println!(
        "\nnetwork adversary saw {} packets — zero plaintext in any of them",
        net.recorded().len()
    );
    let leaky = net
        .recorded()
        .iter()
        .any(|p| p.payload.windows(16).any(|w| w == b"the launch codes"));
    println!("plaintext leaked: {leaky}");
    Ok(())
}
