//! The smart-meter world of Figure 3, end to end.
//!
//! ```text
//! cargo run --example smart_meter
//! ```

use lateral::apps::smart_meter::{BillingOutcome, SmartMeterWorld, WorldConfig};
use lateral::net::sim::AttackMode;

fn main() {
    // ---- the honest world --------------------------------------------------
    println!("== honest configuration ==");
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    match world.billing_round() {
        BillingOutcome::Billed(ack) => println!("billing round succeeded: {ack}"),
        other => println!("unexpected: {other:?}"),
    }
    println!(
        "identified records retained by the utility: {}",
        world.retained_identified_records()
    );

    // ---- attack: the utility swaps in a manipulated anonymizer -------------
    println!("\n== manipulated anonymizer ==");
    let mut world = SmartMeterWorld::new(WorldConfig {
        manipulated_anonymizer: true,
        ..WorldConfig::default()
    });
    match world.billing_round() {
        BillingOutcome::Refused(reason) => {
            println!("the METER refused before sending any reading:");
            println!("  {reason}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // ---- attack: a software emulation pretends to be a meter ---------------
    println!("\n== fake meter (software emulation) ==");
    let mut world = SmartMeterWorld::new(WorldConfig {
        fake_meter: true,
        ..WorldConfig::default()
    });
    match world.billing_round() {
        BillingOutcome::Refused(reason) => {
            println!("the UTILITY refused the unattested meter:");
            println!("  {reason}");
        }
        other => println!("unexpected: {other:?}"),
    }

    // ---- attack: in-path adversary ------------------------------------------
    println!("\n== in-path corruption ==");
    let mut world = SmartMeterWorld::new(WorldConfig {
        network_attack: AttackMode::CorruptAll,
        ..WorldConfig::default()
    });
    println!("outcome: {:?}", world.billing_round());

    // ---- attack: compromised Android tries to join a DDoS -------------------
    println!("\n== Android egress flood ==");
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    let (reached, denied) = world.android_flood("ddos-victim.example.net", 100, 500);
    println!("{reached} packets reached the victim, {denied} denied by the gateway");

    // ---- attack: phishing on the appliance display ---------------------------
    println!("\n== phishing on the appliance ==");
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    let (indicator, screen) = world.phishing_attempt();
    println!("screen painted by Android:  {screen}");
    println!("trusted indicator shows:    {indicator}");
    println!("\nFigure 3, reproduced.");
}
