//! Attested channels over an adversarial network (§II-D, §III-C).
//!
//! A client will only complete a handshake with a server that proves —
//! with evidence bound to this very channel — that it runs the expected
//! code on trusted hardware. The example shows a successful attested
//! handshake, a relay attack, and an emulation attack, all failing for
//! exactly the reasons §II-D gives.
//!
//! ```text
//! cargo run --example attested_channel
//! ```

use lateral::crypto::rng::Drbg;
use lateral::crypto::sign::SigningKey;
use lateral::crypto::Digest;
use lateral::net::channel::{ChannelPolicy, ClientHandshake, ServerHandshake};
use lateral::substrate::attest::{AttestationEvidence, TrustPolicy};

fn main() {
    let client_id = SigningKey::from_seed(b"client identity");
    let server_id = SigningKey::from_seed(b"server identity");
    // The "hardware" attestation key of the genuine platform and the
    // code identity the client insists on.
    let platform = SigningKey::from_seed(b"genuine platform");
    let audited = Digest::of(b"audited service v1");

    let mut trust = TrustPolicy::new();
    trust.trust_platform(platform.verifying_key());
    trust.expect_measurement(audited);
    let policy = ChannelPolicy::open().with_attestation(trust);

    // ---- genuine server ------------------------------------------------------
    let mut crng = Drbg::from_seed(b"client rng");
    let mut srng = Drbg::from_seed(b"server rng");
    let (cstate, hello) = ClientHandshake::start(client_id.clone(), &mut crng);
    let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
    let evidence = AttestationEvidence::sign(
        "sgx",
        &platform,
        audited,
        Digest::ZERO,
        pending.transcript().as_bytes(), // bound to THIS channel
    );
    let (awaiting, server_hello) = pending.respond(Some(evidence), &hello);
    let (mut chan, finish, info) = cstate.finish(&server_hello, &policy, |_| None).unwrap();
    let (mut schan, _) = awaiting.complete(&finish, &ChannelPolicy::open()).unwrap();
    println!(
        "attested handshake succeeded; peer measurement: {}",
        info.attested.unwrap().measurement.short_hex()
    );
    let record = chan.seal(b"the secret reading");
    println!(
        "record round trip: {:?}",
        String::from_utf8_lossy(&schan.open(&record).unwrap())
    );

    // ---- relay attack: evidence from a different channel ----------------------
    let mut crng = Drbg::from_seed(b"client rng 2");
    let mut srng = Drbg::from_seed(b"mallory rng");
    let (cstate, hello) = ClientHandshake::start(client_id.clone(), &mut crng);
    let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
    let stale_evidence = AttestationEvidence::sign(
        "sgx",
        &platform,
        audited,
        Digest::ZERO,
        Digest::of(b"some other session").as_bytes(), // NOT this channel
    );
    let (_await, server_hello) = pending.respond(Some(stale_evidence), &hello);
    match cstate.finish(&server_hello, &policy, |_| None) {
        Err(e) => println!("relayed evidence rejected: {e}"),
        Ok(_) => println!("relay attack worked (unexpected!)"),
    }

    // ---- emulation attack: right words, wrong key ------------------------------
    let emulator_platform = SigningKey::from_seed(b"emulator");
    let mut crng = Drbg::from_seed(b"client rng 3");
    let mut srng = Drbg::from_seed(b"emulator rng");
    let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
    let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
    let fake_evidence = AttestationEvidence::sign(
        "sgx",
        &emulator_platform, // not in the trust policy
        audited,
        Digest::ZERO,
        pending.transcript().as_bytes(),
    );
    let (_await, server_hello) = pending.respond(Some(fake_evidence), &hello);
    match cstate.finish(&server_hello, &policy, |_| None) {
        Err(e) => println!("emulated platform rejected: {e}"),
        Ok(_) => println!("emulation worked (unexpected!)"),
    }

    println!("\n§II-D reproduced: \"proof of access to the secret could not be");
    println!("provided by an imposter as long as the integrity of the trust");
    println!("anchor is intact.\"");
}
