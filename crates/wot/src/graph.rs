//! The trust graph: proof ingestion, sparse row-normalized trust
//! matrix, and a deterministic incremental EigenTrust fixed point.
//!
//! # Scoring model
//!
//! Reviewer keys are graph nodes. Active [`TrustProof`]s with a
//! positive rating become weighted edges (`neutral`=1, `trust`=2,
//! `high`=3); `distrust` edges are absent from the matrix, as in
//! EigenTrust's non-negative local trust. Each row is normalized to
//! sum to (at most) 1.0 in Q32.32. Seeded roots form the pre-trust
//! vector `p`; the score vector is the fixed point of
//!
//! ```text
//! t = α·p + (1−α)·Cᵀt        (dangling rows teleport to p)
//! ```
//!
//! computed entirely in Q32.32 with `u128` accumulation — no floats
//! anywhere, so the score vector hashes to the same
//! [`TrustGraph::scores_digest`] on every backend and host.
//!
//! # Exact incremental recomputation
//!
//! The iteration map `F` above, *as implemented* (floor rounding once
//! per component), is **monotone**: `x ≤ y` componentwise implies
//! `F(x) ≤ F(y)`. A full recompute starts from `x₀ = α·p`; since
//! `F(x₀) ≥ x₀`, the iterates form a nondecreasing, bounded integer
//! chain that terminates at the **least fixed point** `lfp` of `F` —
//! a canonical value, independent of iteration count.
//!
//! An incremental recompute must land on *exactly* that value to keep
//! the digest gate honest. Re-iterating from the previous fixed point
//! alone cannot promise this (floor rounding admits multiple fixed
//! points). Instead we restart from
//!
//! ```text
//! y₀ᵢ = max(α·pᵢ, prevᵢ − D)
//! ```
//!
//! where `D ≥ ‖lfp − prev‖∞` is a drift bound computed from one probe
//! iteration: contraction gives `‖lfp − prev‖₁ ≤ (‖F(prev) − prev‖₁
//! + 2n)/α`. Then `x₀ ≤ y₀ ≤ lfp`, and monotonicity squeezes
//! `Fᵏ(x₀) ≤ Fᵏ(y₀) ≤ lfp` for every k — so the warm chain reaches
//! **exactly** `lfp`, in at most as many steps as the cold chain, and
//! usually far fewer. [`ConvergeReport`] counters prove the saved
//! work. Overestimating `D` only costs iterations, never correctness.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lateral_crypto::Digest;

use crate::fixed::{self, ONE};
use crate::proof::{Proof, Rating, ReviewProof, Revocation, TrustProof};
use crate::WotError;

/// Domain separator for [`TrustGraph::scores_digest`].
const SCORES_DIGEST_DOMAIN: &[u8] = b"lateral.wot.scores.v1";

/// Default teleport weight α = 0.2 in Q32.32 (exact).
const DEFAULT_ALPHA: u64 = ONE / 5;

/// Iteration budget; hitting it is reported, never panicked on.
const MAX_ITERS: u64 = 100_000;

/// What happened to an ingested proof.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IngestOutcome {
    /// The proof filled an empty slot (or a revocation removed an
    /// active proof).
    Applied,
    /// The proof replaced an older proof in its slot.
    Superseded,
    /// An older (or tie-losing) proof for an already-filled slot;
    /// ignored.
    Stale,
    /// Exactly this proof (same id) is already active, or the
    /// revocation was already recorded; ignored.
    Duplicate,
    /// The proof's id is revoked by its issuer; refused.
    Revoked,
    /// A revocation whose target proof has not been seen yet; recorded
    /// so the target is refused if it ever arrives.
    Orphan,
}

/// How the last [`TrustGraph::converge`] ran.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConvergeMode {
    /// Nothing was dirty; the previous fixed point stands.
    Clean,
    /// Cold start from `α·p` (first run, or pre-trust changed).
    Full,
    /// Warm start from the drift-bounded previous fixed point.
    Incremental,
}

/// Counters from one convergence run — the proof of saved work.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConvergeReport {
    /// Cold, warm, or nothing to do.
    pub mode: ConvergeMode,
    /// Iterations of the fixed-point map (including the warm-start
    /// probe iteration).
    pub iterations: u64,
    /// Rows of the trust matrix re-normalized this run.
    pub rows_rebuilt: u64,
    /// Drift bound `D` used for the warm start (0 for full runs).
    pub drift_bound: u64,
    /// Nodes in the graph at convergence time.
    pub nodes: u64,
    /// Positive edges in the matrix at convergence time.
    pub edges: u64,
    /// False only if the iteration budget ran out first.
    pub converged: bool,
}

/// Aggregate counters, in the style of `RegistryStats`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct WotStats {
    /// Trust/review proofs applied (new slot or supersede).
    pub proofs_applied: u64,
    /// Proofs ignored as stale or duplicate.
    pub proofs_stale: u64,
    /// Proofs refused because their id was revoked.
    pub proofs_refused_revoked: u64,
    /// Revocations that removed an active proof.
    pub revocations_applied: u64,
    /// Revocations recorded before their target was seen.
    pub revocations_orphaned: u64,
    /// Cold convergence runs.
    pub full_recomputes: u64,
    /// Warm convergence runs.
    pub incremental_recomputes: u64,
    /// Iterations spent in cold runs.
    pub full_iterations: u64,
    /// Iterations spent in warm runs (probes included).
    pub incremental_iterations: u64,
}

impl fmt::Display for WotStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "applied={} stale={} refused={} revoked={} orphaned={} full={}({} iters) incremental={}({} iters)",
            self.proofs_applied,
            self.proofs_stale,
            self.proofs_refused_revoked,
            self.revocations_applied,
            self.revocations_orphaned,
            self.full_recomputes,
            self.full_iterations,
            self.incremental_recomputes,
            self.incremental_iterations
        )
    }
}

/// The active proof occupying a (truster, trustee) or
/// (reviewer, subject) slot. Supersede order is `(epoch, id)`
/// lexicographic — deterministic and ingestion-order independent.
#[derive(Clone, Copy, Debug)]
struct ActiveProof {
    epoch: u64,
    id: Digest,
    rating: Rating,
}

impl ActiveProof {
    fn outranks(&self, epoch: u64, id: Digest) -> bool {
        (self.epoch, self.id.0) >= (epoch, id.0)
    }
}

/// Where a proof id lives, for revocation targeting.
#[derive(Clone, Copy, Debug)]
enum SlotRef {
    Trust(u32, u32),
    Review(u32, Digest),
}

/// The web-of-trust graph. See the [module docs](self) for the model.
///
/// ```
/// use lateral_crypto::sign::SigningKey;
/// use lateral_crypto::Digest;
/// use lateral_wot::{Rating, ReviewProof, TrustGraph, TrustProof};
///
/// let root = SigningKey::from_seed(b"root reviewer");
/// let peer = SigningKey::from_seed(b"peer reviewer");
/// let mut g = TrustGraph::new();
/// g.seed_root(&root.verifying_key().to_bytes());
/// g.ingest_trust(&TrustProof::issue(&root, &peer.verifying_key(), Rating::High, 1)).unwrap();
/// let subject = Digest::of(b"component image");
/// g.ingest_review(&ReviewProof::issue(&peer, subject, Rating::Trust, 1)).unwrap();
/// assert!(g.subject_score_milli(subject) > 0);
/// ```
pub struct TrustGraph {
    alpha: u64,
    epsilon: u64,
    keys: Vec<[u8; 32]>,
    ids: BTreeMap<[u8; 32], u32>,
    roots: BTreeSet<u32>,
    /// Raw positive out-edge weights per truster node.
    out_edges: Vec<BTreeMap<u32, u32>>,
    /// Normalized rows (Q32.32 weights), rebuilt lazily per dirty row.
    rows: Vec<Vec<(u32, u64)>>,
    dirty_rows: BTreeSet<u32>,
    /// Active trust proofs by (truster, trustee).
    trust_slots: BTreeMap<(u32, u32), ActiveProof>,
    /// Active reviews: subject → reviewer node → proof.
    reviews: BTreeMap<Digest, BTreeMap<u32, ActiveProof>>,
    /// Proof id → where it is active (for revocation targeting).
    by_id: BTreeMap<Digest, SlotRef>,
    /// Revoked proof id → revoking issuer key.
    revoked: BTreeMap<Digest, [u8; 32]>,
    /// Last converged score vector (Q32.32), indexed by node.
    scores: Vec<u64>,
    /// Structural change since the last convergence.
    matrix_dirty: bool,
    /// Warm start impossible (first run / pre-trust or α changed).
    full_required: bool,
    /// Node count at last convergence (root-less pre-trust depends on
    /// it, so growth forces a full run in that configuration).
    nodes_at_converge: usize,
    /// Bumped on every applied state change; the registry folds this
    /// into its verdict-cache key.
    epoch: u64,
    stats: WotStats,
    last_report: Option<ConvergeReport>,
}

impl Default for TrustGraph {
    fn default() -> TrustGraph {
        TrustGraph::new()
    }
}

impl fmt::Debug for TrustGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TrustGraph({} nodes, {} edges, {} reviewed subjects, epoch {})",
            self.keys.len(),
            self.edge_count(),
            self.reviews.len(),
            self.epoch
        )
    }
}

impl TrustGraph {
    /// An empty graph with α = 0.2 and exact (ε = 0) convergence.
    pub fn new() -> TrustGraph {
        TrustGraph {
            alpha: DEFAULT_ALPHA,
            epsilon: 0,
            keys: Vec::new(),
            ids: BTreeMap::new(),
            roots: BTreeSet::new(),
            out_edges: Vec::new(),
            rows: Vec::new(),
            dirty_rows: BTreeSet::new(),
            trust_slots: BTreeMap::new(),
            reviews: BTreeMap::new(),
            by_id: BTreeMap::new(),
            revoked: BTreeMap::new(),
            scores: Vec::new(),
            matrix_dirty: false,
            full_required: true,
            nodes_at_converge: 0,
            epoch: 0,
            stats: WotStats::default(),
            last_report: None,
        }
    }

    /// Sets the convergence epsilon (raw Q32.32 L1 mass). The default
    /// 0 iterates to the exact least fixed point — required for the
    /// full-vs-incremental byte-identity guarantee; a nonzero ε trades
    /// that exactness for fewer iterations.
    pub fn set_epsilon(&mut self, epsilon: u64) {
        if self.epsilon != epsilon {
            self.epsilon = epsilon;
            self.full_required = true;
            self.matrix_dirty = true;
        }
    }

    /// Seeds `key` as a trust root: it joins the pre-trust vector
    /// (uniform over all roots) that anchors every score. Changing the
    /// root set forces the next convergence to run cold.
    pub fn seed_root(&mut self, key: &[u8; 32]) {
        let id = self.intern(key);
        if self.roots.insert(id) {
            self.full_required = true;
            self.matrix_dirty = true;
            self.epoch += 1;
        }
    }

    /// The trust epoch: bumped on every applied state change. The
    /// registry folds it into the verdict-cache key so stale verdicts
    /// can never outlive a score change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Nodes (reviewer keys) seen so far.
    pub fn node_count(&self) -> usize {
        self.keys.len()
    }

    /// Positive trust edges in the matrix.
    pub fn edge_count(&self) -> usize {
        self.out_edges.iter().map(BTreeMap::len).sum()
    }

    /// Subjects with at least one active review.
    pub fn reviewed_subject_count(&self) -> usize {
        self.reviews.len()
    }

    /// Aggregate counters.
    pub fn stats(&self) -> WotStats {
        self.stats
    }

    /// The report from the most recent [`TrustGraph::converge`].
    pub fn last_report(&self) -> Option<ConvergeReport> {
        self.last_report
    }

    /// Forces the next [`TrustGraph::converge`] to run cold — the
    /// audit path E16 uses to prove warm results byte-identical.
    pub fn force_full(&mut self) {
        self.full_required = true;
        self.matrix_dirty = true;
    }

    /// Ingests any proof kind. Signatures are verified here; the graph
    /// never holds an unverified proof.
    ///
    /// # Errors
    ///
    /// [`WotError::Signature`] on a bad signature, [`WotError::Graph`]
    /// on semantic rejection (self-trust, revocation issuer mismatch).
    pub fn ingest(&mut self, proof: &Proof) -> Result<IngestOutcome, WotError> {
        match proof {
            Proof::Review(p) => self.ingest_review(p),
            Proof::Trust(p) => self.ingest_trust(p),
            Proof::Revocation(p) => self.ingest_revocation(p),
        }
    }

    /// Ingests a trust edge. See [`TrustGraph::ingest`].
    ///
    /// # Errors
    ///
    /// As for [`TrustGraph::ingest`].
    pub fn ingest_trust(&mut self, p: &TrustProof) -> Result<IngestOutcome, WotError> {
        p.verify_signature()?;
        if p.truster == p.trustee {
            return Err(WotError::Graph("self-trust edge rejected".into()));
        }
        let id = p.id();
        if self.refused_as_revoked(&id, &p.truster) {
            return Ok(IngestOutcome::Revoked);
        }
        let a = self.intern(&p.truster);
        let b = self.intern(&p.trustee);
        let outcome = match self.trust_slots.get(&(a, b)).copied() {
            Some(active) if active.id == id => {
                self.stats.proofs_stale += 1;
                return Ok(IngestOutcome::Duplicate);
            }
            Some(active) if active.outranks(p.epoch, id) => {
                self.stats.proofs_stale += 1;
                return Ok(IngestOutcome::Stale);
            }
            Some(active) => {
                self.by_id.remove(&active.id);
                IngestOutcome::Superseded
            }
            None => IngestOutcome::Applied,
        };
        self.trust_slots.insert(
            (a, b),
            ActiveProof {
                epoch: p.epoch,
                id,
                rating: p.rating,
            },
        );
        self.by_id.insert(id, SlotRef::Trust(a, b));
        self.set_edge(a, b, p.rating.edge_weight());
        self.stats.proofs_applied += 1;
        self.epoch += 1;
        Ok(outcome)
    }

    /// Ingests a component review. See [`TrustGraph::ingest`].
    ///
    /// # Errors
    ///
    /// As for [`TrustGraph::ingest`].
    pub fn ingest_review(&mut self, p: &ReviewProof) -> Result<IngestOutcome, WotError> {
        p.verify_signature()?;
        let id = p.id();
        if self.refused_as_revoked(&id, &p.reviewer) {
            return Ok(IngestOutcome::Revoked);
        }
        let r = self.intern(&p.reviewer);
        let slot = self.reviews.entry(p.subject).or_default();
        let outcome = match slot.get(&r).copied() {
            Some(active) if active.id == id => {
                self.stats.proofs_stale += 1;
                return Ok(IngestOutcome::Duplicate);
            }
            Some(active) if active.outranks(p.epoch, id) => {
                self.stats.proofs_stale += 1;
                return Ok(IngestOutcome::Stale);
            }
            Some(active) => {
                self.by_id.remove(&active.id);
                IngestOutcome::Superseded
            }
            None => IngestOutcome::Applied,
        };
        slot.insert(
            r,
            ActiveProof {
                epoch: p.epoch,
                id,
                rating: p.rating,
            },
        );
        self.by_id.insert(id, SlotRef::Review(r, p.subject));
        self.stats.proofs_applied += 1;
        self.epoch += 1;
        Ok(outcome)
    }

    /// Ingests a revocation. The issuer must be the revoked proof's
    /// issuer; a revocation arriving *before* its target is recorded
    /// and refuses the target on arrival.
    ///
    /// # Errors
    ///
    /// As for [`TrustGraph::ingest`].
    pub fn ingest_revocation(&mut self, p: &Revocation) -> Result<IngestOutcome, WotError> {
        p.verify_signature()?;
        if self.revoked.contains_key(&p.revokes) {
            self.stats.proofs_stale += 1;
            return Ok(IngestOutcome::Duplicate);
        }
        match self.by_id.get(&p.revokes).copied() {
            Some(SlotRef::Trust(a, b)) => {
                if self.keys[a as usize] != p.issuer {
                    return Err(WotError::Graph(
                        "revocation issuer is not the proof issuer".into(),
                    ));
                }
                self.trust_slots.remove(&(a, b));
                self.by_id.remove(&p.revokes);
                self.set_edge(a, b, 0);
                self.revoked.insert(p.revokes, p.issuer);
                self.stats.revocations_applied += 1;
                self.epoch += 1;
                Ok(IngestOutcome::Applied)
            }
            Some(SlotRef::Review(r, subject)) => {
                if self.keys[r as usize] != p.issuer {
                    return Err(WotError::Graph(
                        "revocation issuer is not the proof issuer".into(),
                    ));
                }
                if let Some(slot) = self.reviews.get_mut(&subject) {
                    slot.remove(&r);
                    if slot.is_empty() {
                        self.reviews.remove(&subject);
                    }
                }
                self.by_id.remove(&p.revokes);
                self.revoked.insert(p.revokes, p.issuer);
                self.stats.revocations_applied += 1;
                self.epoch += 1;
                Ok(IngestOutcome::Applied)
            }
            None => {
                self.revoked.insert(p.revokes, p.issuer);
                self.stats.revocations_orphaned += 1;
                self.epoch += 1;
                Ok(IngestOutcome::Orphan)
            }
        }
    }

    /// The converged score of `key` in Q32.32 (0 for unknown keys).
    /// Converges first if the graph is dirty.
    pub fn score_of(&mut self, key: &[u8; 32]) -> u64 {
        self.converge();
        match self.ids.get(key) {
            Some(&id) => self.scores.get(id as usize).copied().unwrap_or(0),
            None => 0,
        }
    }

    /// The aggregated review score of a subject digest, in signed
    /// Q32.32: `Σ reviewer_score × rating multiplier` over active
    /// reviews (`high` +2, `trust` +1, `neutral` 0, `distrust` −2).
    /// Unreviewed subjects score 0; reviews from unscored keys carry
    /// no weight, which is the sybil resistance of the scheme.
    pub fn subject_score_fx(&mut self, subject: Digest) -> i64 {
        self.converge();
        let Some(slot) = self.reviews.get(&subject) else {
            return 0;
        };
        let mut acc: i128 = 0;
        for (&reviewer, proof) in slot {
            let score = self.scores.get(reviewer as usize).copied().unwrap_or(0);
            acc += score as i128 * proof.rating.review_multiplier() as i128;
        }
        acc.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// [`TrustGraph::subject_score_fx`] scaled to integer milli-units
    /// (floor), the unit admission thresholds are declared in.
    pub fn subject_score_milli(&mut self, subject: Digest) -> i64 {
        fixed::to_milli(self.subject_score_fx(subject))
    }

    /// Canonical digest of the converged score matrix: every node key
    /// with its Q32.32 score, in key order. Byte-identical across
    /// backends, hosts, and full/incremental recomputation — the E16
    /// gate.
    pub fn scores_digest(&mut self) -> Digest {
        self.converge();
        let mut bytes = Vec::with_capacity(8 + self.keys.len() * 40);
        bytes.extend_from_slice(&(self.keys.len() as u64).to_le_bytes());
        let mut order: Vec<u32> = (0..self.keys.len() as u32).collect();
        order.sort_by_key(|&i| self.keys[i as usize]);
        for i in order {
            bytes.extend_from_slice(&self.keys[i as usize]);
            bytes.extend_from_slice(&self.scores[i as usize].to_le_bytes());
        }
        Digest::of_parts(&[SCORES_DIGEST_DOMAIN, &bytes])
    }

    /// Re-converges the score vector if anything is dirty; no-op
    /// otherwise. Returns the run's [`ConvergeReport`].
    pub fn converge(&mut self) -> ConvergeReport {
        let n = self.keys.len();
        let grew = n != self.nodes_at_converge;
        // Root-less pre-trust is uniform over *all* nodes, so growth
        // changes p and invalidates the warm-start premise.
        let full = self.full_required || (grew && self.roots.is_empty());
        if !self.matrix_dirty && !grew {
            let report = ConvergeReport {
                mode: ConvergeMode::Clean,
                iterations: 0,
                rows_rebuilt: 0,
                drift_bound: 0,
                nodes: n as u64,
                edges: self.edge_count() as u64,
                converged: true,
            };
            self.last_report = Some(report);
            return report;
        }

        let rows_rebuilt = self.rebuild_dirty_rows();
        let alpha_p = self.alpha_pretrust();
        self.scores.resize(n, 0);

        let mut t: Vec<u64>;
        let mut drift_bound = 0u64;
        let mut iterations = 0u64;
        if full {
            t = alpha_p.clone();
        } else {
            // Probe iteration: how far did the edits push the old
            // fixed point? ‖lfp − prev‖₁ ≤ (‖F(prev) − prev‖₁ + 2n)/α.
            let mut probe = vec![0u64; n];
            self.apply_map(&self.scores, &alpha_p, &mut probe);
            iterations += 1;
            let moved: u128 = probe
                .iter()
                .zip(&self.scores)
                .map(|(&a, &b)| a.abs_diff(b) as u128)
                .sum();
            let d = (moved + 2 * n as u128) * ONE as u128 / self.alpha as u128 + 1;
            drift_bound = u64::try_from(d).unwrap_or(u64::MAX);
            t = self
                .scores
                .iter()
                .zip(&alpha_p)
                .map(|(&prev, &ap)| ap.max(prev.saturating_sub(drift_bound)))
                .collect();
        }

        let mut next = vec![0u64; n];
        let mut converged = false;
        while iterations < MAX_ITERS {
            self.apply_map(&t, &alpha_p, &mut next);
            iterations += 1;
            let delta: u128 = next
                .iter()
                .zip(&t)
                .map(|(&a, &b)| a.abs_diff(b) as u128)
                .sum();
            std::mem::swap(&mut t, &mut next);
            if delta <= self.epsilon as u128 {
                converged = true;
                break;
            }
        }

        self.scores = t;
        self.matrix_dirty = false;
        self.nodes_at_converge = n;
        self.full_required = false;
        if full {
            self.stats.full_recomputes += 1;
            self.stats.full_iterations += iterations;
        } else {
            self.stats.incremental_recomputes += 1;
            self.stats.incremental_iterations += iterations;
        }
        let report = ConvergeReport {
            mode: if full {
                ConvergeMode::Full
            } else {
                ConvergeMode::Incremental
            },
            iterations,
            rows_rebuilt,
            drift_bound,
            nodes: n as u64,
            edges: self.edge_count() as u64,
            converged,
        };
        self.last_report = Some(report);
        report
    }

    // --------------------------------------------------- internals

    fn intern(&mut self, key: &[u8; 32]) -> u32 {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = self.keys.len() as u32;
        self.keys.push(*key);
        self.ids.insert(*key, id);
        self.out_edges.push(BTreeMap::new());
        self.rows.push(Vec::new());
        id
    }

    fn refused_as_revoked(&mut self, id: &Digest, issuer: &[u8; 32]) -> bool {
        if self.revoked.get(id) == Some(issuer) {
            self.stats.proofs_refused_revoked += 1;
            true
        } else {
            false
        }
    }

    fn set_edge(&mut self, a: u32, b: u32, weight: u32) {
        if weight == 0 {
            self.out_edges[a as usize].remove(&b);
        } else {
            self.out_edges[a as usize].insert(b, weight);
        }
        self.dirty_rows.insert(a);
        self.matrix_dirty = true;
    }

    fn rebuild_dirty_rows(&mut self) -> u64 {
        let dirty = std::mem::take(&mut self.dirty_rows);
        let rebuilt = dirty.len() as u64;
        for a in dirty {
            let edges = &self.out_edges[a as usize];
            let total: u64 = edges.values().map(|&w| w as u64).sum();
            let row = &mut self.rows[a as usize];
            row.clear();
            if total == 0 {
                continue;
            }
            row.extend(edges.iter().map(|(&b, &w)| (b, (w as u64 * ONE) / total)));
        }
        rebuilt
    }

    /// The pre-trust vector scaled by α: uniform over roots, or over
    /// all nodes when no roots are seeded.
    fn alpha_pretrust(&self) -> Vec<u64> {
        let n = self.keys.len();
        let mut out = vec![0u64; n];
        if self.roots.is_empty() {
            if n == 0 {
                return out;
            }
            let share = fixed::mul_down(self.alpha, ONE / n as u64);
            out.fill(share);
        } else {
            let share = fixed::mul_down(self.alpha, ONE / self.roots.len() as u64);
            for &r in &self.roots {
                out[r as usize] = share;
            }
        }
        out
    }

    /// One application of the monotone fixed-point map:
    /// `out_i = αp_i + floor((1−α)·(Σ_j t_j·C_ji + dangling·p_i))`,
    /// floor-rounded exactly once per component.
    fn apply_map(&self, t: &[u64], alpha_p: &[u64], out: &mut [u64]) {
        let n = t.len();
        let mut acc = vec![0u128; n]; // Q64.64
        let mut dangling: u128 = 0;
        for (j, row) in self.rows.iter().enumerate().take(n) {
            let tj = t[j] as u128;
            if tj == 0 {
                continue;
            }
            if row.is_empty() {
                dangling += tj;
            } else {
                for &(i, w) in row {
                    acc[i as usize] += tj * w as u128;
                }
            }
        }
        if dangling > 0 {
            // Dangling mass teleports along p; αp_i = α·p_i exactly
            // reuses the precomputed vector scaled back up by 1/α —
            // instead, recompute p_i share directly from roots.
            if self.roots.is_empty() {
                if n > 0 {
                    let p = (ONE / n as u64) as u128;
                    for a in acc.iter_mut() {
                        *a += dangling * p;
                    }
                }
            } else {
                let p = (ONE / self.roots.len() as u64) as u128;
                for &r in &self.roots {
                    acc[r as usize] += dangling * p;
                }
            }
        }
        let one_minus_alpha = (ONE - self.alpha) as u128;
        for i in 0..n {
            out[i] = alpha_p[i] + ((one_minus_alpha * acc[i]) >> 64) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_crypto::rng::Drbg;
    use lateral_crypto::sign::SigningKey;

    fn keys(n: usize) -> Vec<SigningKey> {
        (0..n)
            .map(|i| SigningKey::from_seed(format!("graph key {i}").as_bytes()))
            .collect()
    }

    /// A small deterministic web: k0 is the seeded root, trusting k1
    /// and k2; k1 trusts k2; k2 trusts k3.
    fn small_web() -> (TrustGraph, Vec<SigningKey>) {
        let ks = keys(4);
        let mut g = TrustGraph::new();
        g.seed_root(&ks[0].verifying_key().to_bytes());
        for (a, b, r) in [
            (0, 1, Rating::High),
            (0, 2, Rating::Trust),
            (1, 2, Rating::Trust),
            (2, 3, Rating::Neutral),
        ] {
            g.ingest_trust(&TrustProof::issue(&ks[a], &ks[b].verifying_key(), r, 1))
                .unwrap();
        }
        (g, ks)
    }

    #[test]
    fn scores_converge_and_rank_sensibly() {
        let (mut g, ks) = small_web();
        let report = g.converge();
        assert!(report.converged, "{report:?}");
        assert_eq!(report.mode, ConvergeMode::Full);
        let s: Vec<u64> = ks
            .iter()
            .map(|k| g.score_of(&k.verifying_key().to_bytes()))
            .collect();
        // The root holds the teleport mass and outranks everyone; k2,
        // trusted by two parties, outranks both single-edge nodes.
        assert!(s[0] > s[2], "{s:?}");
        assert!(s[2] > s[1], "{s:?}");
        assert!(s[2] > s[3], "{s:?}");
        assert!(s.iter().all(|&v| v > 0), "{s:?}");
        assert!(g.score_of(&[9u8; 32]) == 0, "unknown key scores 0");
    }

    #[test]
    fn ingestion_order_cannot_change_the_digest() {
        let ks = keys(5);
        let mut proofs = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                if a != b {
                    let r = Rating::ALL[(a * 5 + b) % 4];
                    proofs.push(TrustProof::issue(
                        &ks[a],
                        &ks[b].verifying_key(),
                        r,
                        (a + b) as u64,
                    ));
                }
            }
        }
        let digest_for = |order: &[usize]| {
            let mut g = TrustGraph::new();
            g.seed_root(&ks[0].verifying_key().to_bytes());
            for &i in order {
                g.ingest_trust(&proofs[i]).unwrap();
            }
            g.scores_digest()
        };
        let forward: Vec<usize> = (0..proofs.len()).collect();
        let mut shuffled = forward.clone();
        Drbg::from_seed(b"order").shuffle(&mut shuffled);
        assert_eq!(digest_for(&forward), digest_for(&shuffled));
    }

    #[test]
    fn supersede_is_by_epoch_then_id() {
        let ks = keys(2);
        let old = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 1);
        let new = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::Distrust, 2);
        for order in [[&old, &new], [&new, &old]] {
            let mut g = TrustGraph::new();
            g.seed_root(&ks[0].verifying_key().to_bytes());
            for p in order {
                let _ = g.ingest_trust(p).unwrap();
            }
            // Epoch 2 distrust wins regardless of arrival order, so the
            // edge is gone from the matrix.
            assert_eq!(g.edge_count(), 0, "distrust supersedes");
        }
        // Same epoch: the higher payload digest wins, deterministically.
        let e3a = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 3);
        let e3b = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::Trust, 3);
        let winner = if e3a.id().0 > e3b.id().0 { &e3a } else { &e3b };
        for order in [[&e3a, &e3b], [&e3b, &e3a]] {
            let mut g = TrustGraph::new();
            for p in order {
                let _ = g.ingest_trust(p).unwrap();
            }
            let mut h = TrustGraph::new();
            h.ingest_trust(winner).unwrap();
            assert_eq!(g.scores_digest(), h.scores_digest());
        }
    }

    #[test]
    fn duplicate_and_stale_are_ignored() {
        let ks = keys(2);
        let mut g = TrustGraph::new();
        let p1 = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::Trust, 5);
        let p0 = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 4);
        assert_eq!(g.ingest_trust(&p1).unwrap(), IngestOutcome::Applied);
        let epoch = g.epoch();
        assert_eq!(g.ingest_trust(&p1).unwrap(), IngestOutcome::Duplicate);
        assert_eq!(g.ingest_trust(&p0).unwrap(), IngestOutcome::Stale);
        assert_eq!(g.epoch(), epoch, "no-ops must not bump the epoch");
        assert_eq!(g.stats().proofs_stale, 2);
    }

    #[test]
    fn self_trust_and_forged_signatures_rejected() {
        let ks = keys(2);
        let mut g = TrustGraph::new();
        let selfie = TrustProof::issue(&ks[0], &ks[0].verifying_key(), Rating::High, 1);
        assert!(matches!(g.ingest_trust(&selfie), Err(WotError::Graph(_))));
        let mut forged = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 1);
        forged.epoch = 99;
        assert!(matches!(
            g.ingest_trust(&forged),
            Err(WotError::Signature(_))
        ));
        assert_eq!(g.epoch(), 0);
    }

    #[test]
    fn revocation_removes_edge_and_blocks_reingestion() {
        let (mut g, ks) = small_web();
        let edge = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 1);
        let before = g.score_of(&ks[1].verifying_key().to_bytes());
        let rev = Revocation::issue(&ks[0], edge.id(), 2);
        assert_eq!(g.ingest_revocation(&rev).unwrap(), IngestOutcome::Applied);
        assert_eq!(g.ingest_revocation(&rev).unwrap(), IngestOutcome::Duplicate);
        let after = g.score_of(&ks[1].verifying_key().to_bytes());
        assert!(after < before, "losing the root edge must drop the score");
        // The revoked proof cannot come back.
        assert_eq!(g.ingest_trust(&edge).unwrap(), IngestOutcome::Revoked);
        assert_eq!(g.stats().proofs_refused_revoked, 1);
    }

    #[test]
    fn revocation_by_stranger_rejected_and_orphans_apply_late() {
        let ks = keys(3);
        let edge = TrustProof::issue(&ks[0], &ks[1].verifying_key(), Rating::High, 1);
        // Known target, wrong issuer: hard error.
        let mut g = TrustGraph::new();
        g.ingest_trust(&edge).unwrap();
        let forged = Revocation::issue(&ks[2], edge.id(), 2);
        assert!(matches!(
            g.ingest_revocation(&forged),
            Err(WotError::Graph(_))
        ));
        // Unknown target: recorded as orphan. A stranger's orphan does
        // not bite the real proof; the issuer's own orphan does.
        let mut h = TrustGraph::new();
        assert_eq!(h.ingest_revocation(&forged).unwrap(), IngestOutcome::Orphan);
        assert_eq!(h.ingest_trust(&edge).unwrap(), IngestOutcome::Applied);
        let mut h2 = TrustGraph::new();
        let own = Revocation::issue(&ks[0], edge.id(), 2);
        assert_eq!(h2.ingest_revocation(&own).unwrap(), IngestOutcome::Orphan);
        assert_eq!(h2.ingest_trust(&edge).unwrap(), IngestOutcome::Revoked);
    }

    #[test]
    fn subject_scores_weight_reviews_by_reviewer_score() {
        let (mut g, ks) = small_web();
        let subject = Digest::of(b"image A");
        g.ingest_review(&ReviewProof::issue(&ks[1], subject, Rating::High, 1))
            .unwrap();
        let with_good_review = g.subject_score_milli(subject);
        assert!(with_good_review > 0);
        // A nobody's distrust cannot outweigh a scored reviewer.
        let stranger = SigningKey::from_seed(b"stranger");
        g.ingest_review(&ReviewProof::issue(&stranger, subject, Rating::Distrust, 1))
            .unwrap();
        assert_eq!(g.subject_score_milli(subject), with_good_review);
        // The root's distrust flips it negative.
        g.ingest_review(&ReviewProof::issue(&ks[0], subject, Rating::Distrust, 1))
            .unwrap();
        assert!(g.subject_score_milli(subject) < 0);
        assert_eq!(g.subject_score_milli(Digest::of(b"unreviewed")), 0);
    }

    #[test]
    fn incremental_is_byte_identical_to_full() {
        let ks = keys(12);
        let mut g = TrustGraph::new();
        g.seed_root(&ks[0].verifying_key().to_bytes());
        g.seed_root(&ks[1].verifying_key().to_bytes());
        let mut rng = Drbg::from_seed(b"incremental");
        let mut issued: Vec<TrustProof> = Vec::new();
        for round in 0..6 {
            for _ in 0..8 {
                let a = rng.gen_range(ks.len() as u64) as usize;
                let mut b = rng.gen_range(ks.len() as u64) as usize;
                if a == b {
                    b = (b + 1) % ks.len();
                }
                let r = *rng.choose(&Rating::ALL).unwrap();
                let p = TrustProof::issue(&ks[a], &ks[b].verifying_key(), r, round);
                let _ = g.ingest_trust(&p).unwrap();
                issued.push(p);
            }
            if round > 0 && !issued.is_empty() {
                let victim = rng.gen_range(issued.len() as u64) as usize;
                let target = &issued[victim];
                let issuer_idx = ks
                    .iter()
                    .position(|k| k.verifying_key().to_bytes() == target.truster)
                    .unwrap();
                let _ = g
                    .ingest_revocation(&Revocation::issue(&ks[issuer_idx], target.id(), 99))
                    .unwrap();
            }
            // Warm converge after each round of edits…
            let warm = g.scores_digest();
            let warm_report = g.last_report().unwrap();
            // …must equal a forced cold recompute of the same state.
            g.force_full();
            let cold = g.scores_digest();
            let cold_report = g.last_report().unwrap();
            assert_eq!(warm, cold, "round {round}: warm diverged from cold");
            assert!(cold_report.converged && warm_report.converged);
            if round > 0 {
                assert_eq!(warm_report.mode, ConvergeMode::Incremental);
                assert_eq!(cold_report.mode, ConvergeMode::Full);
                // The warm chain is squeezed between the cold chain and
                // the fixed point, so it takes at most the cold step
                // count plus its one probe iteration. (With edits this
                // large relative to the graph, the drift bound rightly
                // collapses the warm start toward cold; the savings
                // show on small perturbations and review-only waves.)
                assert!(
                    warm_report.iterations <= cold_report.iterations + 1,
                    "warm start must not iterate more than cold+probe: {warm_report:?} vs {cold_report:?}"
                );
            }
        }
        let stats = g.stats();
        assert!(stats.incremental_recomputes >= 5);
        assert!(stats.full_recomputes >= 6);
    }

    #[test]
    fn incremental_rebuilds_only_dirty_rows() {
        let (mut g, ks) = small_web();
        g.converge();
        let _ = g.ingest_trust(&TrustProof::issue(
            &ks[2],
            &ks[1].verifying_key(),
            Rating::High,
            7,
        ));
        let report = g.converge();
        assert_eq!(report.mode, ConvergeMode::Incremental);
        assert_eq!(report.rows_rebuilt, 1, "only k2's row changed");
        assert!(report.drift_bound > 0);
        // Clean convergence afterwards is free.
        let clean = g.converge();
        assert_eq!(clean.mode, ConvergeMode::Clean);
        assert_eq!(clean.iterations, 0);
    }

    #[test]
    fn epsilon_loosens_termination() {
        let (mut g, _) = small_web();
        let exact = g.converge();
        let mut loose = {
            let (mut h, _) = small_web();
            h.set_epsilon(ONE / 1000);
            h
        };
        let report = loose.converge();
        assert!(report.converged);
        assert!(report.iterations < exact.iterations);
    }

    #[test]
    fn root_seeding_changes_pretrust_and_forces_full() {
        let (mut g, ks) = small_web();
        g.converge();
        g.seed_root(&ks[3].verifying_key().to_bytes());
        let report = g.converge();
        assert_eq!(report.mode, ConvergeMode::Full);
    }
}
