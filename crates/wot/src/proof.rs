//! Signed web-of-trust proofs: the distribution format reviewers
//! exchange.
//!
//! Three proof kinds, in the cargo-crev mold:
//!
//! * [`ReviewProof`] — a reviewer key rates one component *digest*
//!   (the registry's content address), from `distrust` to `high`.
//! * [`TrustProof`] — a reviewer key rates another *reviewer key*,
//!   building the edge set the EigenTrust computation runs over.
//! * [`Revocation`] — the original issuer withdraws an earlier proof
//!   by its payload digest.
//!
//! The decoders hold the same bar as `SignedManifest::decode` in
//! `lateral-registry`: strict positional grammar, fixed-width hex
//! fields, no duplicate scalars, no trailing content, no partial
//! acceptance. Signatures are domain-separated per kind so a review
//! can never be replayed as a trust edge.

use lateral_crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral_crypto::Digest;

use crate::WotError;

/// Domain separator for review-proof signatures (also the id domain).
const REVIEW_SIG_DOMAIN: &[u8] = b"lateral.wot.review.v1";

/// Domain separator for trust-proof signatures (also the id domain).
const TRUST_SIG_DOMAIN: &[u8] = b"lateral.wot.trust.v1";

/// Domain separator for revocation signatures (also the id domain).
const REVOKE_SIG_DOMAIN: &[u8] = b"lateral.wot.revoke.v1";

/// A proof's rating level. The same four-level scale covers component
/// reviews and reviewer-to-reviewer trust, like crev's
/// distrust/none/low..high ladder collapsed to the levels the score
/// computation distinguishes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Rating {
    /// Actively harmful; excluded from the trust matrix and scored
    /// negatively in review aggregation.
    Distrust,
    /// No opinion either way.
    Neutral,
    /// Ordinary positive trust.
    Trust,
    /// Strong positive trust.
    High,
}

impl Rating {
    /// Canonical lowercase token used in the text encoding.
    pub fn as_str(self) -> &'static str {
        match self {
            Rating::Distrust => "distrust",
            Rating::Neutral => "neutral",
            Rating::Trust => "trust",
            Rating::High => "high",
        }
    }

    /// Parses the canonical token (exact match, no aliases).
    pub fn parse(s: &str) -> Option<Rating> {
        match s {
            "distrust" => Some(Rating::Distrust),
            "neutral" => Some(Rating::Neutral),
            "trust" => Some(Rating::Trust),
            "high" => Some(Rating::High),
            _ => None,
        }
    }

    /// Positive edge weight in the trust matrix. `Distrust` is 0 —
    /// EigenTrust's eigenvector runs over non-negative trust only;
    /// distrust edges are simply absent from the matrix.
    pub fn edge_weight(self) -> u32 {
        match self {
            Rating::Distrust => 0,
            Rating::Neutral => 1,
            Rating::Trust => 2,
            Rating::High => 3,
        }
    }

    /// Signed multiplier applied to the reviewer's score when
    /// aggregating reviews of a subject digest.
    pub fn review_multiplier(self) -> i64 {
        match self {
            Rating::Distrust => -2,
            Rating::Neutral => 0,
            Rating::Trust => 1,
            Rating::High => 2,
        }
    }

    /// All ratings, in encoding order (handy for sweeps and fuzzers).
    pub const ALL: [Rating; 4] = [
        Rating::Distrust,
        Rating::Neutral,
        Rating::Trust,
        Rating::High,
    ];
}

/// A signed review of one component digest by one reviewer key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReviewProof {
    /// Reviewer verifying key.
    pub reviewer: [u8; 32],
    /// Measurement digest of the reviewed component image.
    pub subject: Digest,
    /// The verdict.
    pub rating: Rating,
    /// Issuer-chosen logical epoch; a later epoch supersedes an earlier
    /// proof in the same (reviewer, subject) slot.
    pub epoch: u64,
    /// Reviewer signature over the canonical payload.
    pub signature: [u8; 64],
}

/// A signed trust edge from one reviewer key to another.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TrustProof {
    /// The trusting reviewer's verifying key.
    pub truster: [u8; 32],
    /// The trusted reviewer's verifying key.
    pub trustee: [u8; 32],
    /// How much trust the edge carries.
    pub rating: Rating,
    /// Issuer-chosen logical epoch (supersede rule as for reviews).
    pub epoch: u64,
    /// Truster signature over the canonical payload.
    pub signature: [u8; 64],
}

/// A signed withdrawal of an earlier proof, addressed by proof id.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Revocation {
    /// The withdrawing key — must equal the original proof's issuer.
    pub issuer: [u8; 32],
    /// [`proof id`](ReviewProof::id) of the proof being withdrawn.
    pub revokes: Digest,
    /// Issuer-chosen logical epoch.
    pub epoch: u64,
    /// Issuer signature over the canonical payload.
    pub signature: [u8; 64],
}

/// Any of the three proof kinds, as produced by [`Proof::decode`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Proof {
    /// A component review.
    Review(ReviewProof),
    /// A reviewer-to-reviewer trust edge.
    Trust(TrustProof),
    /// A withdrawal of an earlier proof.
    Revocation(Revocation),
}

impl ReviewProof {
    /// Issues and signs a review of `subject` at `epoch`.
    pub fn issue(
        reviewer: &SigningKey,
        subject: Digest,
        rating: Rating,
        epoch: u64,
    ) -> ReviewProof {
        let mut p = ReviewProof {
            reviewer: reviewer.verifying_key().to_bytes(),
            subject,
            rating,
            epoch,
            signature: [0u8; 64],
        };
        p.signature = reviewer.sign(&p.signing_message()).to_bytes();
        p
    }

    /// The canonical text the reviewer signs (everything above the
    /// `signature` line).
    pub fn payload_text(&self) -> String {
        format!(
            "review-proof v1\nreviewer {}\nsubject {}\nrating {}\nepoch {}\n",
            encode_hex(&self.reviewer),
            encode_hex(self.subject.as_bytes()),
            self.rating.as_str(),
            self.epoch
        )
    }

    /// The proof's content address: the digest a [`Revocation`] names.
    pub fn id(&self) -> Digest {
        Digest::of_parts(&[REVIEW_SIG_DOMAIN, self.payload_text().as_bytes()])
    }

    /// The domain-separated message the signature covers.
    pub fn signing_message(&self) -> Vec<u8> {
        self.id().as_bytes().to_vec()
    }

    /// Serializes to the strict line format [`ReviewProof::decode`]
    /// accepts; `decode(p.to_text())` reproduces `p` exactly.
    pub fn to_text(&self) -> String {
        format!(
            "{}signature {}\n",
            self.payload_text(),
            encode_hex(&self.signature)
        )
    }

    /// Parses the strict positional grammar:
    ///
    /// ```text
    /// review-proof v1
    /// reviewer <64 hex>
    /// subject <64 hex>
    /// rating distrust|neutral|trust|high
    /// epoch <u64>
    /// signature <128 hex>
    /// ```
    ///
    /// # Errors
    ///
    /// [`WotError::Decode`] on any deviation.
    pub fn decode(text: &str) -> Result<ReviewProof, WotError> {
        let mut lines = text.lines();
        expect_header(&mut lines, "review-proof v1")?;
        let reviewer = expect_hex_line::<32>(&mut lines, "reviewer")?;
        let subject = Digest(expect_hex_line::<32>(&mut lines, "subject")?);
        let rating = expect_rating_line(&mut lines)?;
        let epoch = expect_u64_line(&mut lines, "epoch")?;
        let signature = expect_hex_line::<64>(&mut lines, "signature")?;
        expect_end(&mut lines)?;
        Ok(ReviewProof {
            reviewer,
            subject,
            rating,
            epoch,
            signature,
        })
    }

    /// Verifies the reviewer signature over the canonical payload.
    ///
    /// # Errors
    ///
    /// [`WotError::Signature`] when the key or signature is bad.
    pub fn verify_signature(&self) -> Result<(), WotError> {
        verify(
            &self.reviewer,
            &self.signing_message(),
            &self.signature,
            "review",
        )
    }
}

impl TrustProof {
    /// Issues and signs a trust edge to `trustee` at `epoch`.
    pub fn issue(
        truster: &SigningKey,
        trustee: &VerifyingKey,
        rating: Rating,
        epoch: u64,
    ) -> TrustProof {
        let mut p = TrustProof {
            truster: truster.verifying_key().to_bytes(),
            trustee: trustee.to_bytes(),
            rating,
            epoch,
            signature: [0u8; 64],
        };
        p.signature = truster.sign(&p.signing_message()).to_bytes();
        p
    }

    /// The canonical text the truster signs.
    pub fn payload_text(&self) -> String {
        format!(
            "trust-proof v1\ntruster {}\ntrustee {}\nrating {}\nepoch {}\n",
            encode_hex(&self.truster),
            encode_hex(&self.trustee),
            self.rating.as_str(),
            self.epoch
        )
    }

    /// The proof's content address: the digest a [`Revocation`] names.
    pub fn id(&self) -> Digest {
        Digest::of_parts(&[TRUST_SIG_DOMAIN, self.payload_text().as_bytes()])
    }

    /// The domain-separated message the signature covers.
    pub fn signing_message(&self) -> Vec<u8> {
        self.id().as_bytes().to_vec()
    }

    /// Serializes to the strict line format [`TrustProof::decode`]
    /// accepts.
    pub fn to_text(&self) -> String {
        format!(
            "{}signature {}\n",
            self.payload_text(),
            encode_hex(&self.signature)
        )
    }

    /// Parses the strict positional grammar:
    ///
    /// ```text
    /// trust-proof v1
    /// truster <64 hex>
    /// trustee <64 hex>
    /// rating distrust|neutral|trust|high
    /// epoch <u64>
    /// signature <128 hex>
    /// ```
    ///
    /// # Errors
    ///
    /// [`WotError::Decode`] on any deviation.
    pub fn decode(text: &str) -> Result<TrustProof, WotError> {
        let mut lines = text.lines();
        expect_header(&mut lines, "trust-proof v1")?;
        let truster = expect_hex_line::<32>(&mut lines, "truster")?;
        let trustee = expect_hex_line::<32>(&mut lines, "trustee")?;
        let rating = expect_rating_line(&mut lines)?;
        let epoch = expect_u64_line(&mut lines, "epoch")?;
        let signature = expect_hex_line::<64>(&mut lines, "signature")?;
        expect_end(&mut lines)?;
        Ok(TrustProof {
            truster,
            trustee,
            rating,
            epoch,
            signature,
        })
    }

    /// Verifies the truster signature over the canonical payload.
    ///
    /// # Errors
    ///
    /// [`WotError::Signature`] when the key or signature is bad.
    pub fn verify_signature(&self) -> Result<(), WotError> {
        verify(
            &self.truster,
            &self.signing_message(),
            &self.signature,
            "trust",
        )
    }
}

impl Revocation {
    /// Issues and signs a withdrawal of the proof with id `revokes`.
    pub fn issue(issuer: &SigningKey, revokes: Digest, epoch: u64) -> Revocation {
        let mut p = Revocation {
            issuer: issuer.verifying_key().to_bytes(),
            revokes,
            epoch,
            signature: [0u8; 64],
        };
        p.signature = issuer.sign(&p.signing_message()).to_bytes();
        p
    }

    /// The canonical text the issuer signs.
    pub fn payload_text(&self) -> String {
        format!(
            "revocation-proof v1\nissuer {}\nrevokes {}\nepoch {}\n",
            encode_hex(&self.issuer),
            encode_hex(self.revokes.as_bytes()),
            self.epoch
        )
    }

    /// The proof's content address.
    pub fn id(&self) -> Digest {
        Digest::of_parts(&[REVOKE_SIG_DOMAIN, self.payload_text().as_bytes()])
    }

    /// The domain-separated message the signature covers.
    pub fn signing_message(&self) -> Vec<u8> {
        self.id().as_bytes().to_vec()
    }

    /// Serializes to the strict line format [`Revocation::decode`]
    /// accepts.
    pub fn to_text(&self) -> String {
        format!(
            "{}signature {}\n",
            self.payload_text(),
            encode_hex(&self.signature)
        )
    }

    /// Parses the strict positional grammar:
    ///
    /// ```text
    /// revocation-proof v1
    /// issuer <64 hex>
    /// revokes <64 hex>
    /// epoch <u64>
    /// signature <128 hex>
    /// ```
    ///
    /// # Errors
    ///
    /// [`WotError::Decode`] on any deviation.
    pub fn decode(text: &str) -> Result<Revocation, WotError> {
        let mut lines = text.lines();
        expect_header(&mut lines, "revocation-proof v1")?;
        let issuer = expect_hex_line::<32>(&mut lines, "issuer")?;
        let revokes = Digest(expect_hex_line::<32>(&mut lines, "revokes")?);
        let epoch = expect_u64_line(&mut lines, "epoch")?;
        let signature = expect_hex_line::<64>(&mut lines, "signature")?;
        expect_end(&mut lines)?;
        Ok(Revocation {
            issuer,
            revokes,
            epoch,
            signature,
        })
    }

    /// Verifies the issuer signature over the canonical payload.
    ///
    /// # Errors
    ///
    /// [`WotError::Signature`] when the key or signature is bad.
    pub fn verify_signature(&self) -> Result<(), WotError> {
        verify(
            &self.issuer,
            &self.signing_message(),
            &self.signature,
            "revocation",
        )
    }
}

impl Proof {
    /// Parses any proof kind, dispatching on the header line. The
    /// per-kind grammar is exactly the per-kind `decode`.
    ///
    /// # Errors
    ///
    /// [`WotError::Decode`] on any deviation, including an unknown
    /// header.
    pub fn decode(text: &str) -> Result<Proof, WotError> {
        match text.lines().next() {
            Some("review-proof v1") => Ok(Proof::Review(ReviewProof::decode(text)?)),
            Some("trust-proof v1") => Ok(Proof::Trust(TrustProof::decode(text)?)),
            Some("revocation-proof v1") => Ok(Proof::Revocation(Revocation::decode(text)?)),
            _ => Err(WotError::Decode("unknown proof header".into())),
        }
    }

    /// Serializes whichever kind this is.
    pub fn to_text(&self) -> String {
        match self {
            Proof::Review(p) => p.to_text(),
            Proof::Trust(p) => p.to_text(),
            Proof::Revocation(p) => p.to_text(),
        }
    }

    /// The proof's content address.
    pub fn id(&self) -> Digest {
        match self {
            Proof::Review(p) => p.id(),
            Proof::Trust(p) => p.id(),
            Proof::Revocation(p) => p.id(),
        }
    }

    /// Verifies the issuer signature of whichever kind this is.
    ///
    /// # Errors
    ///
    /// [`WotError::Signature`] when the key or signature is bad.
    pub fn verify_signature(&self) -> Result<(), WotError> {
        match self {
            Proof::Review(p) => p.verify_signature(),
            Proof::Trust(p) => p.verify_signature(),
            Proof::Revocation(p) => p.verify_signature(),
        }
    }
}

// ------------------------------------------------------------- helpers

fn verify(key: &[u8; 32], msg: &[u8], sig: &[u8; 64], kind: &str) -> Result<(), WotError> {
    let vk = VerifyingKey::from_bytes(key)
        .map_err(|e| WotError::Signature(format!("bad {kind} issuer key: {e}")))?;
    let sig = Signature::from_bytes(sig)
        .map_err(|e| WotError::Signature(format!("bad {kind} signature: {e}")))?;
    vk.verify(msg, &sig)
        .map_err(|_| WotError::Signature(format!("{kind} signature invalid")))
}

fn expect_header<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    header: &str,
) -> Result<(), WotError> {
    if lines.next() == Some(header) {
        Ok(())
    } else {
        Err(WotError::Decode(format!("missing '{header}' header")))
    }
}

fn expect_end<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<(), WotError> {
    if lines.next().is_some() {
        return Err(WotError::Decode(
            "trailing content after 'signature' line".into(),
        ));
    }
    Ok(())
}

fn expect_token<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    directive: &str,
) -> Result<&'a str, WotError> {
    let line = lines
        .next()
        .ok_or_else(|| WotError::Decode(format!("missing '{directive}' line")))?;
    let toks: Vec<&str> = line.split(' ').filter(|t| !t.is_empty()).collect();
    match toks.as_slice() {
        [d, value] if *d == directive => Ok(value),
        _ => Err(WotError::Decode(format!(
            "expected '{directive} <value>' line"
        ))),
    }
}

fn expect_u64_line<'a>(
    lines: &mut impl Iterator<Item = &'a str>,
    directive: &str,
) -> Result<u64, WotError> {
    expect_token(lines, directive)?
        .parse()
        .map_err(|_| WotError::Decode(format!("malformed {directive}")))
}

fn expect_rating_line<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<Rating, WotError> {
    let tok = expect_token(lines, "rating")?;
    Rating::parse(tok).ok_or_else(|| WotError::Decode(format!("unknown rating '{tok}'")))
}

fn expect_hex_line<'a, const N: usize>(
    lines: &mut impl Iterator<Item = &'a str>,
    directive: &str,
) -> Result<[u8; N], WotError> {
    let tok = expect_token(lines, directive)?;
    decode_hex_array::<N>(tok).ok_or_else(|| WotError::Decode(format!("malformed {directive} hex")))
}

pub(crate) fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn decode_hex_array<const N: usize>(s: &str) -> Option<[u8; N]> {
    if s.len() != 2 * N {
        return None;
    }
    let mut out = [0u8; N];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok()?;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reviewer() -> SigningKey {
        SigningKey::from_seed(b"wot reviewer")
    }

    #[test]
    fn review_round_trips_and_verifies() {
        let p = ReviewProof::issue(&reviewer(), Digest::of(b"image"), Rating::High, 3);
        p.verify_signature().unwrap();
        let decoded = ReviewProof::decode(&p.to_text()).unwrap();
        assert_eq!(decoded, p);
        assert_eq!(decoded.id(), p.id());
        decoded.verify_signature().unwrap();
    }

    #[test]
    fn trust_round_trips_and_verifies() {
        let peer = SigningKey::from_seed(b"peer");
        let p = TrustProof::issue(&reviewer(), &peer.verifying_key(), Rating::Trust, 1);
        p.verify_signature().unwrap();
        let decoded = TrustProof::decode(&p.to_text()).unwrap();
        assert_eq!(decoded, p);
        decoded.verify_signature().unwrap();
    }

    #[test]
    fn revocation_round_trips_and_verifies() {
        let target = ReviewProof::issue(&reviewer(), Digest::of(b"image"), Rating::High, 3);
        let p = Revocation::issue(&reviewer(), target.id(), 4);
        p.verify_signature().unwrap();
        let decoded = Revocation::decode(&p.to_text()).unwrap();
        assert_eq!(decoded, p);
        decoded.verify_signature().unwrap();
    }

    #[test]
    fn unified_decode_dispatches_on_header() {
        let review = ReviewProof::issue(&reviewer(), Digest::of(b"i"), Rating::Trust, 1);
        let peer = SigningKey::from_seed(b"peer");
        let trust = TrustProof::issue(&reviewer(), &peer.verifying_key(), Rating::High, 1);
        let revoke = Revocation::issue(&reviewer(), review.id(), 2);
        assert_eq!(
            Proof::decode(&review.to_text()).unwrap(),
            Proof::Review(review)
        );
        assert_eq!(
            Proof::decode(&trust.to_text()).unwrap(),
            Proof::Trust(trust)
        );
        assert_eq!(
            Proof::decode(&revoke.to_text()).unwrap(),
            Proof::Revocation(revoke)
        );
        assert!(Proof::decode("something-else v1\n").is_err());
    }

    #[test]
    fn cross_kind_replay_fails_signature() {
        // A trust proof's fields rehomed into a review proof must not
        // verify: the signature domains differ even where the payload
        // shapes coincide.
        let peer = SigningKey::from_seed(b"peer");
        let t = TrustProof::issue(&reviewer(), &peer.verifying_key(), Rating::Trust, 7);
        let forged = ReviewProof {
            reviewer: t.truster,
            subject: Digest(t.trustee),
            rating: t.rating,
            epoch: t.epoch,
            signature: t.signature,
        };
        assert!(forged.verify_signature().is_err());
    }

    #[test]
    fn tampered_fields_fail_signature() {
        let mut p = ReviewProof::issue(&reviewer(), Digest::of(b"image"), Rating::High, 3);
        p.rating = Rating::Distrust;
        assert!(p.verify_signature().is_err());
    }

    #[test]
    fn decoder_rejects_structural_deviations() {
        let p = ReviewProof::issue(&reviewer(), Digest::of(b"image"), Rating::Trust, 9);
        let good = p.to_text();
        let lines: Vec<&str> = good.lines().collect();
        // Dropping any line breaks the positional grammar.
        for skip in 0..lines.len() {
            let mutated: String = lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| format!("{l}\n"))
                .collect();
            assert!(
                ReviewProof::decode(&mutated).is_err(),
                "accepted proof missing line {skip}"
            );
        }
        // Duplicating any line is rejected: every directive is scalar.
        for dup in 0..lines.len() {
            let mut mutated = String::new();
            for (i, l) in lines.iter().enumerate() {
                mutated.push_str(&format!("{l}\n"));
                if i == dup {
                    mutated.push_str(&format!("{l}\n"));
                }
            }
            assert!(
                ReviewProof::decode(&mutated).is_err(),
                "accepted duplicated line {dup}"
            );
        }
    }

    #[test]
    fn decoder_rejects_garbage() {
        for bad in [
            "",
            "review-proof v1",
            "review-proof v2\nreviewer aa\n",
            "review-proof v1\nreviewer zz\n",
            "review-proof v1\nreviewer \n",
            "review-proof v1\nsubject aa\n",
        ] {
            assert!(ReviewProof::decode(bad).is_err(), "accepted {bad:?}");
            assert!(Proof::decode(bad).is_err(), "unified accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_signature_rejected() {
        let p = ReviewProof::issue(&reviewer(), Digest::of(b"image"), Rating::Trust, 1);
        let text = p.to_text();
        // Drop the last 4 hex chars of the signature line (keep the \n).
        let shortened = format!("{}\n", &text.trim_end()[..text.trim_end().len() - 4]);
        assert!(ReviewProof::decode(&shortened).is_err());
    }
}
