//! Web-of-trust certification for the lateral component ecosystem.
//!
//! The paper's lateral-thinking argument says trust decisions should
//! not hinge on one vertically-integrated authority — yet the
//! registry's certification (PR 3) ran through a single publisher
//! chain. This crate replaces that bottleneck with a *distributed*
//! trust layer in the cargo-crev / EigenTrust mold:
//!
//! * [`proof`] — signed, strictly-parsed [`ReviewProof`] /
//!   [`TrustProof`] / [`Revocation`] artifacts that many mutually
//!   suspicious parties exchange out of band.
//! * [`graph`] — a [`TrustGraph`] that ingests proofs into a sparse
//!   row-normalized trust matrix and computes a **deterministic
//!   fixed-point EigenTrust score** in Q32.32 integer arithmetic
//!   ([`fixed`]), with exact **incremental recomputation**: edits
//!   dirty only the affected rows and re-converge from the previous
//!   fixed point, provably landing on the byte-identical score vector
//!   a full recompute would produce.
//!
//! `lateral-registry` consumes this as its fourth certification pass
//! (`wot-threshold`): a digest is admitted only when its aggregated
//! review score clears the per-assembly threshold, and the
//! [`TrustGraph::epoch`] is folded into the verdict-cache key so a
//! distrust wave can never be served a stale `certified` verdict.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fixed;
pub mod graph;
pub mod proof;

use std::error::Error;
use std::fmt;

pub use graph::{ConvergeMode, ConvergeReport, IngestOutcome, TrustGraph, WotStats};
pub use proof::{Proof, Rating, ReviewProof, Revocation, TrustProof};

/// Errors from proof decoding, verification, and graph ingestion.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum WotError {
    /// A proof failed to parse.
    Decode(String),
    /// A signature failed to verify.
    Signature(String),
    /// A structurally valid proof the graph refuses on semantic
    /// grounds (self-trust, revocation issuer mismatch).
    Graph(String),
}

impl fmt::Display for WotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WotError::Decode(r) => write!(f, "proof decode: {r}"),
            WotError::Signature(r) => write!(f, "proof signature: {r}"),
            WotError::Graph(r) => write!(f, "trust graph: {r}"),
        }
    }
}

impl Error for WotError {}
