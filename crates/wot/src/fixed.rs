//! Q32.32 fixed-point arithmetic for the trust-score computation.
//!
//! EigenTrust over floats is a determinism hazard: the score vector
//! would depend on summation order, FMA contraction, and the host's
//! rounding mode, so its digest could never be gated backend-invariant
//! the way E11 gates the registry trace. Everything here is integer
//! math on `u64` raw values with `u128` intermediates — the same result
//! on every backend, every host, every run.
//!
//! Representation: a score `s` is stored as `round_down(s * 2^32)`.
//! [`ONE`] is 1.0. Scores live in `[0, 1]` plus a little normalization
//! slack, so the raw values stay far below `u64::MAX`.

/// 1.0 in Q32.32.
pub const ONE: u64 = 1 << 32;

/// Fractional bits of the representation.
pub const FRAC_BITS: u32 = 32;

/// `(a * b) >> 32`, rounding toward zero — the canonical Q32.32
/// product. Intermediate in `u128`, so no overflow for any pair of
/// in-range scores.
#[inline]
pub fn mul_down(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) >> FRAC_BITS) as u64
}

/// `(a << 32) / b`, rounding toward zero — the canonical Q32.32
/// quotient. `b` must be nonzero.
#[inline]
pub fn div_down(a: u64, b: u64) -> u64 {
    (((a as u128) << FRAC_BITS) / b as u128) as u64
}

/// A Q32.32 value scaled to integer milli-units (thousandths), rounding
/// toward negative infinity — the unit admission thresholds are
/// declared in (`wot-threshold 750` means 0.750).
#[inline]
pub fn to_milli(raw: i64) -> i64 {
    let wide = raw as i128 * 1000;
    // Arithmetic shift on the signed wide product floors toward -inf,
    // so -0.0001 becomes -1 milli, never 0: a barely-negative score
    // can't sneak past a zero threshold.
    (wide >> FRAC_BITS) as i64
}

/// Renders a Q32.32 value as a decimal string with six fractional
/// digits (enough to read scores in reports; not used in digests).
pub fn format_fx(raw: u64) -> String {
    let int = raw >> FRAC_BITS;
    let frac = raw & (ONE - 1);
    let micro = (frac as u128 * 1_000_000) >> FRAC_BITS;
    format!("{int}.{micro:06}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_squared_is_one() {
        assert_eq!(mul_down(ONE, ONE), ONE);
        assert_eq!(div_down(ONE, ONE), ONE);
    }

    #[test]
    fn mul_rounds_down() {
        // (1/3) * 3 < 1 after floor-rounding the quotient.
        let third = div_down(ONE, 3 * ONE);
        assert!(mul_down(third, 3 * ONE) < ONE);
        assert!(ONE - mul_down(third, 3 * ONE) <= 3);
    }

    #[test]
    fn milli_floors_toward_negative_infinity() {
        assert_eq!(to_milli(ONE as i64), 1000);
        assert_eq!(to_milli(ONE as i64 / 2), 500);
        assert_eq!(to_milli(-1), -1, "barely negative must not round to 0");
        assert_eq!(to_milli(0), 0);
        assert_eq!(to_milli(-(ONE as i64)), -1000);
    }

    #[test]
    fn format_is_readable() {
        assert_eq!(format_fx(ONE), "1.000000");
        assert_eq!(format_fx(ONE / 2), "0.500000");
        assert_eq!(format_fx(0), "0.000000");
    }
}
