//! Scheduling: temporal isolation policies.
//!
//! §II-C: *"Using time partitioning and scheduler interference analysis,
//! microkernels provide strong temporal isolation by mitigating covert
//! channels."* The scheduler here offers both the plain round-robin that
//! leaves the shared cache observable across domains, and fixed time
//! partitioning that flushes the cache on every partition switch —
//! experiment E6 measures the covert-channel bandwidth under each.

use lateral_hw::cache::CacheDomain;
use lateral_hw::machine::Machine;

/// The temporal isolation policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPolicy {
    /// Plain preemptive round-robin: starvation-free, but cache state
    /// survives across domain switches (covert channel possible).
    RoundRobin,
    /// Fixed time partitions; on every partition switch the cache is
    /// flushed, destroying cache-based covert channels at the cost of
    /// post-switch cold misses.
    TimePartitioned {
        /// Whether to flush the shared cache on partition switch. `true`
        /// is the paper's mitigation; `false` exists for the ablation
        /// bench.
        flush_cache: bool,
    },
}

/// Scheduler state: which cache domain currently owns the CPU.
#[derive(Clone, Debug)]
pub struct Scheduler {
    policy: SchedPolicy,
    current: Option<CacheDomain>,
    switches: u64,
    flushes: u64,
}

impl Scheduler {
    /// Creates a scheduler with `policy`.
    pub fn new(policy: SchedPolicy) -> Scheduler {
        Scheduler {
            policy,
            current: None,
            switches: 0,
            flushes: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Replaces the policy (takes effect at the next switch).
    pub fn set_policy(&mut self, policy: SchedPolicy) {
        self.policy = policy;
    }

    /// The domain currently scheduled, if any.
    pub fn current(&self) -> Option<CacheDomain> {
        self.current
    }

    /// Number of domain switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of mitigation flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Switches the CPU to `domain`, applying the policy's mitigation and
    /// accounting the context-switch cost on `machine`.
    pub fn switch_to(&mut self, machine: &mut Machine, domain: CacheDomain) {
        if self.current == Some(domain) {
            return;
        }
        self.switches += 1;
        machine.clock.advance(machine.costs.context_switch);
        if let SchedPolicy::TimePartitioned { flush_cache: true } = self.policy {
            machine.cache_flush();
            self.flushes += 1;
        }
        self.current = Some(domain);
    }
}

/// A fixed time-partition plan: a repeating table of (domain, slot
/// count) entries. The plan is *static* — which domain runs when does
/// not depend on any domain's behavior, which is exactly what makes the
/// schedule interference-free: no domain can learn anything from *when*
/// it runs, and no domain can starve another.
#[derive(Clone, Debug)]
pub struct PartitionPlan {
    entries: Vec<(CacheDomain, u32)>,
    cursor: usize,
    remaining: u32,
}

impl PartitionPlan {
    /// Builds a plan from `(domain, slots)` entries.
    ///
    /// # Panics
    ///
    /// Panics on an empty plan or zero-slot entries (a configuration
    /// error in the system integrator's slot table).
    pub fn new(entries: &[(CacheDomain, u32)]) -> PartitionPlan {
        assert!(!entries.is_empty(), "partition plan must not be empty");
        assert!(
            entries.iter().all(|(_, n)| *n > 0),
            "every partition needs at least one slot"
        );
        PartitionPlan {
            entries: entries.to_vec(),
            cursor: 0,
            remaining: entries[0].1,
        }
    }

    /// The domain owning the current slot.
    pub fn current(&self) -> CacheDomain {
        self.entries[self.cursor].0
    }

    /// Advances one slot, returning the domain that owns the *next* slot.
    pub fn tick(&mut self) -> CacheDomain {
        self.remaining -= 1;
        if self.remaining == 0 {
            self.cursor = (self.cursor + 1) % self.entries.len();
            self.remaining = self.entries[self.cursor].1;
        }
        self.current()
    }

    /// Slots per full plan period.
    pub fn period(&self) -> u32 {
        self.entries.iter().map(|(_, n)| n).sum()
    }

    /// Guaranteed slots per period for `domain` — the basis of the
    /// starvation-freedom argument: this number is independent of any
    /// runtime behavior.
    pub fn guaranteed_slots(&self, domain: CacheDomain) -> u32 {
        self.entries
            .iter()
            .filter(|(d, _)| *d == domain)
            .map(|(_, n)| n)
            .sum()
    }
}

/// Drives a [`Scheduler`] through a [`PartitionPlan`] on a machine:
/// each call advances one slot and performs the policy's switch (with
/// mitigation when configured). Returns the domain now on the CPU.
pub fn run_slot(
    scheduler: &mut Scheduler,
    plan: &mut PartitionPlan,
    machine: &mut Machine,
) -> CacheDomain {
    let next = plan.tick();
    scheduler.switch_to(machine, next);
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::machine::MachineBuilder;

    #[test]
    fn round_robin_preserves_cache() {
        let mut m = MachineBuilder::new().frames(8).build();
        let mut s = Scheduler::new(SchedPolicy::RoundRobin);
        let d1 = CacheDomain(1);
        let d2 = CacheDomain(2);
        s.switch_to(&mut m, d1);
        m.cache_access(d1, 0x1000);
        s.switch_to(&mut m, d2);
        s.switch_to(&mut m, d1);
        assert!(
            m.cache_access(d1, 0x1000).hit,
            "round-robin leaves lines in place"
        );
        assert_eq!(s.flushes(), 0);
    }

    #[test]
    fn time_partitioning_flushes_on_switch() {
        let mut m = MachineBuilder::new().frames(8).build();
        let mut s = Scheduler::new(SchedPolicy::TimePartitioned { flush_cache: true });
        let d1 = CacheDomain(1);
        let d2 = CacheDomain(2);
        s.switch_to(&mut m, d1);
        m.cache_access(d1, 0x1000);
        s.switch_to(&mut m, d2);
        s.switch_to(&mut m, d1);
        assert!(
            !m.cache_access(d1, 0x1000).hit,
            "partition switch flushed the line"
        );
        // Three switches happened (boot→d1, d1→d2, d2→d1), each flushing.
        assert_eq!(s.flushes(), 3);
    }

    #[test]
    fn redundant_switch_is_free() {
        let mut m = MachineBuilder::new().frames(8).build();
        let mut s = Scheduler::new(SchedPolicy::TimePartitioned { flush_cache: true });
        let d = CacheDomain(1);
        s.switch_to(&mut m, d);
        let flushes = s.flushes();
        let t = m.clock.now();
        s.switch_to(&mut m, d);
        assert_eq!(s.flushes(), flushes);
        assert_eq!(m.clock.now(), t);
    }

    #[test]
    fn plan_cycles_deterministically() {
        let a = CacheDomain(1);
        let b = CacheDomain(2);
        let mut plan = PartitionPlan::new(&[(a, 2), (b, 1)]);
        assert_eq!(plan.current(), a);
        // Slots: a a b a a b …
        let seq: Vec<CacheDomain> = (0..6).map(|_| plan.tick()).collect();
        assert_eq!(seq, vec![a, b, a, a, b, a]);
        assert_eq!(plan.period(), 3);
    }

    #[test]
    fn guaranteed_slots_are_static() {
        let a = CacheDomain(1);
        let b = CacheDomain(2);
        let plan = PartitionPlan::new(&[(a, 3), (b, 1), (a, 1)]);
        assert_eq!(plan.guaranteed_slots(a), 4);
        assert_eq!(plan.guaranteed_slots(b), 1);
        assert_eq!(plan.guaranteed_slots(CacheDomain(9)), 0);
    }

    #[test]
    fn starvation_freedom_over_many_periods() {
        // However the other domain behaves, b receives exactly its
        // guaranteed share — counted over 10 periods.
        let mut m = MachineBuilder::new().frames(8).build();
        let mut s = Scheduler::new(SchedPolicy::TimePartitioned { flush_cache: true });
        let a = CacheDomain(1);
        let b = CacheDomain(2);
        let mut plan = PartitionPlan::new(&[(a, 7), (b, 1)]);
        let mut b_slots = 0;
        for _ in 0..(10 * plan.period()) {
            if run_slot(&mut s, &mut plan, &mut m) == b {
                b_slots += 1;
            }
        }
        assert_eq!(b_slots, 10 * plan.guaranteed_slots(b));
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slot_partitions_rejected() {
        PartitionPlan::new(&[(CacheDomain(1), 0)]);
    }

    #[test]
    fn partitioning_without_flush_keeps_channel_open() {
        // The ablation: partitioning alone (no flush) does not close the
        // cache channel.
        let mut m = MachineBuilder::new().frames(8).build();
        let mut s = Scheduler::new(SchedPolicy::TimePartitioned { flush_cache: false });
        let d1 = CacheDomain(1);
        s.switch_to(&mut m, d1);
        m.cache_access(d1, 0x40);
        s.switch_to(&mut m, CacheDomain(2));
        s.switch_to(&mut m, d1);
        assert!(m.cache_access(d1, 0x40).hit);
    }
}
