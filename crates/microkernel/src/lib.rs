//! An L4-family microkernel as an isolation substrate.
//!
//! §II-B "Operating-System-Based Separation": *"microkernels … use the MMU
//! to isolate processes from one another … these processes can host
//! trusted components or legacy code alike."* This crate is the
//! reference MMU-based backend of the unified interface:
//!
//! * every domain is an address space of [`lateral_hw::mmu`] pages backed
//!   by `Normal` frames, so all component memory traffic passes the
//!   simulated MMU and bus;
//! * IPC is synchronous, capability-mediated, and badge-delivering
//!   (the `lateral-substrate` cap model);
//! * the [`sched`] module provides round-robin and time-partitioned
//!   scheduling — the latter with cache flushing, the paper's covert
//!   channel mitigation (§II-C);
//! * devices are assigned to driver domains and their DMA is filtered by
//!   the IOMMU (§II-D);
//! * attestation is available when the platform was provisioned with an
//!   identity key by a measured boot (see `Microkernel::with_attestation`).
//!
//! The kernel itself is the isolation substrate and thus every
//! component's TCB; its profile reports ~10 kLoC, the magnitude of seL4,
//! whose formal verification the paper cites as making software substrates
//! "at least as strong" as hardware ones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sched;

use std::collections::BTreeMap;

use lateral_crypto::aead::Aead;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_hw::bus::AccessKind;
use lateral_hw::cache::{CacheDomain, CacheOutcome};
use lateral_hw::machine::Machine;
use lateral_hw::mem::{Frame, FrameOwner};
use lateral_hw::mmu::{AddressSpace, Rights};
use lateral_hw::{DeviceId, Initiator, VirtAddr, World, PAGE_SIZE};
use lateral_substrate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};

pub use sched::{PartitionPlan, SchedPolicy, Scheduler};

/// Kernel-side state of one domain.
struct KDomain {
    aspace: AddressSpace,
    frames: Vec<Frame>,
    cache_domain: CacheDomain,
    devices: Vec<DeviceId>,
}

/// The microkernel substrate.
pub struct Microkernel {
    machine: Machine,
    fabric: Fabric,
    kstate: BTreeMap<DomainId, KDomain>,
    sched: Scheduler,
    seal_secret: [u8; 32],
    attestation: Option<(SigningKey, Digest)>,
    rng: Drbg,
    profile: SubstrateProfile,
    next_cache_domain: u32,
}

impl std::fmt::Debug for Microkernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Microkernel({} domains on '{}')",
            self.fabric.table().len(),
            self.machine.name
        )
    }
}

impl Microkernel {
    /// Boots the microkernel on `machine`. The kernel enables the IOMMU —
    /// driving devices at arbitrary memory is exactly the attack §II-D
    /// warns about.
    pub fn new(mut machine: Machine, seed: &str) -> Microkernel {
        machine.iommu.enable();
        let mut rng = Drbg::from_seed(&[b"lateral.microkernel.", seed.as_bytes()].concat());
        let seal_secret = rng.gen_key();
        Microkernel {
            machine,
            fabric: Fabric::new(),
            kstate: BTreeMap::new(),
            sched: Scheduler::new(SchedPolicy::RoundRobin),
            seal_secret,
            attestation: None,
            rng,
            profile: SubstrateProfile {
                name: "microkernel".to_string(),
                defends: models(&[
                    AttackerModel::RemoteSoftware,
                    AttackerModel::CompromisedOs,
                    AttackerModel::MaliciousDevice,
                ]),
                features: Features {
                    spatial_isolation: true,
                    temporal_isolation: true,
                    memory_encryption: false,
                    trust_anchor: false,
                    attestation: false,
                    sealed_storage: true,
                    max_trusted_domains: None,
                    hosts_legacy_os: true,
                },
                tcb_loc: 10_000,
            },
            next_cache_domain: 1,
        }
    }

    /// Provisions a platform attestation identity, as a measured boot
    /// chain (boot ROM + TPM) would. `platform_state` is the booted-stack
    /// identity included in evidence.
    #[must_use]
    pub fn with_attestation(mut self, key: SigningKey, platform_state: Digest) -> Microkernel {
        self.attestation = Some((key, platform_state));
        self.profile.features.attestation = true;
        self.profile.features.trust_anchor = true;
        self
    }

    /// Access to the underlying machine (experiments inject hardware-level
    /// attacks here).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Immutable machine access.
    pub fn machine_ref(&self) -> &Machine {
        &self.machine
    }

    /// Replaces the scheduling policy.
    pub fn set_sched_policy(&mut self, policy: SchedPolicy) {
        self.sched.set_policy(policy);
    }

    /// Scheduler statistics (switches, mitigation flushes).
    pub fn scheduler(&self) -> &Scheduler {
        &self.sched
    }

    /// Schedules `domain` onto the CPU, applying the temporal-isolation
    /// policy (cache flush under time partitioning).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn schedule(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        let cd = self.kdomain(domain)?.cache_domain;
        self.sched.switch_to(&mut self.machine, cd);
        Ok(())
    }

    /// Performs one cache access on behalf of `domain` at address `addr`
    /// within its working set — the primitive the prime+probe covert
    /// channel experiment drives.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn cache_touch(
        &mut self,
        domain: DomainId,
        addr: u64,
    ) -> Result<CacheOutcome, SubstrateError> {
        let cd = self.kdomain(domain)?.cache_domain;
        Ok(self.machine.cache_access(cd, addr))
    }

    /// Assigns exclusive control of `device` to `domain`: the IOMMU is
    /// programmed so the device can only DMA into that domain's frames.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn assign_device(
        &mut self,
        domain: DomainId,
        device: DeviceId,
    ) -> Result<(), SubstrateError> {
        let frames = self.kdomain(domain)?.frames.clone();
        for frame in frames {
            self.machine.iommu.grant(device, frame);
        }
        self.kdomain_mut(domain)?.devices.push(device);
        Ok(())
    }

    /// Simulates `device` DMA-writing `data` at byte `offset` into the
    /// address space of the domain it is assigned to. Unassigned devices
    /// are blocked by the IOMMU — the E9 malicious-DMA probe.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::AccessDenied`] when the IOMMU blocks the DMA or
    /// the range is unmapped.
    pub fn device_dma(
        &mut self,
        device: DeviceId,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let spans = {
            let k = self.kdomain(domain)?;
            k.aspace
                .translate_range(
                    VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                    data.len(),
                    AccessKind::Write,
                )
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?
        };
        let mut cursor = 0usize;
        for (pa, len) in spans {
            self.machine
                .dma_write(device, pa, &data[cursor..cursor + len])
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            cursor += len;
        }
        Ok(())
    }

    /// Physical frames backing a domain — used by the attack experiments
    /// to aim bus probes.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn domain_frames(&self, domain: DomainId) -> Result<Vec<Frame>, SubstrateError> {
        Ok(self.kdomain(domain)?.frames.clone())
    }

    /// The virtual base address at which domain memory is mapped.
    const MEM_BASE: u64 = 0x10_0000;

    fn kdomain(&self, id: DomainId) -> Result<&KDomain, SubstrateError> {
        self.kstate.get(&id).ok_or(SubstrateError::NoSuchDomain(id))
    }

    fn kdomain_mut(&mut self, id: DomainId) -> Result<&mut KDomain, SubstrateError> {
        self.kstate
            .get_mut(&id)
            .ok_or(SubstrateError::NoSuchDomain(id))
    }

    fn seal_key(&self, measurement: &Digest) -> [u8; 32] {
        lateral_crypto::hmac::hkdf(
            b"lateral.microkernel.seal",
            &self.seal_secret,
            measurement.as_bytes(),
        )
    }

    fn mem_access(
        &mut self,
        domain: DomainId,
        offset: usize,
        kind: AccessKind,
        len: usize,
    ) -> Result<Vec<(lateral_hw::PhysAddr, usize)>, SubstrateError> {
        let va = Self::MEM_BASE
            .checked_add(offset as u64)
            .map(VirtAddr)
            .ok_or_else(|| SubstrateError::AccessDenied("address overflow".into()))?;
        let k = self.kdomain(domain)?;
        k.aspace
            .translate_range(va, len, kind)
            .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))
    }
}

impl BackendPolicy for Microkernel {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, _kind: DomainKind) -> Result<(), SubstrateError> {
        let pages = self.fabric.table().get(id)?.spec.mem_pages.max(1);
        let frames = self
            .machine
            .mem
            .alloc_n(FrameOwner::Normal, pages)
            .map_err(|e| SubstrateError::OutOfResources(e.to_string()))?;
        let mut aspace = AddressSpace::new();
        for (i, frame) in frames.iter().enumerate() {
            aspace.map(
                VirtAddr(Self::MEM_BASE + (i * PAGE_SIZE) as u64),
                *frame,
                Rights::RW,
            );
        }
        let cache_domain = CacheDomain(self.next_cache_domain);
        self.next_cache_domain += 1;
        self.kstate.insert(
            id,
            KDomain {
                aspace,
                frames,
                cache_domain,
                devices: Vec::new(),
            },
        );
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(k) = self.kstate.remove(&id) {
            for dev in &k.devices {
                self.machine.iommu.revoke_all(*dev);
            }
            for frame in k.frames {
                self.machine.mem.free(frame);
            }
            self.machine.cache.flush_domain(k.cache_domain);
        }
    }

    fn charge_spawn(&mut self, _id: DomainId) -> Result<(), SubstrateError> {
        // Creating an address space costs kernel work.
        self.machine
            .clock
            .advance(self.machine.costs.context_switch);
        Ok(())
    }

    fn crossing(
        &self,
        _caller: DomainId,
        _target: DomainId,
    ) -> Result<CrossingKind, SubstrateError> {
        // Synchronous IPC: two context switches plus payload copy.
        Ok(CrossingKind::Ipc)
    }

    fn crossing_cost(&self, _kind: CrossingKind, bytes: usize) -> u64 {
        self.machine.costs.ipc_round_trip + self.machine.costs.copy_cost(bytes)
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Every crossing is a synchronous IPC round trip + payload copy.
        let c = &self.machine.costs;
        fabric::CrossingCostModel::uniform(
            &self.profile.name,
            c.ipc_round_trip,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
            fabric::InvokeKindRule::Always(CrossingKind::Ipc),
        )
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.machine.clock.advance(cycles);
    }

    fn seal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        Ok(Aead::new(&self.seal_key(measurement)).seal(0, b"microkernel.seal", data))
    }

    fn unseal_blob(
        &mut self,
        _domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        Aead::new(&self.seal_key(measurement))
            .open(0, b"microkernel.seal", sealed)
            .map_err(|_| {
                SubstrateError::CryptoFailure(
                    "unseal failed: wrong identity or tampered blob".into(),
                )
            })
    }

    fn attest_evidence(
        &mut self,
        _domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        match &self.attestation {
            Some((key, platform_state)) => Ok(AttestationEvidence::sign(
                "microkernel",
                key,
                measurement,
                *platform_state,
                report_data,
            )),
            None => Err(SubstrateError::Unsupported(
                "platform has no attestation identity (boot without trust anchor)".into(),
            )),
        }
    }
}

impl Substrate for Microkernel {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        self.attestation
            .as_ref()
            .map(|(k, _)| k.verifying_key())
            .ok_or_else(|| {
                SubstrateError::Unsupported("platform has no attestation identity".into())
            })
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        let spans = self.mem_access(domain, offset, AccessKind::Read, len)?;
        let mut out = Vec::with_capacity(len);
        for (pa, span_len) in spans {
            let bytes = self
                .machine
                .bus_read(Initiator::cpu(World::Normal), pa, span_len)
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let spans = self.mem_access(domain, offset, AccessKind::Write, data.len())?;
        let mut cursor = 0usize;
        for (pa, span_len) in spans {
            self.machine
                .bus_write(
                    Initiator::cpu(World::Normal),
                    pa,
                    &data[cursor..cursor + span_len],
                )
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            cursor += span_len;
        }
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("domain-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.machine.clock.now()
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::device::DeviceKind;
    use lateral_hw::machine::MachineBuilder;
    use lateral_substrate::conformance;
    use lateral_substrate::testkit::{Echo, MemoryScribe};

    fn kernel() -> Microkernel {
        let machine = MachineBuilder::new().name("mk-test").frames(128).build();
        Microkernel::new(machine, "test")
    }

    fn kernel_with_attestation() -> Microkernel {
        kernel().with_attestation(
            SigningKey::from_seed(b"mk platform"),
            Digest::of(b"measured stack"),
        )
    }

    #[test]
    fn conformance_suite_passes() {
        let mut k = kernel_with_attestation();
        let report = conformance::run(&mut k);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
        assert_eq!(
            report.outcome("attestation"),
            Some(&conformance::Outcome::Pass)
        );
    }

    #[test]
    fn conformance_without_trust_anchor_reports_attestation_unsupported() {
        let mut k = kernel();
        let report = conformance::run(&mut k);
        assert!(report.conforms());
        assert_eq!(
            report.outcome("attestation"),
            Some(&conformance::Outcome::Unsupported)
        );
    }

    #[test]
    fn memory_goes_through_mmu_and_is_isolated() {
        let mut k = kernel();
        let a = k
            .spawn(DomainSpec::named("a"), Box::new(MemoryScribe))
            .unwrap();
        let b = k.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
        k.mem_write(a, 0, b"component a data").unwrap();
        assert_eq!(k.mem_read(a, 0, 16).unwrap(), b"component a data");
        assert_eq!(k.mem_read(b, 0, 16).unwrap(), vec![0u8; 16]);
        // Out-of-range access faults at the MMU.
        let pages = 4;
        assert!(k.mem_read(a, pages * PAGE_SIZE, 1).is_err());
    }

    #[test]
    fn ipc_advances_clock_more_than_memory_access() {
        let mut k = kernel();
        let a = k.spawn(DomainSpec::named("a"), Box::new(Echo)).unwrap();
        let b = k.spawn(DomainSpec::named("b"), Box::new(Echo)).unwrap();
        let cap = k.grant_channel(a, b, Badge(0)).unwrap();
        let t0 = k.now();
        k.invoke(a, &cap, b"x").unwrap();
        let ipc_cost = k.now() - t0;
        assert!(ipc_cost >= k.machine_ref().costs.ipc_round_trip);
    }

    #[test]
    fn device_dma_requires_assignment() {
        let mut k = kernel();
        let driver = k
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let nic = k.machine().register_device(DeviceKind::Nic, "eth0");
        // Unassigned: the IOMMU blocks the DMA.
        assert!(k.device_dma(nic, driver, 0, b"packet").is_err());
        // After assignment the same DMA lands.
        k.assign_device(driver, nic).unwrap();
        k.device_dma(nic, driver, 0, b"packet").unwrap();
        assert_eq!(k.mem_read(driver, 0, 6).unwrap(), b"packet");
    }

    #[test]
    fn malicious_device_cannot_reach_other_domains() {
        let mut k = kernel();
        let driver = k
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let victim = k
            .spawn(DomainSpec::named("victim"), Box::new(Echo))
            .unwrap();
        let nic = k.machine().register_device(DeviceKind::Nic, "eth0");
        k.assign_device(driver, nic).unwrap();
        // DMA aimed at the victim's memory is blocked by the IOMMU.
        assert!(k.device_dma(nic, victim, 0, b"overwrite").is_err());
        assert_eq!(k.mem_read(victim, 0, 9).unwrap(), vec![0u8; 9]);
    }

    #[test]
    fn destroy_frees_frames_for_reuse() {
        let mut k = kernel();
        let free0 = k.machine_ref().mem.free_frames();
        let a = k
            .spawn(DomainSpec::named("a").with_mem_pages(8), Box::new(Echo))
            .unwrap();
        assert_eq!(k.machine_ref().mem.free_frames(), free0 - 8);
        k.destroy(a).unwrap();
        assert_eq!(k.machine_ref().mem.free_frames(), free0);
    }

    #[test]
    fn spawn_fails_cleanly_when_memory_exhausted() {
        let machine = MachineBuilder::new().frames(4).build();
        let mut k = Microkernel::new(machine, "tiny");
        assert!(k
            .spawn(DomainSpec::named("big").with_mem_pages(64), Box::new(Echo))
            .is_err());
    }

    #[test]
    fn covert_channel_blocked_by_time_partitioning() {
        // Miniature version of experiment E6: a 1-bit prime+probe round.
        let run = |policy: SchedPolicy, send_bit: bool| -> bool {
            let mut k = kernel();
            k.set_sched_policy(policy);
            let sender = k
                .spawn(DomainSpec::named("sender"), Box::new(Echo))
                .unwrap();
            let receiver = k
                .spawn(DomainSpec::named("receiver"), Box::new(Echo))
                .unwrap();
            let target = 0x4000u64;
            // Receiver primes its line.
            k.schedule(receiver).unwrap();
            k.cache_touch(receiver, target).unwrap();
            // Sender transmits: bit=1 → evict by touching the eviction set.
            k.schedule(sender).unwrap();
            if send_bit {
                let ev = k.machine_ref().cache.eviction_set(target);
                for a in ev {
                    k.cache_touch(sender, a).unwrap();
                }
            }
            // Receiver probes: a miss decodes as 1.
            k.schedule(receiver).unwrap();
            !k.cache_touch(receiver, target).unwrap().hit
        };
        // Round-robin: the channel works.
        assert!(!run(SchedPolicy::RoundRobin, false));
        assert!(run(SchedPolicy::RoundRobin, true));
        // Time partitioning with flush: receiver always misses —
        // the decoded value no longer depends on the sender's bit.
        let m0 = run(SchedPolicy::TimePartitioned { flush_cache: true }, false);
        let m1 = run(SchedPolicy::TimePartitioned { flush_cache: true }, true);
        assert_eq!(m0, m1, "mitigated channel carries no information");
    }
}
