//! A Secure Enclave Processor (SEP) substrate.
//!
//! §II-B: Apple's SEP "is separated from the main application CPU,
//! accesses DRAM with inline encryption and runs an L4-style microkernel
//! … By using a dedicated processor, this construction offers strong
//! isolation with reduced side channel opportunities … But similar to
//! TrustZone, SEP is inflexible and offers only two separated execution
//! environments." The model:
//!
//! * Trusted components spawn *on the coprocessor*, backed by
//!   [`FrameOwner::SepPrivate`] frames: the main CPU and all devices are
//!   blocked, and the inline encryption shows a bus probe only
//!   ciphertext (writes are integrity-detected).
//! * The main CPU hosts untrusted domains; every call crossing the
//!   processor boundary pays a mailbox round trip — the most expensive
//!   local invocation in the E4 cost ladder.
//! * Because the SEP has its own caches, components on it do not share
//!   the application CPU's cache — no cross-boundary prime+probe, hence
//!   `temporal_isolation: true` ("reduced side channel opportunities").
//! * A fused key ([`lateral_hw::fuse::FuseAccess::SepOnly`]) roots
//!   sealing and attestation, like the on-device HSM the paper compares
//!   the SEP to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

use lateral_crypto::aead::Aead;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_hw::bus::AccessKind;
use lateral_hw::fuse::FuseAccess;
use lateral_hw::machine::Machine;
use lateral_hw::mem::{Frame, FrameOwner};
use lateral_hw::mmu::{AddressSpace, Rights};
use lateral_hw::{Initiator, VirtAddr, World, PAGE_SIZE};
use lateral_substrate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};

/// Name of the fused SEP root key (the UID fused at manufacture).
pub const SEP_KEY_FUSE: &str = "sep-uid";

struct SepDomain {
    aspace: AddressSpace,
    frames: Vec<Frame>,
    /// `true` for coprocessor-side (trusted) domains.
    on_sep: bool,
}

/// The SEP substrate: coprocessor services + application-CPU hosts.
pub struct Sep {
    machine: Machine,
    fabric: Fabric,
    kstate: BTreeMap<DomainId, SepDomain>,
    attest_key: SigningKey,
    rng: Drbg,
    profile: SubstrateProfile,
}

impl std::fmt::Debug for Sep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sep({} domains on '{}')",
            self.fabric.table().len(),
            self.machine.name
        )
    }
}

impl Sep {
    /// Initializes the SEP on `machine`, burning the UID fuse on fresh
    /// machines.
    pub fn new(mut machine: Machine, seed: &str) -> Sep {
        let mut rng = Drbg::from_seed(&[b"lateral.sep.", seed.as_bytes()].concat());
        if !machine.fuses.is_locked() {
            let key = rng.gen_key();
            machine
                .fuses
                .burn(SEP_KEY_FUSE, key, FuseAccess::SepOnly)
                .expect("burning on an unlocked bank succeeds");
            machine.fuses.lock();
        }
        let uid = machine
            .fuses
            .read(Initiator::Sep, SEP_KEY_FUSE)
            .expect("SEP reads its fuse");
        let attest_key =
            SigningKey::from_seed(&[b"sep-attest".as_slice(), uid.as_slice()].concat());
        Sep {
            machine,
            fabric: Fabric::new(),
            kstate: BTreeMap::new(),
            attest_key,
            rng,
            profile: SubstrateProfile {
                name: "sep".to_string(),
                defends: models(&[
                    AttackerModel::RemoteSoftware,
                    AttackerModel::CompromisedOs,
                    AttackerModel::MaliciousDevice,
                    AttackerModel::PhysicalBus,
                    AttackerModel::PhysicalBoot,
                ]),
                features: Features {
                    spatial_isolation: true,
                    temporal_isolation: true,
                    memory_encryption: true,
                    trust_anchor: true,
                    attestation: true,
                    sealed_storage: true,
                    // "Only two separated execution environments": the
                    // coprocessor is one fixed trusted environment.
                    max_trusted_domains: Some(1),
                    hosts_legacy_os: true,
                },
                // An L4-style microkernel plus fixed services.
                tcb_loc: 15_000,
            },
        }
    }

    /// Access to the underlying machine (attack injection).
    pub fn machine(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Immutable machine access.
    pub fn machine_ref(&self) -> &Machine {
        &self.machine
    }

    /// Spawns an untrusted domain on the application CPU.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::OutOfResources`] on memory exhaustion.
    pub fn spawn_host(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Untrusted)
    }

    /// Whether a domain runs on the coprocessor.
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn on_sep(&self, domain: DomainId) -> Result<bool, SubstrateError> {
        Ok(self.kdomain(domain)?.on_sep)
    }

    /// Physical frames backing a domain (for probe experiments).
    ///
    /// # Errors
    ///
    /// [`SubstrateError::NoSuchDomain`].
    pub fn domain_frames(&self, domain: DomainId) -> Result<Vec<Frame>, SubstrateError> {
        Ok(self.kdomain(domain)?.frames.clone())
    }

    const MEM_BASE: u64 = 0x10_0000;

    fn kdomain(&self, id: DomainId) -> Result<&SepDomain, SubstrateError> {
        self.kstate.get(&id).ok_or(SubstrateError::NoSuchDomain(id))
    }

    fn initiator_for(&self, id: DomainId) -> Result<Initiator, SubstrateError> {
        Ok(if self.kdomain(id)?.on_sep {
            Initiator::Sep
        } else {
            Initiator::cpu(World::Normal)
        })
    }

    fn seal_key(&self, measurement: &Digest) -> [u8; 32] {
        self.machine
            .fuses
            .derive(
                SEP_KEY_FUSE,
                &[b"seal".as_slice(), measurement.as_bytes()].concat(),
            )
            .expect("UID fuse present")
    }
}

impl BackendPolicy for Sep {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, kind: DomainKind) -> Result<(), SubstrateError> {
        let on_sep = matches!(kind, DomainKind::Trusted);
        let owner = if on_sep {
            FrameOwner::SepPrivate
        } else {
            FrameOwner::Normal
        };
        let pages = self.fabric.table().get(id)?.spec.mem_pages.max(1);
        let frames = self
            .machine
            .mem
            .alloc_n(owner, pages)
            .map_err(|e| SubstrateError::OutOfResources(e.to_string()))?;
        let mut aspace = AddressSpace::new();
        for (i, frame) in frames.iter().enumerate() {
            aspace.map(
                VirtAddr(Self::MEM_BASE + (i * PAGE_SIZE) as u64),
                *frame,
                Rights::RW,
            );
        }
        self.kstate.insert(
            id,
            SepDomain {
                aspace,
                frames,
                on_sep,
            },
        );
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(k) = self.kstate.remove(&id) {
            for frame in k.frames {
                self.machine.mem.free(frame);
            }
        }
    }

    fn crossing(&self, caller: DomainId, target: DomainId) -> Result<CrossingKind, SubstrateError> {
        // Crossing the processor boundary costs a mailbox round trip;
        // same-side calls are ordinary IPC.
        if self.kdomain(caller)?.on_sep == self.kdomain(target)?.on_sep {
            Ok(CrossingKind::Ipc)
        } else {
            Ok(CrossingKind::Mailbox)
        }
    }

    fn crossing_cost(&self, kind: CrossingKind, bytes: usize) -> u64 {
        let base = match kind {
            CrossingKind::Mailbox => 2 * self.machine.costs.sep_mailbox,
            _ => self.machine.costs.ipc_round_trip,
        };
        base + self.machine.costs.copy_cost(bytes)
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Same processor side → IPC; crossing to/from the SEP → a
        // mailbox round trip.
        let c = &self.machine.costs;
        let mut m = fabric::CrossingCostModel::uniform(
            &self.profile.name,
            c.ipc_round_trip,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
            fabric::InvokeKindRule::SameSideElse {
                same: CrossingKind::Ipc,
                cross: CrossingKind::Mailbox,
            },
        );
        m.set(
            CrossingKind::Mailbox,
            2 * c.sep_mailbox,
            c.copy_per_byte_num,
            c.copy_per_byte_den,
        );
        m
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.machine.clock.advance(cycles);
    }

    fn seal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        if !self.kdomain(domain)?.on_sep {
            return Err(SubstrateError::Unsupported(
                "sealing is a coprocessor service".into(),
            ));
        }
        Ok(Aead::new(&self.seal_key(measurement)).seal(0, b"sep.seal", data))
    }

    fn unseal_blob(
        &mut self,
        domain: DomainId,
        measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        if !self.kdomain(domain)?.on_sep {
            return Err(SubstrateError::Unsupported(
                "unsealing is a coprocessor service".into(),
            ));
        }
        Aead::new(&self.seal_key(measurement))
            .open(0, b"sep.seal", sealed)
            .map_err(|_| {
                SubstrateError::CryptoFailure(
                    "unseal failed: wrong identity or tampered blob".into(),
                )
            })
    }

    fn attest_evidence(
        &mut self,
        domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        if !self.kdomain(domain)?.on_sep {
            return Err(SubstrateError::Unsupported(
                "only coprocessor components can be attested".into(),
            ));
        }
        Ok(AttestationEvidence::sign(
            "sep",
            &self.attest_key,
            measurement,
            Digest::ZERO,
            report_data,
        ))
    }
}

impl Substrate for Sep {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    /// Spawns a trusted component on the coprocessor.
    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        Ok(self.attest_key.verifying_key())
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        let initiator = self.initiator_for(domain)?;
        let spans = self
            .kdomain(domain)?
            .aspace
            .translate_range(
                VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                len,
                AccessKind::Read,
            )
            .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
        let mut out = Vec::with_capacity(len);
        for (pa, span_len) in spans {
            let bytes = self
                .machine
                .bus_read(initiator, pa, span_len)
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            out.extend_from_slice(&bytes);
        }
        Ok(out)
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        let initiator = self.initiator_for(domain)?;
        let spans = self
            .kdomain(domain)?
            .aspace
            .translate_range(
                VirtAddr(Self::MEM_BASE.saturating_add(offset as u64)),
                data.len(),
                AccessKind::Write,
            )
            .map_err(|e| SubstrateError::AccessDenied(format!("MMU: {e}")))?;
        let mut cursor = 0usize;
        for (pa, span_len) in spans {
            self.machine
                .bus_write(initiator, pa, &data[cursor..cursor + span_len])
                .map_err(|e| SubstrateError::AccessDenied(e.to_string()))?;
            cursor += span_len;
        }
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("domain-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.machine.clock.now()
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::machine::MachineBuilder;
    use lateral_substrate::conformance;
    use lateral_substrate::testkit::Echo;

    fn sep() -> Sep {
        let machine = MachineBuilder::new().name("sep-test").frames(128).build();
        Sep::new(machine, "test")
    }

    #[test]
    fn conformance_suite_passes() {
        let mut s = sep();
        let report = conformance::run(&mut s);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
    }

    #[test]
    fn app_cpu_cannot_touch_sep_memory() {
        let mut s = sep();
        let svc = s
            .spawn(DomainSpec::named("biometrics"), Box::new(Echo))
            .unwrap();
        s.mem_write(svc, 0, b"fingerprint template").unwrap();
        let frame = s.domain_frames(svc).unwrap()[0];
        assert!(s
            .machine()
            .bus_read(Initiator::cpu(World::Normal), frame.base(), 8)
            .is_err());
        assert!(s
            .machine()
            .bus_read(Initiator::cpu(World::Secure), frame.base(), 8)
            .is_err());
    }

    #[test]
    fn probe_sees_ciphertext_thanks_to_inline_encryption() {
        let mut s = sep();
        let svc = s.spawn(DomainSpec::named("keys"), Box::new(Echo)).unwrap();
        s.mem_write(svc, 0, b"class key").unwrap();
        let frame = s.domain_frames(svc).unwrap()[0];
        let view = s
            .machine()
            .bus_read(Initiator::Probe, frame.base(), 9)
            .unwrap();
        assert_ne!(view, b"class key");
    }

    #[test]
    fn mailbox_crossing_is_most_expensive_local_call() {
        let mut s = sep();
        let svc = s.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
        let svc2 = s.spawn(DomainSpec::named("svc2"), Box::new(Echo)).unwrap();
        let app = s
            .spawn_host(DomainSpec::named("app"), Box::new(Echo))
            .unwrap();
        let internal = s.grant_channel(svc, svc2, Badge(0)).unwrap();
        let mailbox = s.grant_channel(app, svc, Badge(0)).unwrap();
        let t0 = s.now();
        s.invoke(svc, &internal, b"x").unwrap();
        let internal_cost = s.now() - t0;
        let t1 = s.now();
        s.invoke(app, &mailbox, b"x").unwrap();
        let mailbox_cost = s.now() - t1;
        assert!(mailbox_cost > internal_cost);
    }

    #[test]
    fn host_domains_cannot_seal_or_attest() {
        let mut s = sep();
        let app = s
            .spawn_host(DomainSpec::named("app"), Box::new(Echo))
            .unwrap();
        assert!(matches!(
            s.seal(app, b"x"),
            Err(SubstrateError::Unsupported(_))
        ));
        assert!(matches!(
            s.attest(app, b"x"),
            Err(SubstrateError::Unsupported(_))
        ));
    }

    #[test]
    fn uid_rooted_identity_is_stable() {
        let a = sep();
        let k1 = a.platform_verifying_key().unwrap();
        let machine = MachineBuilder::new().name("sep-test").frames(128).build();
        let b = Sep::new(machine, "test");
        assert_eq!(
            k1.to_bytes(),
            b.platform_verifying_key().unwrap().to_bytes()
        );
    }
}
