//! The secure channel: a TLS-like handshake plus an AEAD record layer,
//! with optional attestation binding (RA-TLS style).
//!
//! §III-C's email client isolates "a component for transport-layer
//! security (TLS) and login"; §III-C's smart meter goes further and
//! *attests* the peer before trusting it: "the smart meter would verify
//! the code identity of the data anonymizer component before sending it
//! any readings." Both are built here:
//!
//! * **Handshake** — ephemeral Diffie–Hellman shares and nonces from both
//!   sides; each authenticating party signs the transcript hash, so a
//!   man-in-the-middle cannot splice itself in without failing the
//!   signature or the key-pinning check.
//! * **Attestation binding** — a party may attach
//!   [`AttestationEvidence`] whose `report_data` *is* the transcript
//!   hash: the evidence cannot be relayed onto a different channel
//!   (§II-D's emulation/proxy argument).
//! * **Records** — sequence-numbered AEAD boxes; replayed, reordered, or
//!   corrupted records are rejected.

use lateral_crypto::aead::Aead;
use lateral_crypto::dh::{EphemeralSecret, PublicShare};
use lateral_crypto::hmac::hkdf;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_substrate::attest::{AttestationEvidence, TrustPolicy, VerifiedIdentity};
use lateral_substrate::substrate::Substrate;
use lateral_substrate::DomainId;
use lateral_telemetry::TraceContext;

use crate::wire::{put_field, Reader};
use crate::NetError;

/// Produces channel-bound attestation evidence for `domain` by asking
/// its substrate to attest with the handshake transcript as report data
/// — the glue between the fabric engine's evidence assembly and the
/// RA-TLS-style binding below. Pass the result to
/// [`ServerHandshake::respond`] or the `client_evidence` closure of
/// [`ClientHandshake::finish`].
///
/// # Errors
///
/// [`NetError::AttestationRejected`] when the substrate cannot attest
/// the domain (pure software isolation, host-side domains, …).
pub fn substrate_evidence(
    sub: &mut dyn Substrate,
    domain: DomainId,
    transcript: &Digest,
) -> Result<AttestationEvidence, NetError> {
    sub.attest(domain, transcript.as_bytes())
        .map_err(|e| NetError::AttestationRejected(format!("substrate refused to attest: {e}")))
}

/// Serializes attestation evidence for the wire.
pub fn encode_evidence(ev: &AttestationEvidence) -> Vec<u8> {
    let mut out = Vec::new();
    put_field(&mut out, ev.substrate.as_bytes());
    put_field(&mut out, &ev.platform_key);
    put_field(&mut out, ev.measurement.as_bytes());
    put_field(&mut out, ev.platform_state.as_bytes());
    put_field(&mut out, &ev.report_data);
    put_field(&mut out, &ev.signature);
    out
}

/// Parses attestation evidence from the wire.
///
/// # Errors
///
/// [`NetError::Decode`] on malformed input.
pub fn decode_evidence(bytes: &[u8]) -> Result<AttestationEvidence, NetError> {
    let mut r = Reader::new(bytes);
    let substrate = String::from_utf8(r.field()?.to_vec())
        .map_err(|_| NetError::Decode("substrate not UTF-8".into()))?;
    let platform_key: [u8; 32] = r.array()?;
    let measurement = Digest(r.array()?);
    let platform_state = Digest(r.array()?);
    let report_data = r.field()?.to_vec();
    let signature: [u8; 64] = r.array()?;
    r.finish()?;
    Ok(AttestationEvidence {
        substrate,
        platform_key,
        measurement,
        platform_state,
        report_data,
        signature,
    })
}

/// What a party requires of its peer.
#[derive(Clone, Default)]
pub struct ChannelPolicy {
    /// Pinned peer signing keys; when set, the peer's identity key must
    /// be in this set.
    pub pinned_keys: Option<Vec<[u8; 32]>>,
    /// Attestation requirements; when set, the peer MUST present valid
    /// evidence bound to this channel.
    pub attestation: Option<TrustPolicy>,
    /// Revoked measurement digests (a registry's revocation list): any
    /// presented evidence whose measurement is on this list is
    /// rejected, even before the trust policy runs.
    pub revoked_measurements: Option<Vec<[u8; 32]>>,
}

impl std::fmt::Debug for ChannelPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ChannelPolicy(pinned={}, attestation={}, revocations={})",
            self.pinned_keys.is_some(),
            self.attestation.is_some(),
            self.revoked_measurements.as_ref().map_or(0, Vec::len)
        )
    }
}

impl ChannelPolicy {
    /// Accepts any authenticated peer (no pinning, no attestation).
    pub fn open() -> ChannelPolicy {
        ChannelPolicy::default()
    }

    /// Pins the peer to one exact identity key.
    pub fn pin(key: VerifyingKey) -> ChannelPolicy {
        ChannelPolicy {
            pinned_keys: Some(vec![key.to_bytes()]),
            attestation: None,
            revoked_measurements: None,
        }
    }

    /// Additionally requires channel-bound attestation.
    #[must_use]
    pub fn with_attestation(mut self, policy: TrustPolicy) -> ChannelPolicy {
        self.attestation = Some(policy);
        self
    }

    /// Attaches a revocation list (e.g. `Registry::revoked_digests`
    /// from `lateral-registry`): evidence carrying any of these
    /// measurements is rejected regardless of what the trust policy
    /// would say.
    #[must_use]
    pub fn with_revocations(mut self, revoked: Vec<[u8; 32]>) -> ChannelPolicy {
        self.revoked_measurements = Some(revoked);
        self
    }

    fn check_peer(
        &self,
        peer_key: &[u8; 32],
        evidence: Option<&AttestationEvidence>,
        transcript: &Digest,
    ) -> Result<Option<VerifiedIdentity>, NetError> {
        if let Some(pinned) = &self.pinned_keys {
            if !pinned.contains(peer_key) {
                return Err(NetError::HandshakeFailed(
                    "peer identity key is not pinned".into(),
                ));
            }
        }
        if let (Some(revoked), Some(ev)) = (&self.revoked_measurements, evidence) {
            if revoked.contains(&ev.measurement.0) {
                return Err(NetError::AttestationRejected(format!(
                    "peer measurement {} is revoked",
                    ev.measurement.short_hex()
                )));
            }
        }
        match (&self.attestation, evidence) {
            (None, _) => Ok(None),
            (Some(_), None) => Err(NetError::AttestationRejected(
                "peer presented no attestation evidence".into(),
            )),
            (Some(policy), Some(ev)) => {
                let id = policy
                    .verify(ev)
                    .map_err(|e| NetError::AttestationRejected(e.to_string()))?;
                if id.report_data != transcript.as_bytes() {
                    return Err(NetError::AttestationRejected(
                        "evidence not bound to this channel (relay attack?)".into(),
                    ));
                }
                Ok(Some(id))
            }
        }
    }
}

/// What a party learns about its peer after the handshake.
#[derive(Clone, Debug)]
pub struct PeerInfo {
    /// The peer's authenticated identity key.
    pub key: [u8; 32],
    /// Verified attestation identity, when the policy demanded one.
    pub attested: Option<VerifiedIdentity>,
}

/// An established channel: AEAD record layer with replay protection.
pub struct SecureChannel {
    send: Aead,
    recv: Aead,
    send_seq: u64,
    recv_seq: u64,
}

impl std::fmt::Debug for SecureChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SecureChannel(sent={}, received={})",
            self.send_seq, self.recv_seq
        )
    }
}

impl SecureChannel {
    /// Derives a channel pair directly from a 32-byte shared secret —
    /// the session-resumption entry point. Both sides must agree on the
    /// secret (e.g. the resumption master secret from
    /// [`crate::session`]); `client_side` selects the key orientation
    /// exactly as the full handshake does.
    pub fn from_shared(shared: &[u8; 32], client_side: bool) -> SecureChannel {
        derive_channel(shared, client_side)
    }

    /// Seals the next outgoing record.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let boxed = self.send.seal(self.send_seq, b"channel.record", plaintext);
        self.send_seq += 1;
        boxed
    }

    /// Opens the next incoming record, enforcing order (anti-replay).
    ///
    /// # Errors
    ///
    /// [`NetError::RecordRejected`] for corrupted, replayed, reordered, or
    /// foreign records.
    pub fn open(&mut self, record: &[u8]) -> Result<Vec<u8>, NetError> {
        let plain = self
            .recv
            .open(self.recv_seq, b"channel.record", record)
            .map_err(|_| {
                NetError::RecordRejected(
                    "authentication failed (corrupt, replayed, or out of order)".into(),
                )
            })?;
        self.recv_seq += 1;
        Ok(plain)
    }

    /// Seals the next outgoing record with a [`TraceContext`] riding
    /// *inside* the sealed payload, so trace propagation is
    /// confidentiality- and integrity-protected along with the data —
    /// an on-path adversary can neither read nor splice causal links.
    pub fn seal_traced(&mut self, ctx: TraceContext, plaintext: &[u8]) -> Vec<u8> {
        let mut body = Vec::with_capacity(plaintext.len() + 32);
        put_field(&mut body, &ctx.encode());
        put_field(&mut body, plaintext);
        self.seal(&body)
    }

    /// Opens a record sealed by [`SecureChannel::seal_traced`],
    /// returning the propagated context and the payload. The embedded
    /// context codec is strict: a record whose context field is
    /// malformed is rejected whole, exactly like a forged record.
    ///
    /// # Errors
    ///
    /// [`NetError::RecordRejected`] for corrupted, replayed, reordered,
    /// or foreign records; [`NetError::Decode`] when the sealed body is
    /// not a well-formed (context, payload) pair.
    pub fn open_traced(&mut self, record: &[u8]) -> Result<(TraceContext, Vec<u8>), NetError> {
        let body = self.open(record)?;
        let mut r = Reader::new(&body);
        let ctx_field = r.field()?;
        let ctx = TraceContext::decode(ctx_field)
            .map_err(|_| NetError::Decode("malformed trace context in sealed record".into()))?;
        let payload = r.field()?.to_vec();
        r.finish()?;
        Ok((ctx, payload))
    }

    /// Seals an outgoing record with an **explicit** sequence number
    /// (8-byte LE prefix), for lossy transports where the sender must
    /// retransmit. The AEAD is deterministic and keyed by the embedded
    /// sequence, so a retransmission is byte-identical — the receiver
    /// authenticates duplicates instead of desynchronizing on them.
    pub fn seal_numbered(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        let boxed = self.send.seal(seq, b"channel.record.numbered", plaintext);
        self.send_seq += 1;
        let mut record = seq.to_le_bytes().to_vec();
        record.extend_from_slice(&boxed);
        record
    }

    /// Opens a numbered record from a lossy transport.
    ///
    /// * expected sequence → `Ok(Some(plaintext))`, window advances;
    /// * authentic duplicate of an already-delivered record →
    ///   `Ok(None)` (dedup — retransmissions are absorbed silently);
    /// * a sequence from the *future* means an earlier record was lost
    ///   for good → [`NetError::RecordRejected`], as is any record that
    ///   fails authentication.
    ///
    /// # Errors
    ///
    /// [`NetError::RecordRejected`] on gaps, corruption, or forgeries.
    pub fn open_numbered(&mut self, record: &[u8]) -> Result<Option<Vec<u8>>, NetError> {
        if record.len() < 8 {
            return Err(NetError::RecordRejected("numbered record too short".into()));
        }
        let seq = u64::from_le_bytes(record[..8].try_into().expect("8-byte prefix"));
        let boxed = &record[8..];
        // Authenticate before classifying: the sequence prefix is
        // attacker-writable, so gap-vs-duplicate is only decided for
        // records the AEAD (keyed by that same claimed sequence) proves
        // the peer actually sent. Classifying first would let a forged
        // future-sequence prefix masquerade as a genuine loss signal.
        let plain = self
            .recv
            .open(seq, b"channel.record.numbered", boxed)
            .map_err(|_| {
                NetError::RecordRejected("numbered record failed to authenticate".into())
            })?;
        if seq > self.recv_seq {
            return Err(NetError::RecordRejected(format!(
                "sequence gap: expected {}, got {} (record lost)",
                self.recv_seq, seq
            )));
        }
        if seq < self.recv_seq {
            // Authentic retransmission of something already delivered.
            return Ok(None);
        }
        self.recv_seq += 1;
        Ok(Some(plain))
    }
}

/// A deterministic capped-doubling retransmission schedule on the
/// logical clock: attempt 0 fires immediately, attempt `i` fires
/// `min(base << (i-1), cap)` ticks after attempt `i-1`, for at most
/// `attempts` transmissions — optionally bounded by an absolute
/// logical-clock `deadline` (deadline-aware retry).
///
/// Two delivery models share the schedule:
///
/// * **blind** ([`BackoffSchedule::eager`]): the sender cannot observe
///   delivery at all, so every scheduled attempt is transmitted and the
///   receiver's dedup absorbs the surplus — the old fixed-count
///   `send_with_retry` semantics.
/// * **link-acknowledged** ([`BackoffSchedule::capped`]): the transport
///   reports whether a copy was handed to the destination inbox (not
///   whether the application accepted it), so the sender stops at the
///   first delivered copy and classifies full-schedule silence as a
///   typed [`NetError::Timeout`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BackoffSchedule {
    /// Delay (logical ticks) between the first and second attempt.
    pub base: u64,
    /// Upper bound on the doubling delay.
    pub cap: u64,
    /// Maximum transmissions (≥ 1).
    pub attempts: u32,
    /// Absolute logical-clock deadline: an attempt whose fire time is
    /// past this point is not transmitted ([`NetError::Timeout`]).
    pub deadline: Option<u64>,
    /// `true`: transmit every scheduled attempt regardless of delivery
    /// (the sender is delivery-blind). `false`: stop at the first
    /// delivered copy.
    pub blind: bool,
}

impl BackoffSchedule {
    /// A link-acknowledged capped-doubling schedule.
    #[must_use]
    pub fn capped(base: u64, cap: u64, attempts: u32) -> BackoffSchedule {
        BackoffSchedule {
            base,
            cap,
            attempts: attempts.max(1),
            deadline: None,
            blind: false,
        }
    }

    /// The blind fixed-count schedule (zero delay, transmit every
    /// attempt) — `send_with_retry`'s historical semantics.
    #[must_use]
    pub fn eager(attempts: u32) -> BackoffSchedule {
        BackoffSchedule {
            base: 0,
            cap: 0,
            attempts: attempts.max(1),
            deadline: None,
            blind: true,
        }
    }

    /// Bounds the schedule by an absolute logical-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, at: u64) -> BackoffSchedule {
        self.deadline = Some(at);
        self
    }

    /// Delay before transmission `attempt` (0-based): 0 for the first,
    /// then `min(base << (attempt-1), cap)`.
    #[must_use]
    pub fn delay_before(&self, attempt: u32) -> u64 {
        if attempt == 0 || self.base == 0 {
            return 0;
        }
        let doubled = self
            .base
            .checked_shl(attempt - 1)
            .unwrap_or(self.cap.max(self.base));
        doubled.min(self.cap.max(self.base))
    }
}

/// Sends `record` on a deterministic [`BackoffSchedule`], advancing
/// `clock` by each inter-attempt delay. Returns the number of
/// transmissions performed.
///
/// Link-acknowledged schedules stop at the first delivered copy; blind
/// schedules transmit every attempt ([`BackoffSchedule::eager`]). The
/// schedule — not wall-clock — decides every retransmission point, so
/// two identical runs retry at identical logical times.
///
/// # Errors
///
/// [`NetError::RetryExhausted`] carrying the attempt count and the
/// final classified cause: a [`NetError::Timeout`] when every scheduled
/// copy went undelivered or the deadline passed, or a hard send error
/// (e.g. [`NetError::UnknownAddr`]) which aborts the schedule at once.
pub fn send_with_backoff(
    net: &mut crate::sim::Network,
    from: &crate::Addr,
    to: &crate::Addr,
    record: &[u8],
    schedule: &BackoffSchedule,
    clock: &mut u64,
) -> Result<u32, NetError> {
    let mut attempts = 0u32;
    for attempt in 0..schedule.attempts.max(1) {
        let fire_at = clock.saturating_add(schedule.delay_before(attempt));
        if let Some(deadline) = schedule.deadline {
            if fire_at > deadline {
                return Err(NetError::RetryExhausted {
                    attempts,
                    last_err: Box::new(NetError::Timeout(format!(
                        "logical deadline {deadline} reached at tick {fire_at} \
                         after {attempts} transmission(s)"
                    ))),
                });
            }
        }
        *clock = fire_at;
        // The ack is the link layer's per-destination receipt: copies
        // that actually reached `to`'s inbox. A global delivered-count
        // delta would also move for redirected traffic (stolen by the
        // adversary) or unrelated deliveries — a false ack that makes
        // the sender stop retrying a record the destination never saw.
        let delivered = match net.send(from, to, record) {
            Ok(copies) => copies,
            Err(e) => {
                return Err(NetError::RetryExhausted {
                    attempts: attempts + 1,
                    last_err: Box::new(e),
                });
            }
        };
        attempts += 1;
        if !schedule.blind && delivered > 0 {
            return Ok(attempts);
        }
    }
    if schedule.blind {
        return Ok(attempts);
    }
    Err(NetError::RetryExhausted {
        attempts,
        last_err: Box::new(NetError::Timeout(format!(
            "no copy delivered within {attempts} transmission(s)"
        ))),
    })
}

/// Sends `record` through the adversarial network up to `attempts` times
/// (bounded retry). The sender cannot observe drops, so every attempt is
/// transmitted; the receiver's [`SecureChannel::open_numbered`] dedup
/// absorbs the surplus copies. Combined with a transient attack window
/// ([`crate::sim::AttackMode::DropFirst`] or a temporary
/// [`crate::sim::AttackMode::DropAll`]), at least one copy lands as soon
/// as the window closes within the retry budget.
///
/// Thin wrapper over [`send_with_backoff`] with the blind
/// [`BackoffSchedule::eager`] schedule (zero delays, every attempt
/// transmitted, drops invisible).
///
/// # Errors
///
/// [`NetError::UnknownAddr`] when the destination is not registered.
pub fn send_with_retry(
    net: &mut crate::sim::Network,
    from: &crate::Addr,
    to: &crate::Addr,
    record: &[u8],
    attempts: u32,
) -> Result<(), NetError> {
    let mut clock = 0;
    match send_with_backoff(
        net,
        from,
        to,
        record,
        &BackoffSchedule::eager(attempts),
        &mut clock,
    ) {
        Ok(_) => Ok(()),
        Err(NetError::RetryExhausted { last_err, .. }) => Err(*last_err),
        Err(e) => Err(e),
    }
}

fn transcript_digest(client_hello: &[u8], server_core: &[u8]) -> Digest {
    Digest::of_parts(&[b"lateral.channel.transcript", client_hello, server_core])
}

fn derive_channel(shared: &[u8; 32], client_side: bool) -> SecureChannel {
    let c2s = hkdf(b"lateral.channel", shared, b"c2s");
    let s2c = hkdf(b"lateral.channel", shared, b"s2c");
    if client_side {
        SecureChannel {
            send: Aead::new(&c2s),
            recv: Aead::new(&s2c),
            send_seq: 0,
            recv_seq: 0,
        }
    } else {
        SecureChannel {
            send: Aead::new(&s2c),
            recv: Aead::new(&c2s),
            send_seq: 0,
            recv_seq: 0,
        }
    }
}

// ---------------------------------------------------------------- client

/// Client-side handshake state after sending the hello.
///
/// ```
/// use lateral_crypto::{rng::Drbg, sign::SigningKey};
/// use lateral_net::channel::{ChannelPolicy, ClientHandshake, ServerHandshake};
///
/// # fn main() -> Result<(), lateral_net::NetError> {
/// let (mut crng, mut srng) = (Drbg::from_seed(b"c"), Drbg::from_seed(b"s"));
/// let (client, hello) = ClientHandshake::start(SigningKey::from_seed(b"client"), &mut crng);
/// let pending = ServerHandshake::accept(&SigningKey::from_seed(b"server"), &mut srng, &hello)?;
/// let (awaiting, server_hello) = pending.respond(None, &hello);
/// let (mut c, finish, _peer) = client.finish(&server_hello, &ChannelPolicy::open(), |_| None)?;
/// let (mut s, _info) = awaiting.complete(&finish, &ChannelPolicy::open())?;
/// let record = c.seal(b"hello over hostile wires");
/// assert_eq!(s.open(&record)?, b"hello over hostile wires");
/// # Ok(())
/// # }
/// ```
pub struct ClientHandshake {
    eph: EphemeralSecret,
    hello_bytes: Vec<u8>,
    identity: SigningKey,
}

impl std::fmt::Debug for ClientHandshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ClientHandshake(..)")
    }
}

impl ClientHandshake {
    /// Starts a handshake; returns the state and the ClientHello bytes to
    /// send.
    pub fn start(identity: SigningKey, rng: &mut Drbg) -> (ClientHandshake, Vec<u8>) {
        let eph = EphemeralSecret::generate(rng);
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        let mut hello = Vec::new();
        put_field(&mut hello, &eph.public_share().0);
        put_field(&mut hello, &nonce);
        (
            ClientHandshake {
                eph,
                hello_bytes: hello.clone(),
                identity,
            },
            hello,
        )
    }

    /// Processes the ServerHello; on success returns the channel, the
    /// ClientFinish bytes to send, and the server's verified info.
    ///
    /// `client_evidence` is attached when the *client* must attest (the
    /// smart meter proving itself to the utility); it must be produced by
    /// calling the substrate with `report_data = transcript` — pass a
    /// producer closure so the binding is exact.
    ///
    /// # Errors
    ///
    /// [`NetError::HandshakeFailed`] / [`NetError::AttestationRejected`]
    /// on any verification failure.
    pub fn finish(
        self,
        server_hello: &[u8],
        policy: &ChannelPolicy,
        client_evidence: impl FnOnce(&Digest) -> Option<AttestationEvidence>,
    ) -> Result<(SecureChannel, Vec<u8>, PeerInfo), NetError> {
        let mut r = Reader::new(server_hello);
        let server_share: [u8; 32] = r.array()?;
        let server_nonce: [u8; 32] = r.array()?;
        let server_key: [u8; 32] = r.array()?;
        let signature: [u8; 64] = r.array()?;
        let evidence_bytes = r.field()?.to_vec();
        r.finish()?;

        let mut server_core = Vec::new();
        put_field(&mut server_core, &server_share);
        put_field(&mut server_core, &server_nonce);
        put_field(&mut server_core, &server_key);
        let transcript = transcript_digest(&self.hello_bytes, &server_core);

        // Verify the server's transcript signature.
        let vk = VerifyingKey::from_bytes(&server_key)
            .map_err(|e| NetError::HandshakeFailed(format!("bad server key: {e}")))?;
        let sig = Signature::from_bytes(&signature)
            .map_err(|e| NetError::HandshakeFailed(format!("bad signature: {e}")))?;
        vk.verify(transcript.as_bytes(), &sig)
            .map_err(|_| NetError::HandshakeFailed("server signature invalid".into()))?;

        // Policy checks: pinning + attestation.
        let evidence = if evidence_bytes.is_empty() {
            None
        } else {
            Some(decode_evidence(&evidence_bytes)?)
        };
        let attested = policy.check_peer(&server_key, evidence.as_ref(), &transcript)?;

        // Key agreement bound to the transcript.
        let shared = self
            .eph
            .agree(&PublicShare(server_share), transcript.as_bytes())
            .map_err(|e| NetError::HandshakeFailed(format!("bad server share: {e}")))?;
        let channel = derive_channel(&shared, true);

        // ClientFinish: our identity, transcript signature, and optional
        // channel-bound evidence.
        let finish_transcript =
            Digest::of_parts(&[b"lateral.channel.client-finish", transcript.as_bytes()]);
        let my_key = self.identity.verifying_key().to_bytes();
        let my_sig = self.identity.sign(finish_transcript.as_bytes()).to_bytes();
        let my_evidence = client_evidence(&transcript);
        let mut finish = Vec::new();
        put_field(&mut finish, &my_key);
        put_field(&mut finish, &my_sig);
        put_field(
            &mut finish,
            &my_evidence
                .as_ref()
                .map(encode_evidence)
                .unwrap_or_default(),
        );

        Ok((
            channel,
            finish,
            PeerInfo {
                key: server_key,
                attested,
            },
        ))
    }
}

// ---------------------------------------------------------------- server

/// Server-side state after reading the ClientHello; exposes the
/// transcript so the caller can produce channel-bound evidence.
pub struct ServerHandshake {
    eph: EphemeralSecret,
    transcript: Digest,
    server_core: Vec<u8>,
    signature: [u8; 64],
}

impl std::fmt::Debug for ServerHandshake {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerHandshake({})", self.transcript.short_hex())
    }
}

impl ServerHandshake {
    /// Processes a ClientHello. Returns the pending state; call
    /// [`ServerHandshake::transcript`] to bind evidence, then
    /// [`ServerHandshake::respond`].
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on malformed hello.
    pub fn accept(
        identity: &SigningKey,
        rng: &mut Drbg,
        client_hello: &[u8],
    ) -> Result<ServerHandshake, NetError> {
        let mut r = Reader::new(client_hello);
        let _client_share: [u8; 32] = r.array()?;
        let _client_nonce: [u8; 32] = r.array()?;
        r.finish()?;

        let eph = EphemeralSecret::generate(rng);
        let mut server_nonce = [0u8; 32];
        rng.fill_bytes(&mut server_nonce);
        let mut server_core = Vec::new();
        put_field(&mut server_core, &eph.public_share().0);
        put_field(&mut server_core, &server_nonce);
        put_field(&mut server_core, &identity.verifying_key().to_bytes());
        let transcript = transcript_digest(client_hello, &server_core);
        let signature = identity.sign(transcript.as_bytes()).to_bytes();
        Ok(ServerHandshake {
            eph,
            transcript,
            server_core,
            signature,
        })
    }

    /// The transcript digest — produce attestation evidence with this as
    /// `report_data` to bind it to the channel.
    pub fn transcript(&self) -> Digest {
        self.transcript
    }

    /// Emits the ServerHello (optionally carrying evidence) and the state
    /// awaiting the ClientFinish.
    pub fn respond(
        self,
        evidence: Option<AttestationEvidence>,
        client_hello: &[u8],
    ) -> (ServerAwaitFinish, Vec<u8>) {
        let mut hello = self.server_core.clone();
        put_field(&mut hello, &self.signature);
        put_field(
            &mut hello,
            &evidence.as_ref().map(encode_evidence).unwrap_or_default(),
        );
        let client_share = {
            // Already validated in accept().
            let mut r = Reader::new(client_hello);
            let share: [u8; 32] = r.array().expect("validated in accept");
            share
        };
        (
            ServerAwaitFinish {
                eph: self.eph,
                transcript: self.transcript,
                client_share,
            },
            hello,
        )
    }
}

/// Server state awaiting the ClientFinish.
pub struct ServerAwaitFinish {
    eph: EphemeralSecret,
    transcript: Digest,
    client_share: [u8; 32],
}

impl std::fmt::Debug for ServerAwaitFinish {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServerAwaitFinish({})", self.transcript.short_hex())
    }
}

impl ServerAwaitFinish {
    /// Verifies the ClientFinish and completes the channel.
    ///
    /// # Errors
    ///
    /// [`NetError::HandshakeFailed`] / [`NetError::AttestationRejected`].
    pub fn complete(
        self,
        finish: &[u8],
        policy: &ChannelPolicy,
    ) -> Result<(SecureChannel, PeerInfo), NetError> {
        let mut r = Reader::new(finish);
        let client_key: [u8; 32] = r.array()?;
        let client_sig: [u8; 64] = r.array()?;
        let evidence_bytes = r.field()?.to_vec();
        r.finish()?;

        let finish_transcript =
            Digest::of_parts(&[b"lateral.channel.client-finish", self.transcript.as_bytes()]);
        let vk = VerifyingKey::from_bytes(&client_key)
            .map_err(|e| NetError::HandshakeFailed(format!("bad client key: {e}")))?;
        let sig = Signature::from_bytes(&client_sig)
            .map_err(|e| NetError::HandshakeFailed(format!("bad signature: {e}")))?;
        vk.verify(finish_transcript.as_bytes(), &sig)
            .map_err(|_| NetError::HandshakeFailed("client signature invalid".into()))?;

        let evidence = if evidence_bytes.is_empty() {
            None
        } else {
            Some(decode_evidence(&evidence_bytes)?)
        };
        let attested = policy.check_peer(&client_key, evidence.as_ref(), &self.transcript)?;

        let shared = self
            .eph
            .agree(&PublicShare(self.client_share), self.transcript.as_bytes())
            .map_err(|e| NetError::HandshakeFailed(format!("bad client share: {e}")))?;
        Ok((
            derive_channel(&shared, false),
            PeerInfo {
                key: client_key,
                attested,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(label: &str) -> Drbg {
        Drbg::from_seed(label.as_bytes())
    }

    fn handshake(
        client_policy: &ChannelPolicy,
        server_policy: &ChannelPolicy,
        server_evidence: impl FnOnce(&Digest) -> Option<AttestationEvidence>,
    ) -> Result<(SecureChannel, SecureChannel, PeerInfo, PeerInfo), NetError> {
        let client_id = SigningKey::from_seed(b"client");
        let server_id = SigningKey::from_seed(b"server");
        let mut crng = rng("client rng");
        let mut srng = rng("server rng");
        let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
        let pending = ServerHandshake::accept(&server_id, &mut srng, &hello)?;
        let ev = server_evidence(&pending.transcript());
        let (awaiting, server_hello) = pending.respond(ev, &hello);
        let (cchan, finish, server_info) = cstate.finish(&server_hello, client_policy, |_| None)?;
        let (schan, client_info) = awaiting.complete(&finish, server_policy)?;
        Ok((cchan, schan, server_info, client_info))
    }

    #[test]
    fn full_handshake_and_records() {
        let (mut c, mut s, server_info, client_info) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        assert_eq!(
            server_info.key,
            SigningKey::from_seed(b"server").verifying_key().to_bytes()
        );
        assert_eq!(
            client_info.key,
            SigningKey::from_seed(b"client").verifying_key().to_bytes()
        );
        let rec = c.seal(b"GET INBOX");
        assert_eq!(s.open(&rec).unwrap(), b"GET INBOX");
        let reply = s.seal(b"42 messages");
        assert_eq!(c.open(&reply).unwrap(), b"42 messages");
    }

    #[test]
    fn traced_records_carry_the_context_and_reject_malformed_ones() {
        use lateral_telemetry::SpanId;
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let ctx = TraceContext {
            trace_id: 7,
            parent: SpanId(21),
        };
        let rec = c.seal_traced(ctx, b"metered reading");
        let (got, payload) = s.open_traced(&rec).unwrap();
        assert_eq!(got, ctx);
        assert_eq!(payload, b"metered reading");
        // A plain record is not a traced record: the strict inner codec
        // rejects it instead of misreading payload bytes as a context.
        let plain = c.seal(b"untagged");
        assert!(s.open_traced(&plain).is_err());
    }

    #[test]
    fn replayed_record_rejected() {
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let rec = c.seal(b"only once");
        s.open(&rec).unwrap();
        assert!(matches!(s.open(&rec), Err(NetError::RecordRejected(_))));
    }

    #[test]
    fn corrupted_record_rejected() {
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut rec = c.seal(b"payload");
        rec[3] ^= 1;
        assert!(s.open(&rec).is_err());
    }

    #[test]
    fn reordered_records_rejected() {
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let r1 = c.seal(b"first");
        let r2 = c.seal(b"second");
        assert!(s.open(&r2).is_err());
        let _ = r1;
    }

    #[test]
    fn key_pinning_detects_mitm() {
        // Mallory answers in the server's place with her own key.
        let client_id = SigningKey::from_seed(b"client");
        let mallory = SigningKey::from_seed(b"mallory");
        let real_server = SigningKey::from_seed(b"server");
        let mut crng = rng("c");
        let mut mrng = rng("m");
        let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
        let pending = ServerHandshake::accept(&mallory, &mut mrng, &hello).unwrap();
        let (_await, server_hello) = pending.respond(None, &hello);
        let policy = ChannelPolicy::pin(real_server.verifying_key());
        assert!(matches!(
            cstate.finish(&server_hello, &policy, |_| None),
            Err(NetError::HandshakeFailed(_))
        ));
    }

    #[test]
    fn tampered_server_hello_fails_signature() {
        let client_id = SigningKey::from_seed(b"client");
        let server_id = SigningKey::from_seed(b"server");
        let mut crng = rng("c");
        let mut srng = rng("s");
        let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
        let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
        let (_await, mut server_hello) = pending.respond(None, &hello);
        server_hello[5] ^= 0x40; // tamper with the DH share
        assert!(cstate
            .finish(&server_hello, &ChannelPolicy::open(), |_| None)
            .is_err());
    }

    #[test]
    fn attested_channel_accepts_good_evidence() {
        let platform = SigningKey::from_seed(b"sgx platform");
        let good = Digest::of(b"anonymizer v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(good);
        let client_policy = ChannelPolicy::open().with_attestation(trust);
        let (mut c, mut s, server_info, _) =
            handshake(&client_policy, &ChannelPolicy::open(), |transcript| {
                Some(AttestationEvidence::sign(
                    "sgx",
                    &platform,
                    good,
                    Digest::ZERO,
                    transcript.as_bytes(),
                ))
            })
            .unwrap();
        let attested = server_info.attested.unwrap();
        assert_eq!(attested.measurement, good);
        let rec = c.seal(b"reading: 42 kWh");
        assert_eq!(s.open(&rec).unwrap(), b"reading: 42 kWh");
    }

    #[test]
    fn attested_channel_rejects_wrong_measurement() {
        let platform = SigningKey::from_seed(b"sgx platform");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(Digest::of(b"anonymizer v1"));
        let client_policy = ChannelPolicy::open().with_attestation(trust);
        let result = handshake(&client_policy, &ChannelPolicy::open(), |transcript| {
            Some(AttestationEvidence::sign(
                "sgx",
                &platform,
                Digest::of(b"manipulated anonymizer"),
                Digest::ZERO,
                transcript.as_bytes(),
            ))
        });
        assert!(matches!(result, Err(NetError::AttestationRejected(_))));
    }

    #[test]
    fn attested_channel_rejects_missing_evidence() {
        let platform = SigningKey::from_seed(b"sgx platform");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(Digest::of(b"anonymizer v1"));
        let client_policy = ChannelPolicy::open().with_attestation(trust);
        assert!(matches!(
            handshake(&client_policy, &ChannelPolicy::open(), |_| None),
            Err(NetError::AttestationRejected(_))
        ));
    }

    #[test]
    fn revoked_measurement_rejected_despite_valid_attestation() {
        // The trust policy *would* accept this evidence — platform
        // trusted, measurement expected — but the measurement is on the
        // revocation list, so the channel refuses it.
        let platform = SigningKey::from_seed(b"sgx platform");
        let good = Digest::of(b"anonymizer v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(good);
        let client_policy = ChannelPolicy::open()
            .with_attestation(trust)
            .with_revocations(vec![good.0]);
        let result = handshake(&client_policy, &ChannelPolicy::open(), |transcript| {
            Some(AttestationEvidence::sign(
                "sgx",
                &platform,
                good,
                Digest::ZERO,
                transcript.as_bytes(),
            ))
        });
        match result {
            Err(NetError::AttestationRejected(r)) => assert!(r.contains("revoked"), "{r}"),
            other => panic!("expected rejection, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    fn unrevoked_measurement_passes_revocation_check() {
        let platform = SigningKey::from_seed(b"sgx platform");
        let good = Digest::of(b"anonymizer v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(good);
        let client_policy = ChannelPolicy::open()
            .with_attestation(trust)
            .with_revocations(vec![Digest::of(b"some other build").0]);
        assert!(
            handshake(&client_policy, &ChannelPolicy::open(), |transcript| {
                Some(AttestationEvidence::sign(
                    "sgx",
                    &platform,
                    good,
                    Digest::ZERO,
                    transcript.as_bytes(),
                ))
            })
            .is_ok()
        );
    }

    #[test]
    fn relayed_evidence_from_other_channel_rejected() {
        // Evidence bound to a *different* transcript must not be accepted
        // — the emulation/proxy defense of §II-D.
        let platform = SigningKey::from_seed(b"sgx platform");
        let good = Digest::of(b"anonymizer v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(good);
        let client_policy = ChannelPolicy::open().with_attestation(trust);
        let stale = AttestationEvidence::sign(
            "sgx",
            &platform,
            good,
            Digest::ZERO,
            Digest::of(b"some other channel").as_bytes(),
        );
        let result = handshake(&client_policy, &ChannelPolicy::open(), move |_| {
            Some(stale.clone())
        });
        assert!(matches!(result, Err(NetError::AttestationRejected(_))));
    }

    #[test]
    fn evidence_encoding_roundtrip() {
        let platform = SigningKey::from_seed(b"p");
        let ev = AttestationEvidence::sign(
            "trustzone",
            &platform,
            Digest::of(b"m"),
            Digest::of(b"s"),
            b"bind",
        );
        let decoded = decode_evidence(&encode_evidence(&ev)).unwrap();
        assert_eq!(decoded, ev);
        assert!(decoded.verify_signature().is_ok());
    }

    #[test]
    fn substrate_evidence_propagates_unsupported_as_rejection() {
        use lateral_substrate::software::SoftwareSubstrate;
        use lateral_substrate::substrate::DomainSpec;
        use lateral_substrate::testkit::Echo;

        let mut sub = SoftwareSubstrate::new("net-evidence");
        let d = sub.spawn(DomainSpec::named("svc"), Box::new(Echo)).unwrap();
        // Pure software isolation has no trust anchor — the bridge must
        // surface that as an attestation rejection, not a panic.
        assert!(matches!(
            substrate_evidence(&mut sub, d, &Digest::of(b"transcript")),
            Err(NetError::AttestationRejected(_))
        ));
    }

    #[test]
    fn numbered_records_survive_transient_drop_window() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut net = Network::new("retry");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());

        // The adversary swallows the first two transmissions.
        net.set_attack(AttackMode::DropFirst(2));
        let record = c.seal_numbered(b"reading: 42 kWh");
        send_with_retry(&mut net, &a, &b, &record, 4).unwrap();
        assert_eq!(net.dropped(), 2);

        // Two copies got through: the first delivers, the second dedups.
        let first = net.recv(&b).unwrap().unwrap();
        assert_eq!(
            s.open_numbered(&first.payload).unwrap().unwrap(),
            b"reading: 42 kWh"
        );
        let second = net.recv(&b).unwrap().unwrap();
        assert_eq!(s.open_numbered(&second.payload).unwrap(), None);
        assert!(net.recv(&b).unwrap().is_none());

        // The channel did not desynchronize: the next message flows.
        let next = c.seal_numbered(b"reading: 43 kWh");
        send_with_retry(&mut net, &a, &b, &next, 4).unwrap();
        let p = net.recv(&b).unwrap().unwrap();
        assert_eq!(
            s.open_numbered(&p.payload).unwrap().unwrap(),
            b"reading: 43 kWh"
        );
    }

    #[test]
    fn backoff_schedule_is_capped_doubling() {
        let s = BackoffSchedule::capped(2, 16, 8);
        let delays: Vec<u64> = (0..8).map(|i| s.delay_before(i)).collect();
        assert_eq!(delays, [0, 2, 4, 8, 16, 16, 16, 16]);
        // Eager (blind) schedules never wait.
        let e = BackoffSchedule::eager(3);
        assert!((0..3).all(|i| e.delay_before(i) == 0));
        // Attempt counts far past the doubling range stay capped
        // instead of overflowing the shift.
        assert_eq!(s.delay_before(200), 16);
    }

    #[test]
    fn backoff_stops_at_first_delivered_copy() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let mut net = Network::new("backoff");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        net.set_attack(AttackMode::DropFirst(2));

        let mut clock = 100;
        let attempts = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(2, 16, 6),
            &mut clock,
        )
        .unwrap();
        // Two drops, then the third attempt lands and the sender stops:
        // exactly one copy reaches the inbox.
        assert_eq!(attempts, 3);
        assert_eq!(net.pending(&b), 1);
        assert_eq!(net.dropped(), 2);
        // The logical clock advanced by the deterministic schedule
        // (0 + 2 + 4 ticks of delay).
        assert_eq!(clock, 106);
    }

    #[test]
    fn backoff_classifies_silent_loss_as_timeout() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let mut net = Network::new("backoff-loss");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        net.set_attack(AttackMode::DropAll);

        let mut clock = 0;
        let err = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(1, 8, 4),
            &mut clock,
        )
        .unwrap_err();
        match err {
            NetError::RetryExhausted { attempts, last_err } => {
                assert_eq!(attempts, 4);
                assert!(matches!(*last_err, NetError::Timeout(_)), "{last_err}");
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
        // All four transmissions were made and dropped.
        assert_eq!(net.dropped(), 4);
    }

    #[test]
    fn backoff_respects_the_logical_deadline() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let mut net = Network::new("backoff-deadline");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        net.set_attack(AttackMode::DropAll);

        // Deadline admits attempts at ticks 0, 4, 12 but not 28.
        let mut clock = 0;
        let err = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(4, 64, 10).with_deadline(20),
            &mut clock,
        )
        .unwrap_err();
        match err {
            NetError::RetryExhausted { attempts, last_err } => {
                assert_eq!(attempts, 3, "only the pre-deadline attempts fire");
                assert!(
                    matches!(&*last_err, NetError::Timeout(r) if r.contains("deadline")),
                    "{last_err}"
                );
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
        assert_eq!(clock, 12, "the clock stops at the last transmitted attempt");
    }

    #[test]
    fn backoff_deadline_at_the_current_tick_admits_the_immediate_attempt() {
        // Off-by-one pin: attempt 0 has zero delay, so with a deadline
        // set at the *current* logical tick the immediate attempt fires
        // exactly at the deadline — that is legal and must not be
        // refused as a timeout.
        use crate::sim::Network;
        use crate::Addr;

        let mut net = Network::new("deadline-now");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());

        let mut clock = 42;
        let attempts = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(4, 16, 3).with_deadline(42),
            &mut clock,
        )
        .expect("an immediate attempt at the deadline tick is legal");
        assert_eq!(attempts, 1);
        assert_eq!(clock, 42, "the immediate attempt does not advance time");
        assert_eq!(net.pending(&b), 1);

        // One tick past, the same schedule refuses before transmitting.
        let mut late = 43;
        let err = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(4, 16, 3).with_deadline(42),
            &mut late,
        )
        .unwrap_err();
        match err {
            NetError::RetryExhausted { attempts, last_err } => {
                assert_eq!(attempts, 0, "nothing is transmitted past the deadline");
                assert!(matches!(*last_err, NetError::Timeout(_)));
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
    }

    #[test]
    fn backoff_ack_ignores_redirected_deliveries() {
        // Regression: the ack used to be a *global* delivered-count
        // delta, so a packet stolen by a Redirect adversary (delivered
        // to the attacker's inbox) read as a fresh ack and the sender
        // stopped retrying a record the victim never received. The
        // per-destination receipt classifies it as silence.
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let mut net = Network::new("redirect-ack");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        let mallory = Addr::new("mallory");
        net.register(a.clone());
        net.register(b.clone());
        net.register(mallory.clone());
        net.set_attack(AttackMode::Redirect {
            victim: b.clone(),
            attacker: mallory.clone(),
        });

        let mut clock = 0;
        let err = send_with_backoff(
            &mut net,
            &a,
            &b,
            b"r",
            &BackoffSchedule::capped(1, 4, 3),
            &mut clock,
        )
        .unwrap_err();
        match err {
            NetError::RetryExhausted { attempts, last_err } => {
                assert_eq!(attempts, 3, "every scheduled attempt is spent");
                assert!(matches!(*last_err, NetError::Timeout(_)), "{last_err}");
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
        assert_eq!(net.pending(&b), 0, "the victim saw nothing");
        assert_eq!(net.pending(&mallory), 3, "the attacker hoarded every copy");
    }

    #[test]
    fn backoff_ack_counts_a_duplicate_burst_once() {
        // A DuplicateBurst adversary delivers 1 + n copies of the first
        // transmission. That is ONE fresh ack — the sender must stop
        // after a single attempt (not misread surplus copies as acks
        // for retransmissions it never made), and the receiver dedup
        // absorbs the burst.
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut net = Network::new("dup-ack");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        net.set_attack(AttackMode::DuplicateBurst(3));

        let mut clock = 0;
        let record = c.seal_numbered(b"reading: 42 kWh");
        let attempts = send_with_backoff(
            &mut net,
            &a,
            &b,
            &record,
            &BackoffSchedule::capped(1, 4, 5),
            &mut clock,
        )
        .unwrap();
        assert_eq!(attempts, 1, "one delivered transmission is one ack");
        assert_eq!(net.pending(&b), 4, "original + 3 burst copies in flight");

        let (mut fresh, mut dups) = (0, 0);
        while let Some(p) = net.recv(&b).unwrap() {
            match s.open_numbered(&p.payload).unwrap() {
                Some(plain) => {
                    assert_eq!(plain, b"reading: 42 kWh");
                    fresh += 1;
                }
                None => dups += 1,
            }
        }
        assert_eq!(fresh, 1, "the reading lands exactly once");
        assert_eq!(dups, 3, "every burst copy dedups");
    }

    #[test]
    fn from_shared_matches_on_both_sides() {
        let secret = [7u8; 32];
        let mut c = SecureChannel::from_shared(&secret, true);
        let mut s = SecureChannel::from_shared(&secret, false);
        let rec = c.seal(b"resumed traffic");
        assert_eq!(s.open(&rec).unwrap(), b"resumed traffic");
        let reply = s.seal(b"ack");
        assert_eq!(c.open(&reply).unwrap(), b"ack");
        // Orientation matters: two same-side channels cannot talk.
        let mut c2 = SecureChannel::from_shared(&secret, true);
        let rec = c.seal(b"x");
        assert!(c2.open(&rec).is_err());
    }

    #[test]
    fn backoff_aborts_on_hard_send_errors() {
        use crate::sim::Network;
        use crate::Addr;

        let mut net = Network::new("backoff-unknown");
        let a = Addr::new("meter");
        net.register(a.clone());
        let mut clock = 0;
        let err = send_with_backoff(
            &mut net,
            &a,
            &Addr::new("ghost"),
            b"r",
            &BackoffSchedule::capped(1, 4, 5),
            &mut clock,
        )
        .unwrap_err();
        match err {
            NetError::RetryExhausted { attempts, last_err } => {
                assert_eq!(attempts, 1, "a hard error aborts the schedule");
                assert!(matches!(*last_err, NetError::UnknownAddr(_)));
            }
            other => panic!("expected RetryExhausted, got {other}"),
        }
    }

    #[test]
    fn numbered_records_survive_steady_loss_with_backoff() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut net = Network::new("steady-loss");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        // Every third packet the adversary sees is swallowed.
        net.set_attack(AttackMode::DropEvery(3));

        let mut clock = 0;
        let mut delivered = Vec::new();
        for i in 0..20u32 {
            let record = c.seal_numbered(format!("reading {i}").as_bytes());
            send_with_backoff(
                &mut net,
                &a,
                &b,
                &record,
                &BackoffSchedule::capped(2, 16, 4),
                &mut clock,
            )
            .expect("steady loss is survivable within the schedule");
            while let Some(p) = net.recv(&b).unwrap() {
                // Decode path under loss: duplicates (none expected
                // here) dedup, in-order records decrypt.
                if let Some(plain) = s.open_numbered(&p.payload).unwrap() {
                    delivered.push(String::from_utf8(plain).unwrap());
                }
            }
        }
        assert_eq!(delivered.len(), 20, "every reading arrives exactly once");
        assert_eq!(delivered[0], "reading 0");
        assert_eq!(delivered[19], "reading 19");
        assert!(net.dropped() > 0, "the soak actually exercised loss");
    }

    #[test]
    fn numbered_records_absorb_duplicate_bursts() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut net = Network::new("dup-burst");
        let (a, b) = (Addr::new("meter"), Addr::new("utility"));
        net.register(a.clone());
        net.register(b.clone());
        net.set_attack(AttackMode::DuplicateBurst(2));

        let mut clock = 0;
        let mut unique = 0;
        let mut dups = 0;
        for i in 0..5u32 {
            let record = c.seal_numbered(format!("reading {i}").as_bytes());
            send_with_backoff(
                &mut net,
                &a,
                &b,
                &record,
                &BackoffSchedule::capped(1, 4, 2),
                &mut clock,
            )
            .unwrap();
            while let Some(p) = net.recv(&b).unwrap() {
                match s.open_numbered(&p.payload).unwrap() {
                    Some(_) => unique += 1,
                    None => dups += 1,
                }
            }
        }
        assert_eq!(unique, 5, "each reading decodes exactly once");
        assert_eq!(dups, 10, "every burst copy is absorbed by dedup");
    }

    #[test]
    fn numbered_records_survive_drop_all_window() {
        use crate::sim::{AttackMode, Network};
        use crate::Addr;

        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let mut net = Network::new("outage");
        let (a, b) = (Addr::new("a"), Addr::new("b"));
        net.register(a.clone());
        net.register(b.clone());

        // Total outage: every retry within the window is lost.
        net.set_attack(AttackMode::DropAll);
        let record = c.seal_numbered(b"during outage");
        send_with_retry(&mut net, &a, &b, &record, 3).unwrap();
        assert_eq!(net.pending(&b), 0);

        // Window ends; the *same* record bytes retransmit and deliver.
        net.set_attack(AttackMode::Passive);
        send_with_retry(&mut net, &a, &b, &record, 3).unwrap();
        let p = net.recv(&b).unwrap().unwrap();
        assert_eq!(
            s.open_numbered(&p.payload).unwrap().unwrap(),
            b"during outage"
        );
    }

    #[test]
    fn numbered_gap_is_rejected() {
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let _lost_forever = c.seal_numbered(b"first");
        let second = c.seal_numbered(b"second");
        assert!(matches!(
            s.open_numbered(&second),
            Err(NetError::RecordRejected(_))
        ));
    }

    #[test]
    fn numbered_forged_future_prefix_is_a_forgery_not_a_gap() {
        // Regression: the 8-byte sequence prefix is unauthenticated, so
        // an on-path attacker can splice a future sequence onto a real
        // record. That must be reported as an authentication failure —
        // not as a "sequence gap (record lost)", which would let the
        // attacker fabricate loss signals and desynchronize recovery
        // logic — and must leave the receive window untouched.
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let record = c.seal_numbered(b"genuine reading");
        let mut forged = 7u64.to_le_bytes().to_vec();
        forged.extend_from_slice(&record[8..]);
        match s.open_numbered(&forged) {
            Err(NetError::RecordRejected(msg)) => {
                assert!(
                    msg.contains("authenticate"),
                    "forged prefix must fail authentication, got: {msg}"
                );
                assert!(
                    !msg.contains("gap"),
                    "forged prefix must not be classified as loss: {msg}"
                );
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // The untampered record still delivers: no state was burned.
        assert_eq!(
            s.open_numbered(&record).unwrap().unwrap(),
            b"genuine reading"
        );
    }

    #[test]
    fn numbered_forged_duplicate_rejected() {
        let (mut c, mut s, _, _) =
            handshake(&ChannelPolicy::open(), &ChannelPolicy::open(), |_| None).unwrap();
        let record = c.seal_numbered(b"real");
        assert!(s.open_numbered(&record).unwrap().is_some());
        // An attacker replays the old sequence number with altered
        // ciphertext — dedup must not mask the forgery.
        let mut forged = record.clone();
        let last = forged.len() - 1;
        forged[last] ^= 0x01;
        assert!(matches!(
            s.open_numbered(&forged),
            Err(NetError::RecordRejected(_))
        ));
        // Truncated garbage is rejected, not panicked on.
        assert!(s.open_numbered(&record[..5]).is_err());
    }

    #[test]
    fn mutual_attestation_client_side() {
        // The smart-meter direction: the *client* attests to the server.
        let meter_platform = SigningKey::from_seed(b"tz meter");
        let meter_code = Digest::of(b"meter fw v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(meter_platform.verifying_key());
        trust.expect_measurement(meter_code);
        let server_policy = ChannelPolicy::open().with_attestation(trust);

        let client_id = SigningKey::from_seed(b"client");
        let server_id = SigningKey::from_seed(b"server");
        let mut crng = rng("c");
        let mut srng = rng("s");
        let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
        let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
        let (awaiting, server_hello) = pending.respond(None, &hello);
        let (_cchan, finish, _info) = cstate
            .finish(&server_hello, &ChannelPolicy::open(), |transcript| {
                Some(AttestationEvidence::sign(
                    "trustzone",
                    &meter_platform,
                    meter_code,
                    Digest::ZERO,
                    transcript.as_bytes(),
                ))
            })
            .unwrap();
        let (_schan, client_info) = awaiting.complete(&finish, &server_policy).unwrap();
        assert_eq!(client_info.attested.unwrap().measurement, meter_code);
    }
}
