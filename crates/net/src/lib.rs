//! Simulated networking: untrusted links, a Dolev–Yao-style adversary,
//! and the secure-channel protocol trusted components use across them.
//!
//! The paper extends trust across machines (§III-C): the smart meter and
//! the utility server communicate over a network the attacker fully
//! controls, and even "communication busses within a system must be
//! considered untrusted networks as well" (§II-D). This crate provides:
//!
//! * [`sim`] — the message-passing network with an in-path adversary that
//!   can record, drop, corrupt, replay, and inject packets;
//! * [`wire`] — small length-prefixed framing helpers;
//! * [`channel`] — a TLS-like handshake (ephemeral DH, transcript
//!   signatures) producing an AEAD record channel, plus the *attested*
//!   variant where a party binds [`AttestationEvidence`] to the channel
//!   key — the paper's mechanism for trusting a remote anonymizer before
//!   sending it any readings;
//! * [`session`] — the multiplexed session layer: many in-flight
//!   requests per channel (ids and trace contexts inside the sealed
//!   record) and single-use resumption tickets that amortize the
//!   attestation handshake across a session epoch;
//! * [`fetch`] — content-addressed image fetch from untrusted registry
//!   mirrors, digest-verified regardless of source with deterministic
//!   failover.
//!
//! [`AttestationEvidence`]: lateral_substrate::attest::AttestationEvidence

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod fetch;
pub mod session;
pub mod sim;
pub mod wire;

use std::error::Error;
use std::fmt;

/// A network endpoint address.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Addr(pub String);

impl Addr {
    /// Creates an address from a name.
    pub fn new(name: &str) -> Addr {
        Addr(name.to_string())
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Errors from networking and the secure channel.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum NetError {
    /// No endpoint registered under the address.
    UnknownAddr(Addr),
    /// Malformed wire data.
    Decode(String),
    /// A handshake step failed (bad signature, bad share, bad evidence).
    HandshakeFailed(String),
    /// A record failed authentication or arrived out of order.
    RecordRejected(String),
    /// The remote attestation check failed.
    AttestationRejected(String),
    /// Delivery was not observed in time — the typed timeout
    /// classification for deadline-aware senders: either every scheduled
    /// transmission went undelivered, or the schedule's logical-clock
    /// deadline passed before the next attempt.
    Timeout(String),
    /// A bounded retry schedule gave up. `attempts` counts the
    /// transmissions actually performed; `last_err` is the final
    /// classified cause (a [`NetError::Timeout`] for silent loss or a
    /// hard send error such as [`NetError::UnknownAddr`]).
    RetryExhausted {
        /// Transmissions performed before giving up.
        attempts: u32,
        /// The final classified cause.
        last_err: Box<NetError>,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownAddr(a) => write!(f, "unknown address {a}"),
            NetError::Decode(r) => write!(f, "decode error: {r}"),
            NetError::HandshakeFailed(r) => write!(f, "handshake failed: {r}"),
            NetError::RecordRejected(r) => write!(f, "record rejected: {r}"),
            NetError::AttestationRejected(r) => write!(f, "attestation rejected: {r}"),
            NetError::Timeout(r) => write!(f, "timeout: {r}"),
            NetError::RetryExhausted { attempts, last_err } => {
                write!(f, "retry exhausted after {attempts} attempt(s): {last_err}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display() {
        assert_eq!(Addr::new("meter-1").to_string(), "meter-1");
    }

    #[test]
    fn error_display() {
        assert!(NetError::UnknownAddr(Addr::new("x"))
            .to_string()
            .contains('x'));
    }
}
