//! The simulated network and its in-path adversary.
//!
//! The attacker model is Dolev–Yao-flavored: every packet passes through
//! the adversary, who may record, drop, corrupt, replay, or inject —
//! but cannot break the cryptography. The secure-channel tests and the
//! smart-meter experiment configure concrete [`AttackMode`]s.

use std::collections::{BTreeMap, VecDeque};

use lateral_crypto::rng::Drbg;

use crate::{Addr, NetError};

/// One in-flight packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Claimed sender (spoofable — authenticity comes from the channel
    /// layer, never from this field).
    pub from: Addr,
    /// Destination.
    pub to: Addr,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// What the in-path adversary does to traffic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttackMode {
    /// Forward everything untouched (but still record it).
    Passive,
    /// Drop every packet (availability attack).
    DropAll,
    /// Drop the next `n` packets, then behave passively — a transient
    /// outage window, for exercising bounded retry deterministically.
    DropFirst(u64),
    /// Steady loss: drop every `n`-th packet (the n-th, 2n-th, …,
    /// counted over all traffic the adversary has seen) and deliver the
    /// rest — the soak-test mode for retransmission schedules.
    /// `DropEvery(0)` and `DropEvery(1)` degenerate to [`AttackMode::DropAll`]
    /// semantics for every packet only at `n == 1`; `n == 0` is treated
    /// as passive.
    DropEvery(u64),
    /// Duplicate burst: deliver each packet, then `n` extra copies —
    /// sustained replay pressure for receiver-side dedup
    /// (`DuplicateBurst(0)` is passive).
    DuplicateBurst(u64),
    /// Flip a byte in every payload.
    CorruptAll,
    /// Deliver each packet, then deliver a copy a second time.
    ReplayAll,
    /// Redirect packets destined to the given address to the attacker's
    /// own inbox instead (impersonation / man-in-the-middle setup).
    Redirect {
        /// Victim destination whose traffic is stolen.
        victim: Addr,
        /// Attacker inbox receiving it.
        attacker: Addr,
    },
}

/// The network: inboxes plus the adversary in the path.
pub struct Network {
    inboxes: BTreeMap<Addr, VecDeque<Packet>>,
    mode: AttackMode,
    recorded: Vec<Packet>,
    delivered: u64,
    dropped: u64,
    rng: Drbg,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Network({} endpoints, {:?}, {} delivered, {} dropped)",
            self.inboxes.len(),
            self.mode,
            self.delivered,
            self.dropped
        )
    }
}

impl Network {
    /// Creates a benign network (passive adversary).
    pub fn new(seed: &str) -> Network {
        Network {
            inboxes: BTreeMap::new(),
            mode: AttackMode::Passive,
            recorded: Vec::new(),
            delivered: 0,
            dropped: 0,
            rng: Drbg::from_seed(&[b"lateral.net.", seed.as_bytes()].concat()),
        }
    }

    /// Registers an endpoint.
    pub fn register(&mut self, addr: Addr) {
        self.inboxes.entry(addr).or_default();
    }

    /// Sets the adversary's behavior.
    pub fn set_attack(&mut self, mode: AttackMode) {
        self.mode = mode;
    }

    /// All traffic the adversary has recorded (it sees everything).
    pub fn recorded(&self) -> &[Packet] {
        &self.recorded
    }

    /// Count of packets delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Count of packets dropped by the adversary.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn deliver(&mut self, packet: Packet) -> Result<(), NetError> {
        let inbox = self
            .inboxes
            .get_mut(&packet.to)
            .ok_or_else(|| NetError::UnknownAddr(packet.to.clone()))?;
        inbox.push_back(packet);
        self.delivered += 1;
        Ok(())
    }

    /// Sends a packet through the adversary.
    ///
    /// Returns the number of copies the adversary let through **to the
    /// intended destination** — the link-layer delivery receipt. A
    /// redirected packet lands in the attacker's inbox, not the
    /// destination's, so it counts as `0`; senders that treat "some
    /// packet moved somewhere" as an ack would otherwise confirm sends
    /// the victim never saw.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownAddr`] when the (possibly redirected)
    /// destination is not registered. A dropped packet is *not* an error —
    /// the sender cannot tell (the receipt is `Ok(0)`).
    pub fn send(&mut self, from: &Addr, to: &Addr, payload: &[u8]) -> Result<u64, NetError> {
        let packet = Packet {
            from: from.clone(),
            to: to.clone(),
            payload: payload.to_vec(),
        };
        self.recorded.push(packet.clone());
        match self.mode.clone() {
            AttackMode::Passive => self.deliver(packet).map(|()| 1),
            AttackMode::DropAll => {
                self.dropped += 1;
                Ok(0)
            }
            AttackMode::DropFirst(n) => {
                if n > 1 {
                    self.mode = AttackMode::DropFirst(n - 1);
                    self.dropped += 1;
                    Ok(0)
                } else if n == 1 {
                    // Window over after this drop.
                    self.mode = AttackMode::Passive;
                    self.dropped += 1;
                    Ok(0)
                } else {
                    self.mode = AttackMode::Passive;
                    self.deliver(packet).map(|()| 1)
                }
            }
            AttackMode::DropEvery(n) => {
                // `recorded` already holds this packet, so its length is
                // the 1-based position in the adversary's traffic view.
                if n > 0 && (self.recorded.len() as u64).is_multiple_of(n) {
                    self.dropped += 1;
                    Ok(0)
                } else {
                    self.deliver(packet).map(|()| 1)
                }
            }
            AttackMode::DuplicateBurst(n) => {
                self.deliver(packet.clone())?;
                for _ in 0..n {
                    self.deliver(packet.clone())?;
                }
                Ok(1 + n)
            }
            AttackMode::CorruptAll => {
                let mut p = packet;
                if !p.payload.is_empty() {
                    let idx = self.rng.gen_range(p.payload.len() as u64) as usize;
                    p.payload[idx] ^= 0x80;
                }
                self.deliver(p).map(|()| 1)
            }
            AttackMode::ReplayAll => {
                self.deliver(packet.clone())?;
                self.deliver(packet).map(|()| 2)
            }
            AttackMode::Redirect { victim, attacker } => {
                if packet.to == victim {
                    let mut p = packet;
                    p.to = attacker;
                    // Stolen: the intended destination saw nothing.
                    self.deliver(p).map(|()| 0)
                } else {
                    self.deliver(packet).map(|()| 1)
                }
            }
        }
    }

    /// ATTACK: injects a packet with an arbitrary claimed sender.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownAddr`].
    pub fn inject(
        &mut self,
        forged_from: &Addr,
        to: &Addr,
        payload: &[u8],
    ) -> Result<(), NetError> {
        self.deliver(Packet {
            from: forged_from.clone(),
            to: to.clone(),
            payload: payload.to_vec(),
        })
    }

    /// ATTACK: replays a previously recorded packet by index.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] for a bad index, [`NetError::UnknownAddr`] for
    /// a missing destination.
    pub fn replay_recorded(&mut self, index: usize) -> Result<(), NetError> {
        let p = self
            .recorded
            .get(index)
            .cloned()
            .ok_or_else(|| NetError::Decode(format!("no recorded packet {index}")))?;
        self.deliver(p)
    }

    /// Receives the next packet for `addr`.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownAddr`] for unregistered endpoints; `Ok(None)`
    /// when the inbox is empty.
    pub fn recv(&mut self, addr: &Addr) -> Result<Option<Packet>, NetError> {
        let inbox = self
            .inboxes
            .get_mut(addr)
            .ok_or_else(|| NetError::UnknownAddr(addr.clone()))?;
        Ok(inbox.pop_front())
    }

    /// Number of packets waiting for `addr`.
    pub fn pending(&self, addr: &Addr) -> usize {
        self.inboxes.get(addr).map(|q| q.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> (Network, Addr, Addr) {
        let mut n = Network::new("t");
        let a = Addr::new("a");
        let b = Addr::new("b");
        n.register(a.clone());
        n.register(b.clone());
        (n, a, b)
    }

    #[test]
    fn basic_delivery_in_order() {
        let (mut n, a, b) = net();
        n.send(&a, &b, b"one").unwrap();
        n.send(&a, &b, b"two").unwrap();
        assert_eq!(n.recv(&b).unwrap().unwrap().payload, b"one");
        assert_eq!(n.recv(&b).unwrap().unwrap().payload, b"two");
        assert!(n.recv(&b).unwrap().is_none());
    }

    #[test]
    fn unknown_destination_is_error() {
        let (mut n, a, _) = net();
        assert!(matches!(
            n.send(&a, &Addr::new("ghost"), b"x"),
            Err(NetError::UnknownAddr(_))
        ));
    }

    #[test]
    fn adversary_records_everything() {
        let (mut n, a, b) = net();
        n.send(&a, &b, b"secret-in-the-clear").unwrap();
        assert_eq!(n.recorded().len(), 1);
        assert_eq!(n.recorded()[0].payload, b"secret-in-the-clear");
    }

    #[test]
    fn drop_all_silently_discards() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::DropAll);
        n.send(&a, &b, b"x").unwrap();
        assert_eq!(n.pending(&b), 0);
        assert_eq!(n.dropped(), 1);
    }

    #[test]
    fn drop_first_n_is_a_transient_window() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::DropFirst(2));
        n.send(&a, &b, b"one").unwrap();
        n.send(&a, &b, b"two").unwrap();
        n.send(&a, &b, b"three").unwrap();
        assert_eq!(n.dropped(), 2);
        assert_eq!(n.recv(&b).unwrap().unwrap().payload, b"three");
        assert!(n.recv(&b).unwrap().is_none());
    }

    #[test]
    fn drop_every_nth_is_steady_loss() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::DropEvery(3));
        for i in 0..9u8 {
            n.send(&a, &b, &[i]).unwrap();
        }
        // Packets 3, 6, 9 dropped; the rest delivered in order.
        assert_eq!(n.dropped(), 3);
        assert_eq!(n.pending(&b), 6);
        let got: Vec<u8> = (0..6)
            .map(|_| n.recv(&b).unwrap().unwrap().payload[0])
            .collect();
        assert_eq!(got, [0, 1, 3, 4, 6, 7]);
    }

    #[test]
    fn drop_every_zero_is_passive() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::DropEvery(0));
        n.send(&a, &b, b"x").unwrap();
        assert_eq!(n.pending(&b), 1);
        assert_eq!(n.dropped(), 0);
    }

    #[test]
    fn duplicate_burst_delivers_extra_copies() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::DuplicateBurst(3));
        n.send(&a, &b, b"x").unwrap();
        assert_eq!(n.pending(&b), 4, "original + 3 duplicates");
        for _ in 0..4 {
            assert_eq!(n.recv(&b).unwrap().unwrap().payload, b"x");
        }
    }

    #[test]
    fn corrupt_all_flips_bytes() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::CorruptAll);
        n.send(&a, &b, b"payload").unwrap();
        let p = n.recv(&b).unwrap().unwrap();
        assert_ne!(p.payload, b"payload");
        assert_eq!(p.payload.len(), 7);
    }

    #[test]
    fn replay_all_duplicates() {
        let (mut n, a, b) = net();
        n.set_attack(AttackMode::ReplayAll);
        n.send(&a, &b, b"x").unwrap();
        assert_eq!(n.pending(&b), 2);
    }

    #[test]
    fn redirect_steals_traffic() {
        let (mut n, a, b) = net();
        let mallory = Addr::new("mallory");
        n.register(mallory.clone());
        n.set_attack(AttackMode::Redirect {
            victim: b.clone(),
            attacker: mallory.clone(),
        });
        n.send(&a, &b, b"for b").unwrap();
        assert_eq!(n.pending(&b), 0);
        assert_eq!(n.recv(&mallory).unwrap().unwrap().payload, b"for b");
    }

    #[test]
    fn send_receipt_counts_copies_to_the_intended_destination() {
        let (mut n, a, b) = net();
        assert_eq!(n.send(&a, &b, b"x").unwrap(), 1, "passive delivers one");
        n.set_attack(AttackMode::DropAll);
        assert_eq!(n.send(&a, &b, b"x").unwrap(), 0, "dropped: no receipt");
        n.set_attack(AttackMode::DuplicateBurst(3));
        assert_eq!(n.send(&a, &b, b"x").unwrap(), 4, "original + 3 copies");
        n.set_attack(AttackMode::ReplayAll);
        assert_eq!(n.send(&a, &b, b"x").unwrap(), 2);
        let mallory = Addr::new("mallory");
        n.register(mallory.clone());
        n.set_attack(AttackMode::Redirect {
            victim: b.clone(),
            attacker: mallory,
        });
        assert_eq!(
            n.send(&a, &b, b"x").unwrap(),
            0,
            "stolen traffic must not read as an ack for the victim"
        );
    }

    #[test]
    fn injection_and_targeted_replay() {
        let (mut n, a, b) = net();
        n.send(&a, &b, b"original").unwrap();
        n.inject(&a, &b, b"forged").unwrap();
        n.replay_recorded(0).unwrap();
        assert_eq!(n.pending(&b), 3);
        let payloads: Vec<Vec<u8>> = (0..3)
            .map(|_| n.recv(&b).unwrap().unwrap().payload)
            .collect();
        assert_eq!(payloads[1], b"forged");
        assert_eq!(payloads[2], b"original");
    }
}
