//! Length-prefixed wire encoding helpers.
//!
//! Handshake messages carry several variable-length fields; a tiny
//! reader/writer pair keeps the parsing honest (every read is bounds
//! checked — message parsing is exactly the attack surface the paper
//! wants isolated into its own component).

use crate::NetError;

/// Appends a `u32`-length-prefixed field.
pub fn put_field(out: &mut Vec<u8>, field: &[u8]) {
    out.extend_from_slice(&(field.len() as u32).to_le_bytes());
    out.extend_from_slice(field);
}

/// A bounds-checked reader over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Reads a length-prefixed field.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] when the prefix or body is truncated.
    pub fn field(&mut self) -> Result<&'a [u8], NetError> {
        let len_bytes = self
            .data
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| NetError::Decode("truncated length prefix".into()))?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
        self.pos += 4;
        let body = self
            .data
            .get(self.pos..self.pos + len)
            .ok_or_else(|| NetError::Decode("truncated field body".into()))?;
        self.pos += len;
        Ok(body)
    }

    /// Reads a fixed-size field as an array.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on truncation or size mismatch.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], NetError> {
        let f = self.field()?;
        f.try_into()
            .map_err(|_| NetError::Decode(format!("expected {N}-byte field, got {}", f.len())))
    }

    /// Whether all input was consumed.
    pub fn done(&self) -> bool {
        self.pos == self.data.len()
    }

    /// Requires all input to be consumed.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on trailing bytes.
    pub fn finish(self) -> Result<(), NetError> {
        if self.done() {
            Ok(())
        } else {
            Err(NetError::Decode("trailing bytes".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let mut buf = Vec::new();
        put_field(&mut buf, b"alpha");
        put_field(&mut buf, b"");
        put_field(&mut buf, b"b");
        let mut r = Reader::new(&buf);
        assert_eq!(r.field().unwrap(), b"alpha");
        assert_eq!(r.field().unwrap(), b"");
        assert_eq!(r.field().unwrap(), b"b");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        put_field(&mut buf, b"alpha");
        buf.truncate(buf.len() - 1);
        let mut r = Reader::new(&buf);
        assert!(r.field().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut buf = Vec::new();
        put_field(&mut buf, b"x");
        buf.push(0);
        let mut r = Reader::new(&buf);
        r.field().unwrap();
        assert!(r.finish().is_err());
    }

    #[test]
    fn fixed_array_size_enforced() {
        let mut buf = Vec::new();
        put_field(&mut buf, &[1u8; 32]);
        let mut r = Reader::new(&buf);
        assert!(r.array::<31>().is_err());
        let mut r2 = Reader::new(&buf);
        assert_eq!(r2.array::<32>().unwrap(), [1u8; 32]);
    }
}
