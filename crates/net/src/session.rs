//! The multiplexed session layer: record groups and resumption tickets.
//!
//! A [`crate::channel::SecureChannel`] is one ordered record pipe. The
//! session layer turns it into a carrier for **many in-flight requests**
//! (request ids travel *inside* the sealed record, so an on-path
//! adversary can neither read nor reorder the multiplexing) and lets a
//! client that already attested its peer **resume** without repeating
//! the attestation handshake:
//!
//! * [`RequestEntry`] / [`ReplyEntry`] groups — a batch of requests (or
//!   replies) sealed as ONE record. Each entry carries its own id and
//!   [`TraceContext`], so every multiplexed request still lands as a
//!   child span of its *own* caller; replies are sorted by id, making
//!   reply ordering deterministic regardless of serve order.
//! * [`ResumptionTicket`] / [`TicketStore`] — a single-use ticket bound
//!   to the verified evidence digest and the [`SessionEpoch`] at mint
//!   time. Redemption proves possession of the ticket secret (HMAC over
//!   fresh nonces from both sides) and derives fresh channel keys; a
//!   changed epoch (revocation, trust, or re-grant) kills the ticket and
//!   forces the full attestation handshake.

use std::collections::BTreeMap;

use lateral_crypto::hmac::{hkdf, HmacSha256};
use lateral_crypto::rng::Drbg;
use lateral_telemetry::TraceContext;

use crate::channel::SecureChannel;
use crate::wire::{put_field, Reader};
use crate::NetError;

/// Reply status: the request was served.
pub const STATUS_OK: u8 = 0;
/// Reply status: the serve failed; the payload is the error text.
pub const STATUS_ERR: u8 = 1;
/// Reply status: the request exceeded the server's in-flight window and
/// was refused without being served — the typed backpressure signal.
pub const STATUS_OVERLOADED: u8 = 2;

/// Decoder guard: a group claiming more entries than this is rejected
/// before any allocation is sized from attacker-controlled counts.
pub const MAX_GROUP: usize = 4096;

/// One request inside a sealed request group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RequestEntry {
    /// Client-assigned request id, unique within the session.
    pub id: u64,
    /// The *caller's* trace context — each request parents its serve
    /// span on its own submitter, not on the session opener.
    pub ctx: TraceContext,
    /// Opaque request payload.
    pub payload: Vec<u8>,
}

/// One reply inside a sealed reply group.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplyEntry {
    /// The request id this reply answers.
    pub id: u64,
    /// [`STATUS_OK`], [`STATUS_ERR`], or [`STATUS_OVERLOADED`].
    pub status: u8,
    /// Reply payload (error text for non-OK statuses).
    pub payload: Vec<u8>,
}

/// Serializes a request group (seal the result with the channel).
pub fn encode_request_group(entries: &[RequestEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    put_field(&mut out, &(entries.len() as u32).to_le_bytes());
    for e in entries {
        put_field(&mut out, &e.id.to_le_bytes());
        put_field(&mut out, &e.ctx.encode());
        put_field(&mut out, &e.payload);
    }
    out
}

/// Parses a request group.
///
/// # Errors
///
/// [`NetError::Decode`] on malformed input, a count exceeding
/// [`MAX_GROUP`], or trailing bytes.
pub fn decode_request_group(bytes: &[u8]) -> Result<Vec<RequestEntry>, NetError> {
    let mut r = Reader::new(bytes);
    let count = u32::from_le_bytes(r.array()?) as usize;
    if count > MAX_GROUP {
        return Err(NetError::Decode(format!(
            "request group claims {count} entries (max {MAX_GROUP})"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u64::from_le_bytes(r.array()?);
        let ctx = TraceContext::decode(r.field()?)
            .map_err(|_| NetError::Decode("malformed trace context in request group".into()))?;
        let payload = r.field()?.to_vec();
        entries.push(RequestEntry { id, ctx, payload });
    }
    r.finish()?;
    Ok(entries)
}

/// Serializes a reply group (seal the result with the channel).
pub fn encode_reply_group(entries: &[ReplyEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    put_field(&mut out, &(entries.len() as u32).to_le_bytes());
    for e in entries {
        put_field(&mut out, &e.id.to_le_bytes());
        put_field(&mut out, &[e.status]);
        put_field(&mut out, &e.payload);
    }
    out
}

/// Parses a reply group.
///
/// # Errors
///
/// [`NetError::Decode`] on malformed input, an unknown status byte, a
/// count exceeding [`MAX_GROUP`], or trailing bytes.
pub fn decode_reply_group(bytes: &[u8]) -> Result<Vec<ReplyEntry>, NetError> {
    let mut r = Reader::new(bytes);
    let count = u32::from_le_bytes(r.array()?) as usize;
    if count > MAX_GROUP {
        return Err(NetError::Decode(format!(
            "reply group claims {count} entries (max {MAX_GROUP})"
        )));
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let id = u64::from_le_bytes(r.array()?);
        let [status] = r.array()?;
        if status > STATUS_OVERLOADED {
            return Err(NetError::Decode(format!("unknown reply status {status}")));
        }
        let payload = r.field()?.to_vec();
        entries.push(ReplyEntry {
            id,
            status,
            payload,
        });
    }
    r.finish()?;
    Ok(entries)
}

/// The epoch a resumption ticket is valid within. Any component moving
/// — a revocation landing, the trust store changing, a supervisor
/// re-granting channels — invalidates every outstanding ticket and
/// forces the full attestation handshake again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionEpoch {
    /// Registry revocation epoch (monotone count of revocations).
    pub revocation: u64,
    /// Web-of-trust epoch (trust-store generation).
    pub trust: u64,
    /// Supervisor re-grant epoch (channel re-establishment generation).
    pub regrant: u64,
}

impl SessionEpoch {
    /// Encodes to the fixed 24-byte wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&self.revocation.to_le_bytes());
        out.extend_from_slice(&self.trust.to_le_bytes());
        out.extend_from_slice(&self.regrant.to_le_bytes());
        out
    }

    /// Decodes the fixed 24-byte wire form.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on any length mismatch.
    pub fn decode(bytes: &[u8]) -> Result<SessionEpoch, NetError> {
        if bytes.len() != 24 {
            return Err(NetError::Decode(format!(
                "session epoch must be 24 bytes, got {}",
                bytes.len()
            )));
        }
        Ok(SessionEpoch {
            revocation: u64::from_le_bytes(bytes[..8].try_into().expect("length checked")),
            trust: u64::from_le_bytes(bytes[8..16].try_into().expect("length checked")),
            regrant: u64::from_le_bytes(bytes[16..24].try_into().expect("length checked")),
        })
    }
}

/// A single-use resumption ticket, held by the client. The server seals
/// it over the established channel at connect time, so the `secret`
/// never crosses the wire in the clear.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumptionTicket {
    /// Public lookup id (sent in the clear at redemption).
    pub id: [u8; 16],
    /// The shared ticket secret — never sent at redemption; possession
    /// is proven by HMAC.
    pub secret: [u8; 32],
    /// Digest of the attestation evidence verified at mint time — the
    /// trust artifact the resumed session inherits.
    pub evidence: [u8; 32],
    /// Epoch the ticket was minted in; redemption in any other epoch is
    /// refused.
    pub epoch: SessionEpoch,
}

impl ResumptionTicket {
    /// Serializes the ticket (seal before sending!).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_field(&mut out, &self.id);
        put_field(&mut out, &self.secret);
        put_field(&mut out, &self.evidence);
        put_field(&mut out, &self.epoch.encode());
        out
    }

    /// Parses a ticket.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on malformed input or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResumptionTicket, NetError> {
        let mut r = Reader::new(bytes);
        let id = r.array()?;
        let secret = r.array()?;
        let evidence = r.array()?;
        let epoch = SessionEpoch::decode(r.field()?)?;
        r.finish()?;
        Ok(ResumptionTicket {
            id,
            secret,
            evidence,
            epoch,
        })
    }
}

fn hello_proof(secret: &[u8; 32], id: &[u8; 16], nonce: &[u8; 32]) -> [u8; 32] {
    let mut mac = HmacSha256::new(secret);
    mac.update(b"lateral.session.resume.hello");
    mac.update(id);
    mac.update(nonce);
    mac.finalize()
}

fn accept_proof(secret: &[u8; 32], client_nonce: &[u8; 32], server_nonce: &[u8; 32]) -> [u8; 32] {
    let mut mac = HmacSha256::new(secret);
    mac.update(b"lateral.session.resume.accept");
    mac.update(client_nonce);
    mac.update(server_nonce);
    mac.finalize()
}

fn master_secret(secret: &[u8; 32], client_nonce: &[u8; 32], server_nonce: &[u8; 32]) -> [u8; 32] {
    let mut ikm = Vec::with_capacity(96);
    ikm.extend_from_slice(secret);
    ikm.extend_from_slice(client_nonce);
    ikm.extend_from_slice(server_nonce);
    hkdf(b"lateral.session.resume", &ikm, b"master")
}

/// The client's redemption message: ticket id in the clear, a fresh
/// nonce, and an HMAC proof of secret possession. The secret itself
/// never travels.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeHello {
    /// Which ticket is being redeemed.
    pub ticket_id: [u8; 16],
    /// Client freshness nonce (feeds the new channel keys).
    pub nonce: [u8; 32],
    /// `HMAC(secret, "…resume.hello" ‖ id ‖ nonce)`.
    pub proof: [u8; 32],
}

impl ResumeHello {
    /// Builds a redemption hello for `ticket` with a fresh nonce.
    pub fn new(ticket: &ResumptionTicket, rng: &mut Drbg) -> ResumeHello {
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        ResumeHello {
            ticket_id: ticket.id,
            nonce,
            proof: hello_proof(&ticket.secret, &ticket.id, &nonce),
        }
    }

    /// Serializes the hello.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_field(&mut out, &self.ticket_id);
        put_field(&mut out, &self.nonce);
        put_field(&mut out, &self.proof);
        out
    }

    /// Parses a hello.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on malformed input or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResumeHello, NetError> {
        let mut r = Reader::new(bytes);
        let ticket_id = r.array()?;
        let nonce = r.array()?;
        let proof = r.array()?;
        r.finish()?;
        Ok(ResumeHello {
            ticket_id,
            nonce,
            proof,
        })
    }
}

/// The server's acceptance: its own nonce plus an HMAC proof computed
/// over both nonces — mutual confirmation that both sides hold the same
/// ticket secret before any record flows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResumeAccept {
    /// Server freshness nonce.
    pub nonce: [u8; 32],
    /// `HMAC(secret, "…resume.accept" ‖ client_nonce ‖ server_nonce)`.
    pub proof: [u8; 32],
}

impl ResumeAccept {
    /// Serializes the acceptance.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_field(&mut out, &self.nonce);
        put_field(&mut out, &self.proof);
        out
    }

    /// Parses an acceptance.
    ///
    /// # Errors
    ///
    /// [`NetError::Decode`] on malformed input or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<ResumeAccept, NetError> {
        let mut r = Reader::new(bytes);
        let nonce = r.array()?;
        let proof = r.array()?;
        r.finish()?;
        Ok(ResumeAccept { nonce, proof })
    }
}

/// Completes resumption on the client: verifies the server's acceptance
/// proof and derives the client-side channel from the fresh nonces.
///
/// # Errors
///
/// [`NetError::HandshakeFailed`] when the proof does not verify —
/// whoever answered does not hold the ticket secret.
pub fn complete_resume(
    ticket: &ResumptionTicket,
    hello: &ResumeHello,
    accept: &ResumeAccept,
) -> Result<SecureChannel, NetError> {
    let expected = accept_proof(&ticket.secret, &hello.nonce, &accept.nonce);
    if expected != accept.proof {
        return Err(NetError::HandshakeFailed(
            "resume acceptance proof invalid (peer lacks the ticket secret)".into(),
        ));
    }
    let master = master_secret(&ticket.secret, &hello.nonce, &accept.nonce);
    Ok(SecureChannel::from_shared(&master, true))
}

struct StoredTicket {
    secret: [u8; 32],
    peer_key: [u8; 32],
    evidence: [u8; 32],
    epoch: SessionEpoch,
}

/// A successful server-side redemption.
pub struct Redeemed {
    /// The server-side channel for the resumed session.
    pub channel: SecureChannel,
    /// Acceptance to send back to the client (in the clear — it leaks
    /// nothing and the client verifies its HMAC).
    pub accept: ResumeAccept,
    /// Identity key of the peer that attested at mint time.
    pub peer_key: [u8; 32],
    /// Evidence digest the original attestation verified to.
    pub evidence: [u8; 32],
}

/// Server-side store of outstanding single-use resumption tickets.
pub struct TicketStore {
    tickets: BTreeMap<[u8; 16], StoredTicket>,
    capacity: usize,
}

impl std::fmt::Debug for TicketStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TicketStore({}/{} tickets)",
            self.tickets.len(),
            self.capacity
        )
    }
}

impl TicketStore {
    /// Creates a store holding at most `capacity` outstanding tickets.
    pub fn new(capacity: usize) -> TicketStore {
        TicketStore {
            tickets: BTreeMap::new(),
            capacity: capacity.max(1),
        }
    }

    /// Outstanding ticket count.
    pub fn len(&self) -> usize {
        self.tickets.len()
    }

    /// Whether no tickets are outstanding.
    pub fn is_empty(&self) -> bool {
        self.tickets.is_empty()
    }

    /// Mints a fresh ticket for a peer whose attestation verified to
    /// `evidence` in `epoch`. At capacity, the oldest ticket (smallest
    /// id) is evicted — its holder simply falls back to the full
    /// handshake.
    pub fn mint(
        &mut self,
        rng: &mut Drbg,
        peer_key: [u8; 32],
        evidence: [u8; 32],
        epoch: SessionEpoch,
    ) -> ResumptionTicket {
        let mut id = [0u8; 16];
        rng.fill_bytes(&mut id);
        let mut secret = [0u8; 32];
        rng.fill_bytes(&mut secret);
        while self.tickets.len() >= self.capacity {
            let oldest = *self.tickets.keys().next().expect("non-empty at capacity");
            self.tickets.remove(&oldest);
        }
        self.tickets.insert(
            id,
            StoredTicket {
                secret,
                peer_key,
                evidence,
                epoch,
            },
        );
        ResumptionTicket {
            id,
            secret,
            evidence,
            epoch,
        }
    }

    /// Redeems a ticket: verifies the possession proof, enforces the
    /// epoch, burns the ticket (single-use), and derives the server-side
    /// channel. An invalid proof does NOT burn the ticket — otherwise an
    /// on-path adversary who recorded the (cleartext) ticket id could
    /// spend the legitimate holder's ticket with garbage proofs.
    ///
    /// # Errors
    ///
    /// [`NetError::HandshakeFailed`] for unknown tickets or bad proofs;
    /// [`NetError::AttestationRejected`] when the epoch moved since mint
    /// — the caller must fall back to the full attestation handshake.
    pub fn redeem(
        &mut self,
        hello: &ResumeHello,
        current: &SessionEpoch,
        rng: &mut Drbg,
    ) -> Result<Redeemed, NetError> {
        let stored = self.tickets.get(&hello.ticket_id).ok_or_else(|| {
            NetError::HandshakeFailed("unknown or already-spent resumption ticket".into())
        })?;
        let expected = hello_proof(&stored.secret, &hello.ticket_id, &hello.nonce);
        if expected != hello.proof {
            return Err(NetError::HandshakeFailed(
                "resume hello proof invalid (sender lacks the ticket secret)".into(),
            ));
        }
        // Proof verified: the legitimate holder is redeeming. Burn the
        // ticket now, whatever the epoch says — it is single-use.
        let stored = self
            .tickets
            .remove(&hello.ticket_id)
            .expect("present: just looked up");
        if stored.epoch != *current {
            return Err(NetError::AttestationRejected(format!(
                "session epoch moved since ticket mint \
                 (rev {}→{}, trust {}→{}, regrant {}→{}): re-attestation required",
                stored.epoch.revocation,
                current.revocation,
                stored.epoch.trust,
                current.trust,
                stored.epoch.regrant,
                current.regrant,
            )));
        }
        let mut nonce = [0u8; 32];
        rng.fill_bytes(&mut nonce);
        let proof = accept_proof(&stored.secret, &hello.nonce, &nonce);
        let master = master_secret(&stored.secret, &hello.nonce, &nonce);
        Ok(Redeemed {
            channel: SecureChannel::from_shared(&master, false),
            accept: ResumeAccept { nonce, proof },
            peer_key: stored.peer_key,
            evidence: stored.evidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_telemetry::SpanId;

    fn ctx(trace: u64, parent: u64) -> TraceContext {
        TraceContext {
            trace_id: trace,
            parent: SpanId(parent),
        }
    }

    fn epoch(r: u64, t: u64, g: u64) -> SessionEpoch {
        SessionEpoch {
            revocation: r,
            trust: t,
            regrant: g,
        }
    }

    #[test]
    fn request_group_roundtrip() {
        let entries = vec![
            RequestEntry {
                id: 1,
                ctx: ctx(7, 3),
                payload: b"alpha".to_vec(),
            },
            RequestEntry {
                id: 2,
                ctx: ctx(7, 9),
                payload: Vec::new(),
            },
        ];
        let bytes = encode_request_group(&entries);
        assert_eq!(decode_request_group(&bytes).unwrap(), entries);
        // Empty groups are legal (a flush with nothing pending).
        assert!(decode_request_group(&encode_request_group(&[]))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn reply_group_roundtrip_and_status_guard() {
        let entries = vec![
            ReplyEntry {
                id: 1,
                status: STATUS_OK,
                payload: b"done".to_vec(),
            },
            ReplyEntry {
                id: 2,
                status: STATUS_OVERLOADED,
                payload: b"window full".to_vec(),
            },
        ];
        let bytes = encode_reply_group(&entries);
        assert_eq!(decode_reply_group(&bytes).unwrap(), entries);

        let bad = encode_reply_group(&[ReplyEntry {
            id: 9,
            status: 3,
            payload: Vec::new(),
        }]);
        assert!(matches!(decode_reply_group(&bad), Err(NetError::Decode(_))));
    }

    #[test]
    fn group_decoders_reject_trailing_bytes_and_absurd_counts() {
        let mut bytes = encode_request_group(&[RequestEntry {
            id: 1,
            ctx: ctx(2, 0),
            payload: b"x".to_vec(),
        }]);
        bytes.push(0);
        assert!(decode_request_group(&bytes).is_err());

        let mut huge = Vec::new();
        put_field(&mut huge, &(u32::MAX).to_le_bytes());
        assert!(matches!(
            decode_request_group(&huge),
            Err(NetError::Decode(_))
        ));
        assert!(matches!(
            decode_reply_group(&huge),
            Err(NetError::Decode(_))
        ));

        let mut reply = encode_reply_group(&[ReplyEntry {
            id: 1,
            status: STATUS_OK,
            payload: Vec::new(),
        }]);
        reply.push(0xFF);
        assert!(decode_reply_group(&reply).is_err());
    }

    #[test]
    fn ticket_and_hello_codecs_are_strict() {
        let t = ResumptionTicket {
            id: [1; 16],
            secret: [2; 32],
            evidence: [3; 32],
            epoch: epoch(4, 5, 6),
        };
        assert_eq!(ResumptionTicket::decode(&t.encode()).unwrap(), t);
        let mut bytes = t.encode();
        bytes.push(0);
        assert!(ResumptionTicket::decode(&bytes).is_err());

        let mut rng = Drbg::from_seed(b"hello codec");
        let h = ResumeHello::new(&t, &mut rng);
        assert_eq!(ResumeHello::decode(&h.encode()).unwrap(), h);
        let mut bytes = h.encode();
        bytes.push(0);
        assert!(ResumeHello::decode(&bytes).is_err());

        let a = ResumeAccept {
            nonce: [7; 32],
            proof: [8; 32],
        };
        assert_eq!(ResumeAccept::decode(&a.encode()).unwrap(), a);
        let mut bytes = a.encode();
        bytes.push(0);
        assert!(ResumeAccept::decode(&bytes).is_err());
    }

    #[test]
    fn redeem_derives_matching_channels() {
        let mut server_rng = Drbg::from_seed(b"server");
        let mut client_rng = Drbg::from_seed(b"client");
        let mut store = TicketStore::new(8);
        let e = epoch(1, 2, 3);
        let ticket = store.mint(&mut server_rng, [9; 32], [5; 32], e);

        let hello = ResumeHello::new(&ticket, &mut client_rng);
        let mut redeemed = store.redeem(&hello, &e, &mut server_rng).unwrap();
        assert_eq!(redeemed.peer_key, [9; 32]);
        assert_eq!(redeemed.evidence, [5; 32]);

        let mut client = complete_resume(&ticket, &hello, &redeemed.accept).unwrap();
        let rec = client.seal(b"resumed request");
        assert_eq!(redeemed.channel.open(&rec).unwrap(), b"resumed request");
        let reply = redeemed.channel.seal(b"resumed reply");
        assert_eq!(client.open(&reply).unwrap(), b"resumed reply");
    }

    #[test]
    fn tickets_are_single_use() {
        let mut rng = Drbg::from_seed(b"single use");
        let mut store = TicketStore::new(8);
        let e = epoch(0, 0, 0);
        let ticket = store.mint(&mut rng, [1; 32], [2; 32], e);
        let hello = ResumeHello::new(&ticket, &mut rng.clone());
        store.redeem(&hello, &e, &mut rng).unwrap();
        assert!(matches!(
            store.redeem(&hello, &e, &mut rng),
            Err(NetError::HandshakeFailed(_))
        ));
    }

    #[test]
    fn epoch_change_burns_the_ticket_and_forces_reattest() {
        let mut rng = Drbg::from_seed(b"epoch");
        let mut store = TicketStore::new(8);
        let minted = epoch(1, 1, 1);
        let ticket = store.mint(&mut rng, [1; 32], [2; 32], minted);
        let hello = ResumeHello::new(&ticket, &mut rng.clone());
        // A revocation landed since mint.
        let moved = epoch(2, 1, 1);
        assert!(matches!(
            store.redeem(&hello, &moved, &mut rng),
            Err(NetError::AttestationRejected(_))
        ));
        // Burned: even the original epoch cannot redeem it any more.
        assert!(store.is_empty());
    }

    #[test]
    fn bad_proof_is_rejected_without_burning_the_ticket() {
        let mut rng = Drbg::from_seed(b"proof");
        let mut store = TicketStore::new(8);
        let e = epoch(0, 0, 0);
        let ticket = store.mint(&mut rng, [1; 32], [2; 32], e);
        // An adversary recorded the cleartext ticket id but lacks the
        // secret (it only ever traveled sealed).
        let forged = ResumeHello {
            ticket_id: ticket.id,
            nonce: [0xAA; 32],
            proof: [0xBB; 32],
        };
        assert!(matches!(
            store.redeem(&forged, &e, &mut rng),
            Err(NetError::HandshakeFailed(_))
        ));
        assert_eq!(store.len(), 1, "the legitimate holder's ticket survives");
        // The legitimate redemption still works afterwards.
        let hello = ResumeHello::new(&ticket, &mut rng.clone());
        assert!(store.redeem(&hello, &e, &mut rng).is_ok());
    }

    #[test]
    fn forged_accept_is_rejected_by_the_client() {
        let mut rng = Drbg::from_seed(b"accept");
        let ticket = ResumptionTicket {
            id: [1; 16],
            secret: [2; 32],
            evidence: [3; 32],
            epoch: epoch(0, 0, 0),
        };
        let hello = ResumeHello::new(&ticket, &mut rng);
        let forged = ResumeAccept {
            nonce: [4; 32],
            proof: [5; 32],
        };
        assert!(matches!(
            complete_resume(&ticket, &hello, &forged),
            Err(NetError::HandshakeFailed(_))
        ));
    }

    #[test]
    fn store_capacity_evicts_rather_than_grows() {
        let mut rng = Drbg::from_seed(b"capacity");
        let mut store = TicketStore::new(2);
        let e = epoch(0, 0, 0);
        for _ in 0..5 {
            store.mint(&mut rng, [1; 32], [2; 32], e);
        }
        assert_eq!(store.len(), 2);
    }
}
