//! Content-addressed image fetch from multiple registry mirrors.
//!
//! An image is named by the digest of its content, so it does not matter
//! *who* serves the bytes — the fetcher verifies the measurement against
//! the requested digest regardless of source (the minimized-trust model:
//! mirrors are untrusted caches, not authorities). Mirror order is
//! deterministic and failover between mirrors is driven by the same
//! [`BackoffSchedule`] the record layer uses, so two identical runs
//! fail over at identical logical times.
//!
//! The frames are deliberately *unsealed*: image content is public and
//! its integrity comes from the digest check, not from a channel. A
//! corrupting adversary (or a hostile mirror) only ever costs a
//! failover, never an accepted forgery.

use std::collections::BTreeMap;

use crate::channel::{send_with_backoff, BackoffSchedule};
use crate::sim::Network;
use crate::wire::{put_field, Reader};
use crate::{Addr, NetError};

/// Frame kind: a fetch request (body = requested digest).
pub const FETCH_REQ: u8 = 1;
/// Frame kind: a hit (body = the image bytes).
pub const FETCH_OK: u8 = 2;
/// Frame kind: the mirror does not hold the digest.
pub const FETCH_MISS: u8 = 3;

fn encode_frame(kind: u8, digest: &[u8; 32], body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    put_field(&mut out, &[kind]);
    put_field(&mut out, digest);
    put_field(&mut out, body);
    out
}

fn decode_frame(bytes: &[u8]) -> Result<(u8, [u8; 32], Vec<u8>), NetError> {
    let mut r = Reader::new(bytes);
    let [kind] = r.array()?;
    let digest = r.array()?;
    let body = r.field()?.to_vec();
    r.finish()?;
    Ok((kind, digest, body))
}

/// A registry mirror: an untrusted content-addressed cache bound to a
/// network address. Simulation knobs model the failure modes the
/// fetcher must survive: an unresponsive mirror (swallows requests) and
/// a corrupt one (serves tampered bytes).
pub struct MirrorStore {
    addr: Addr,
    images: BTreeMap<[u8; 32], Vec<u8>>,
    responsive: bool,
    corrupt: bool,
    served: u64,
}

impl std::fmt::Debug for MirrorStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MirrorStore({}, {} images, responsive={}, corrupt={})",
            self.addr,
            self.images.len(),
            self.responsive,
            self.corrupt
        )
    }
}

impl MirrorStore {
    /// Creates a mirror and registers its address on the network.
    pub fn bind(net: &mut Network, name: &str) -> MirrorStore {
        let addr = Addr::new(name);
        net.register(addr.clone());
        MirrorStore {
            addr,
            images: BTreeMap::new(),
            responsive: true,
            corrupt: false,
            served: 0,
        }
    }

    /// The mirror's network address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Stores content under its digest.
    pub fn publish(&mut self, digest: [u8; 32], bytes: Vec<u8>) {
        self.images.insert(digest, bytes);
    }

    /// SIMULATION: an unresponsive mirror swallows requests silently.
    pub fn set_responsive(&mut self, responsive: bool) {
        self.responsive = responsive;
    }

    /// SIMULATION: a corrupt mirror serves tampered bytes on every hit.
    pub fn set_corrupt(&mut self, corrupt: bool) {
        self.corrupt = corrupt;
    }

    /// Successful (OK) responses served so far.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Drains the mirror's inbox and answers every well-formed fetch
    /// request; malformed frames are dropped (an untrusted endpoint
    /// never crashes on garbage).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownAddr`] only if the requester vanished from the
    /// network between request and reply.
    pub fn pump(&mut self, net: &mut Network) -> Result<(), NetError> {
        while let Some(packet) = net.recv(&self.addr)? {
            if !self.responsive {
                continue;
            }
            let Ok((kind, digest, _)) = decode_frame(&packet.payload) else {
                continue;
            };
            if kind != FETCH_REQ {
                continue;
            }
            let reply = match self.images.get(&digest) {
                Some(bytes) => {
                    let mut body = bytes.clone();
                    if self.corrupt && !body.is_empty() {
                        body[0] ^= 0x80;
                    }
                    self.served += 1;
                    encode_frame(FETCH_OK, &digest, &body)
                }
                None => encode_frame(FETCH_MISS, &digest, &[]),
            };
            net.send(&self.addr, &packet.from, &reply)?;
        }
        Ok(())
    }
}

/// How a fetch concluded, per mirror — for conservation accounting
/// (every fetch is served by exactly one mirror or fails typed).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FetchReport {
    /// Mirror that served the verified bytes.
    pub winner: Option<String>,
    /// Mirrors skipped because no reply arrived within the schedule.
    pub unreachable: u32,
    /// Mirrors that answered [`FETCH_MISS`].
    pub misses: u32,
    /// Mirrors whose bytes failed digest verification.
    pub corrupt_rejected: u32,
}

/// Fetches `digest` from the first mirror (in deterministic slice
/// order) that serves bytes whose measurement — computed by the
/// *caller's* `measure`, never taken on the mirror's word — matches.
/// Unreachable, missing, and corrupt mirrors each cost one failover
/// step; the [`BackoffSchedule`] bounds the per-mirror request retries
/// and advances the shared logical clock.
///
/// # Errors
///
/// [`NetError::Timeout`] when every mirror fails; hard network errors
/// (e.g. [`NetError::UnknownAddr`]) propagate immediately.
pub fn fetch_verified(
    net: &mut Network,
    client: &Addr,
    mirrors: &mut [MirrorStore],
    digest: &[u8; 32],
    measure: &dyn Fn(&[u8]) -> [u8; 32],
    schedule: &BackoffSchedule,
    clock: &mut u64,
) -> Result<(Vec<u8>, FetchReport), NetError> {
    let mut report = FetchReport::default();
    let request = encode_frame(FETCH_REQ, digest, &[]);
    for mirror in mirrors.iter_mut() {
        let mirror_addr = mirror.addr().clone();
        match send_with_backoff(net, client, &mirror_addr, &request, schedule, clock) {
            Ok(_) => {}
            Err(NetError::RetryExhausted { last_err, .. }) => match *last_err {
                NetError::Timeout(_) => {
                    report.unreachable += 1;
                    continue;
                }
                hard => return Err(hard),
            },
            Err(e) => return Err(e),
        }
        mirror.pump(net)?;
        // Drain every reply (retransmitted requests may have produced
        // several); the first verified one wins.
        let mut outcome = None;
        while let Some(packet) = net.recv(client)? {
            if outcome.is_some() {
                continue;
            }
            let Ok((kind, echoed, body)) = decode_frame(&packet.payload) else {
                continue;
            };
            if echoed != *digest {
                continue;
            }
            match kind {
                FETCH_OK if measure(&body) == *digest => outcome = Some(body),
                FETCH_OK => {
                    report.corrupt_rejected += 1;
                }
                FETCH_MISS => {
                    report.misses += 1;
                }
                _ => {}
            }
        }
        if let Some(bytes) = outcome {
            report.winner = Some(mirror_addr.to_string());
            return Ok((bytes, report));
        }
        if report.misses == 0 && report.corrupt_rejected == 0 {
            // Sent but nothing came back: the mirror itself is silent.
            report.unreachable += 1;
        }
    }
    Err(NetError::Timeout(format!(
        "no mirror served digest ({} unreachable, {} misses, {} corrupt)",
        report.unreachable, report.misses, report.corrupt_rejected
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_crypto::Digest;

    fn measure(bytes: &[u8]) -> [u8; 32] {
        Digest::of_parts(&[b"test.image", bytes]).0
    }

    fn setup(names: &[&str]) -> (Network, Addr, Vec<MirrorStore>) {
        let mut net = Network::new("fetch");
        let client = Addr::new("client");
        net.register(client.clone());
        let mirrors = names
            .iter()
            .map(|n| MirrorStore::bind(&mut net, n))
            .collect();
        (net, client, mirrors)
    }

    #[test]
    fn fetch_from_the_first_mirror_that_has_it() {
        let (mut net, client, mut mirrors) = setup(&["m0", "m1"]);
        let image = b"image bytes".to_vec();
        let digest = measure(&image);
        mirrors[1].publish(digest, image.clone());

        let mut clock = 0;
        let (bytes, report) = fetch_verified(
            &mut net,
            &client,
            &mut mirrors,
            &digest,
            &measure,
            &BackoffSchedule::capped(1, 4, 3),
            &mut clock,
        )
        .unwrap();
        assert_eq!(bytes, image);
        assert_eq!(report.winner.as_deref(), Some("m1"));
        assert_eq!(report.misses, 1, "m0 answered MISS before m1 won");
    }

    #[test]
    fn corrupt_mirror_is_rejected_and_failed_over() {
        let (mut net, client, mut mirrors) = setup(&["bad", "good"]);
        let image = b"genuine image".to_vec();
        let digest = measure(&image);
        mirrors[0].publish(digest, image.clone());
        mirrors[0].set_corrupt(true);
        mirrors[1].publish(digest, image.clone());

        let mut clock = 0;
        let (bytes, report) = fetch_verified(
            &mut net,
            &client,
            &mut mirrors,
            &digest,
            &measure,
            &BackoffSchedule::capped(1, 4, 3),
            &mut clock,
        )
        .unwrap();
        assert_eq!(bytes, image, "the verified copy wins regardless of source");
        assert_eq!(report.winner.as_deref(), Some("good"));
        assert_eq!(report.corrupt_rejected, 1);
    }

    #[test]
    fn unresponsive_mirror_costs_a_deterministic_failover() {
        let (mut net, client, mut mirrors) = setup(&["dead", "live"]);
        let image = b"image".to_vec();
        let digest = measure(&image);
        mirrors[0].publish(digest, image.clone());
        mirrors[0].set_responsive(false);
        mirrors[1].publish(digest, image.clone());

        let mut clock = 0;
        let (bytes, report) = fetch_verified(
            &mut net,
            &client,
            &mut mirrors,
            &digest,
            &measure,
            &BackoffSchedule::capped(2, 8, 3),
            &mut clock,
        )
        .unwrap();
        assert_eq!(bytes, image);
        assert_eq!(report.winner.as_deref(), Some("live"));
        assert_eq!(
            report.unreachable, 1,
            "a delivered-but-silent mirror is classified unreachable"
        );
    }

    #[test]
    fn all_mirrors_failing_is_a_typed_timeout() {
        let (mut net, client, mut mirrors) = setup(&["m0", "m1"]);
        let digest = measure(b"never published");
        let mut clock = 0;
        let err = fetch_verified(
            &mut net,
            &client,
            &mut mirrors,
            &digest,
            &measure,
            &BackoffSchedule::capped(1, 4, 2),
            &mut clock,
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Timeout(_)), "{err}");
    }

    #[test]
    fn malformed_frames_never_crash_the_mirror() {
        let (mut net, client, mut mirrors) = setup(&["m0"]);
        net.send(&client, &Addr::new("m0"), b"garbage").unwrap();
        net.send(&client, &Addr::new("m0"), &[]).unwrap();
        mirrors[0].pump(&mut net).unwrap();
        assert_eq!(mirrors[0].served(), 0);
        assert!(
            net.recv(&client).unwrap().is_none(),
            "no replies to garbage"
        );
    }
}
