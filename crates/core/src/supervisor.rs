//! The supervision tree: crashed components restart, re-attest, and
//! rejoin the assembly.
//!
//! E1 proves *containment* — a fault stays inside its domain — but a
//! production assembly also needs *recovery*: once a domain fail-stops,
//! every channel into it serves errors forever unless something puts a
//! successor in its place. The [`Supervisor`] is that something. It
//! owns a composed [`Assembly`] together with the [`AppManifest`] and
//! [`ComponentFactory`] that built it (the composer itself retains
//! neither), and drives each crash through the paper-faithful cycle:
//!
//! 1. **destroy** the crashed domain — the fabric revokes every
//!    capability targeting it, so stale channels are dead by
//!    construction, not by convention;
//! 2. wait out a **capped, doubling logical-clock backoff** declared in
//!    the manifest ([`RestartPolicy`]);
//! 3. **respawn** from the manifest image on the same substrate —
//!    nothing is replayed; the successor starts from its image like any
//!    cold boot;
//! 4. **re-measure and re-attest**: the successor must measure
//!    identically to the baseline recorded at composition, and (where
//!    the substrate can attest) produce evidence carrying that same
//!    measurement — a restarted impostor cannot slip in;
//! 5. **re-grant exactly the manifest-declared channels** — POLA
//!    survives the restart because the grant set is recomputed from the
//!    manifest, never from runtime state.
//!
//! Callers see a bounded window of [`CoreError::Unavailable`]; a
//! component that exhausts its restart budget is quarantined while the
//! rest of the assembly keeps serving ([`Health::Degraded`]); an
//! [`RestartPolicy::Escalate`] component failing takes the whole
//! assembly to [`Health::Failed`].

use std::collections::BTreeMap;

use lateral_crypto::Digest;
use lateral_registry::Registry;
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::substrate::Substrate;
use lateral_substrate::SubstrateError;

use crate::composer::{compose, compose_admitted, Assembly, ComponentFactory, Health};
use crate::manifest::{AppManifest, RestartPolicy};
use crate::placement::{plan_placement, PlacementPlan};
use crate::CoreError;

/// Report data bound into both the baseline and every post-restart
/// attestation, so recovered evidence is byte-comparable to the
/// original.
pub const ATTEST_CONTEXT: &[u8] = b"lateral.supervisor.attest";

#[derive(Clone, PartialEq, Eq, Debug)]
enum State {
    Up,
    /// Crashed; next restart attempt allowed once the component's
    /// substrate clock reaches `resume_at`.
    Down {
        resume_at: u64,
    },
    Quarantined,
}

/// Supervises a composed assembly: detects fail-stops on the call path,
/// restarts per the manifest's [`RestartPolicy`], and reports
/// [`Health`].
pub struct Supervisor {
    assembly: Assembly,
    app: AppManifest,
    factory: Box<dyn ComponentFactory>,
    states: BTreeMap<String, State>,
    restart_counts: BTreeMap<String, u32>,
    baselines: BTreeMap<String, Digest>,
    baseline_evidence: BTreeMap<String, Option<AttestationEvidence>>,
    last_evidence: BTreeMap<String, Option<AttestationEvidence>>,
    escalated: Option<String>,
    /// Admission-control mode: present when the supervisor was built
    /// with [`Supervisor::new_admitted`]. Every respawn re-resolves
    /// through it, and [`Supervisor::tick`] sweeps it for revocations.
    registry: Option<Registry>,
    ticks: u64,
    /// Sealed-state escrow: blobs a component sealed on its current
    /// substrate, held so live migration can open them at the source
    /// and re-seal them at the target (sealing keys never cross
    /// substrates).
    sealed_escrow: BTreeMap<String, Vec<Vec<u8>>>,
    migration_counts: BTreeMap<String, u32>,
}

impl std::fmt::Debug for Supervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Supervisor({} components, {:?})",
            self.states.len(),
            self.health()
        )
    }
}

impl Supervisor {
    /// Composes `app` over `substrates` and places it under supervision,
    /// recording each component's baseline measurement and (where the
    /// substrate can attest) baseline attestation evidence.
    ///
    /// # Errors
    ///
    /// Everything [`compose`] can return.
    pub fn new(
        app: AppManifest,
        substrates: Vec<Box<dyn Substrate>>,
        mut factory: Box<dyn ComponentFactory>,
    ) -> Result<Supervisor, CoreError> {
        let assembly = compose(&app, substrates, factory.as_mut())?;
        Supervisor::from_parts(assembly, app, factory, None)
    }

    /// Like [`Supervisor::new`], but under **admission control**: the
    /// initial composition and every later respawn resolve images
    /// through `registry` ([`compose_admitted`]), and
    /// [`Supervisor::tick`] quarantines running instances of revoked
    /// digests.
    ///
    /// # Errors
    ///
    /// Everything [`compose_admitted`] can return.
    pub fn new_admitted(
        app: AppManifest,
        substrates: Vec<Box<dyn Substrate>>,
        mut factory: Box<dyn ComponentFactory>,
        mut registry: Registry,
    ) -> Result<Supervisor, CoreError> {
        let assembly = compose_admitted(&app, substrates, factory.as_mut(), &mut registry)?;
        Supervisor::from_parts(assembly, app, factory, Some(registry))
    }

    fn from_parts(
        assembly: Assembly,
        app: AppManifest,
        factory: Box<dyn ComponentFactory>,
        registry: Option<Registry>,
    ) -> Result<Supervisor, CoreError> {
        let mut sup = Supervisor {
            assembly,
            app,
            factory,
            states: BTreeMap::new(),
            restart_counts: BTreeMap::new(),
            baselines: BTreeMap::new(),
            baseline_evidence: BTreeMap::new(),
            last_evidence: BTreeMap::new(),
            escalated: None,
            registry,
            ticks: 0,
            sealed_escrow: BTreeMap::new(),
            migration_counts: BTreeMap::new(),
        };
        for cm in &sup.app.components.clone() {
            sup.states.insert(cm.name.clone(), State::Up);
            sup.restart_counts.insert(cm.name.clone(), 0);
            let m = sup.assembly.measurement(&cm.name)?;
            sup.baselines.insert(cm.name.clone(), m);
            let ev = sup.attest_raw(&cm.name)?;
            sup.baseline_evidence.insert(cm.name.clone(), ev.clone());
            sup.last_evidence.insert(cm.name.clone(), ev);
        }
        Ok(sup)
    }

    /// Attests a component with [`ATTEST_CONTEXT`], returning `None`
    /// where the substrate cannot attest (e.g. pure software).
    fn attest_raw(&mut self, name: &str) -> Result<Option<AttestationEvidence>, CoreError> {
        let p = self.assembly.placement(name)?;
        match self.assembly.substrates[p.substrate].attest(p.domain, ATTEST_CONTEXT) {
            Ok(ev) => Ok(Some(ev)),
            Err(SubstrateError::Unsupported(_)) => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn clock_of(&self, name: &str) -> Result<u64, CoreError> {
        let p = self.assembly.placement(name)?;
        Ok(self.assembly.substrates[p.substrate].now())
    }

    /// Supervised environment invocation of a component. Routes through
    /// the assembly when the component is up; during a crash window it
    /// returns [`CoreError::Unavailable`] and, once the backoff deadline
    /// passes, performs the restart inline before dispatching.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unavailable`] while the component is down,
    /// quarantined, or the assembly has failed; otherwise the underlying
    /// assembly errors.
    pub fn call(&mut self, name: &str, data: &[u8]) -> Result<Vec<u8>, CoreError> {
        if let Some(who) = &self.escalated {
            return Err(CoreError::Unavailable(format!(
                "assembly failed: crash of '{who}' escalated"
            )));
        }
        let state = self
            .states
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NotFound(format!("component '{name}'")))?;
        match state {
            State::Quarantined => Err(CoreError::Unavailable(format!(
                "'{name}' is quarantined (restart budget exhausted)"
            ))),
            State::Down { resume_at } => {
                if self.clock_of(name)? < resume_at {
                    return Err(CoreError::Unavailable(format!(
                        "'{name}' is down, restart at tick {resume_at}"
                    )));
                }
                match self.try_restart(name) {
                    Ok(()) => {
                        self.states.insert(name.to_string(), State::Up);
                        self.dispatch(name, data)
                    }
                    Err(e @ CoreError::AdmissionRefused { .. }) => {
                        // A refused image will stay refused until the
                        // registry changes: no point burning restart
                        // budget on retries — quarantine now.
                        self.quarantine(name);
                        Err(CoreError::Unavailable(format!(
                            "restart of '{name}' refused: {e}"
                        )))
                    }
                    Err(e) => {
                        self.note_restart_failure(name);
                        Err(CoreError::Unavailable(format!(
                            "restart of '{name}' failed: {e}"
                        )))
                    }
                }
            }
            State::Up => self.dispatch(name, data),
        }
    }

    fn dispatch(&mut self, name: &str, data: &[u8]) -> Result<Vec<u8>, CoreError> {
        match self.assembly.call_component(name, data) {
            Err(CoreError::Unavailable(r)) => {
                // The fabric reported a fail-stop mid-call: begin the
                // supervision cycle now.
                self.on_crash(name);
                Err(CoreError::Unavailable(r))
            }
            other => other,
        }
    }

    /// Crash handling: destroy the domain immediately (stale caps die
    /// with it), then schedule per policy.
    fn on_crash(&mut self, name: &str) {
        if let Ok(p) = self.assembly.placement(name) {
            let _ = self.assembly.substrates[p.substrate].destroy(p.domain);
        }
        let policy = self
            .app
            .component(name)
            .map(|c| c.restart)
            .unwrap_or(RestartPolicy::Never);
        match policy {
            RestartPolicy::Never => {
                self.quarantine(name);
            }
            RestartPolicy::Escalate => {
                self.quarantine(name);
                self.escalated = Some(name.to_string());
            }
            RestartPolicy::Restart { max_restarts, .. } => {
                let count = *self.restart_counts.get(name).unwrap_or(&0);
                if count >= max_restarts {
                    self.quarantine(name);
                } else {
                    let resume_at = self
                        .clock_of(name)
                        .unwrap_or(0)
                        .saturating_add(policy.backoff(count));
                    self.states
                        .insert(name.to_string(), State::Down { resume_at });
                }
            }
        }
    }

    fn note_restart_failure(&mut self, name: &str) {
        let count = {
            let c = self.restart_counts.entry(name.to_string()).or_insert(0);
            *c += 1;
            *c
        };
        let policy = self
            .app
            .component(name)
            .map(|c| c.restart)
            .unwrap_or(RestartPolicy::Never);
        match policy {
            RestartPolicy::Restart { max_restarts, .. } if count < max_restarts => {
                let resume_at = self
                    .clock_of(name)
                    .unwrap_or(0)
                    .saturating_add(policy.backoff(count));
                self.states
                    .insert(name.to_string(), State::Down { resume_at });
            }
            _ => {
                self.quarantine(name);
            }
        }
    }

    /// The single quarantine transition point: flips `name` to
    /// [`State::Quarantined`] and counts the transition — exactly once
    /// per component lifetime — as `supervisor.quarantines` on the
    /// component's substrate telemetry. Re-quarantining is a state
    /// no-op and never double-counts.
    fn quarantine(&mut self, name: &str) {
        let already = matches!(self.states.get(name), Some(State::Quarantined));
        self.states.insert(name.to_string(), State::Quarantined);
        if already {
            return;
        }
        if let Ok(p) = self.assembly.placement(name) {
            if let Some(t) = self.assembly.substrate_mut(p.substrate).telemetry_mut_ref() {
                t.metrics_mut().incr("supervisor.quarantines", 1);
            }
        }
    }

    /// The restart cycle: **re-resolve the image** (never reuse the
    /// copy captured at first spawn — revocations and certified image
    /// updates must take effect on restart), respawn, verify the
    /// successor measures as expected, re-attest, re-grant declared
    /// channels.
    ///
    /// Without a registry the expected measurement is the composition
    /// baseline. With one, a *different* certified digest for the name
    /// is a legitimate image update: the supervisor adopts it and the
    /// new measurement becomes the baseline; a revoked or uncertified
    /// digest refuses the restart outright.
    fn try_restart(&mut self, name: &str) -> Result<(), CoreError> {
        // The whole recovery cycle — rebuild, respawn, re-measure,
        // re-attest, re-grant — is one `respawn` span on the
        // component's substrate, so the spawn and grant spans the cycle
        // triggers nest under it causally.
        let span = self.assembly.placement(name).ok().and_then(|p| {
            let sub = self.assembly.substrate_mut(p.substrate);
            let at = sub.now();
            sub.telemetry_mut_ref().map(|t| {
                (
                    p.substrate,
                    at,
                    t.begin_span(&format!("respawn {name}"), "supervisor", at),
                )
            })
        });
        let result = self.restart_cycle(name);
        if let Some((idx, started, span)) = span {
            let sub = self.assembly.substrate_mut(idx);
            let at = sub.now();
            let outcome = if result.is_ok() {
                lateral_telemetry::outcome::OK
            } else {
                lateral_telemetry::outcome::FAILED
            };
            if let Some(t) = sub.telemetry_mut_ref() {
                t.end_span(span, at, outcome);
                let metrics = t.metrics_mut();
                if result.is_ok() {
                    metrics.incr("supervisor.restarts", 1);
                }
                metrics.observe("supervisor.respawn.ticks", at.saturating_sub(started));
            }
        }
        result
    }

    fn restart_cycle(&mut self, name: &str) -> Result<(), CoreError> {
        let mut cm = self
            .app
            .component(name)
            .ok_or_else(|| CoreError::NotFound(format!("component '{name}'")))?
            .clone();
        let mut adopted_update = false;
        if let Some(registry) = &mut self.registry {
            let resolved = registry
                .resolve(name)
                .map_err(|e| CoreError::AdmissionRefused {
                    component: name.to_string(),
                    reason: format!("respawn re-resolution: {e}"),
                })?;
            if resolved.image != cm.image {
                // A newer certified image was published since the last
                // spawn: adopt it, in the app manifest too, so later
                // restarts and re-grants agree.
                cm.image = resolved.image.clone();
                adopted_update = true;
                if let Some(c) = self.app.components.iter_mut().find(|c| c.name == name) {
                    c.image = resolved.image;
                }
            }
        }
        let component = self.factory.build(&cm).ok_or_else(|| {
            CoreError::InvalidManifest(format!("factory cannot rebuild '{name}'"))
        })?;
        self.assembly.respawn(&cm, component)?;
        let m = self.assembly.measurement(name)?;
        if adopted_update {
            self.baselines.insert(name.to_string(), m);
        } else {
            let baseline = self.baselines[name];
            if m != baseline {
                return Err(CoreError::Substrate(format!(
                    "respawned '{name}' measurement diverged from baseline"
                )));
            }
        }
        let ev = self.attest_raw(name)?;
        if let Some(ev) = &ev {
            if ev.measurement != self.baselines[name] {
                return Err(CoreError::Substrate(format!(
                    "respawned '{name}' attestation evidence diverged from baseline"
                )));
            }
        }
        if adopted_update {
            self.baseline_evidence.insert(name.to_string(), ev.clone());
        }
        self.last_evidence.insert(name.to_string(), ev);
        self.restart_counts
            .entry(name.to_string())
            .and_modify(|c| *c += 1)
            .or_insert(1);
        self.assembly.regrant(&self.app, name)?;
        Ok(())
    }

    /// Places a sealed blob under the supervisor's migration escrow for
    /// `name`. During a live migration every registered blob is opened
    /// at the source (while the domain is still alive), carried across,
    /// and re-sealed at the target — the escrow entry is replaced by
    /// the re-sealed form, readable via [`Supervisor::sealed_blobs`].
    pub fn register_sealed(&mut self, name: &str, blob: Vec<u8>) {
        self.sealed_escrow
            .entry(name.to_string())
            .or_default()
            .push(blob);
    }

    /// The sealed blobs currently escrowed for `name` (re-sealed under
    /// the target substrate's keys after a migration).
    #[must_use]
    pub fn sealed_blobs(&self, name: &str) -> &[Vec<u8>] {
        self.sealed_escrow.get(name).map_or(&[], |v| v.as_slice())
    }

    /// Live migrations performed for a component so far.
    #[must_use]
    pub fn migrations(&self, name: &str) -> u32 {
        *self.migration_counts.get(name).unwrap_or(&0)
    }

    /// The optimizer pass: folds the pool's crossing profiles into one
    /// merged [`lateral_telemetry::profile::CrossingProfile`] and
    /// scores every placed component against every pool candidate
    /// ([`plan_placement`]) under a `placement.score` span per pool
    /// substrate, counting `placement.plans` and `placement.moves` in
    /// each substrate's metrics. The plan is returned, not applied —
    /// [`Supervisor::apply_plan`] is the actuation step.
    ///
    /// # Errors
    ///
    /// Everything [`plan_placement`] can return.
    pub fn optimize(&mut self) -> Result<PlacementPlan, CoreError> {
        let spans: Vec<Option<(usize, lateral_telemetry::SpanId)>> =
            (0..self.assembly.substrate_count())
                .map(|idx| {
                    let sub = self.assembly.substrate_mut(idx);
                    let at = sub.now();
                    sub.telemetry_mut_ref()
                        .map(|t| (idx, t.begin_span("placement.score", "placement", at)))
                })
                .collect();
        let profile = self.assembly.crossing_profile();
        let result = plan_placement(&self.app, &self.assembly, &profile);
        let outcome = if result.is_ok() {
            lateral_telemetry::outcome::OK
        } else {
            lateral_telemetry::outcome::FAILED
        };
        for span in spans.into_iter().flatten() {
            let (idx, span) = span;
            let sub = self.assembly.substrate_mut(idx);
            let at = sub.now();
            if let Some(t) = sub.telemetry_mut_ref() {
                t.end_span(span, at, outcome);
                if let Ok(plan) = &result {
                    let metrics = t.metrics_mut();
                    metrics.incr("placement.plans", 1);
                    metrics.incr("placement.moves", plan.move_count() as u64);
                }
            }
        }
        result
    }

    /// Applies a [`PlacementPlan`]: every decision that moves its
    /// component is actuated via [`Supervisor::migrate_component`], in
    /// plan (component-name) order. Components that are not currently
    /// up are skipped — a crashed or quarantined component has no live
    /// state to migrate; its own recovery path owns it. Returns the
    /// number of migrations performed.
    ///
    /// # Errors
    ///
    /// The first failing migration's error (later moves unattempted).
    pub fn apply_plan(&mut self, plan: &PlacementPlan) -> Result<u32, CoreError> {
        let mut applied = 0;
        for d in plan.moves() {
            if !matches!(self.states.get(&d.component), Some(State::Up)) {
                continue;
            }
            self.migrate_component(&d.component, d.chosen)?;
            applied += 1;
        }
        Ok(applied)
    }

    /// Live-migrates one component to the `target` pool substrate,
    /// under a `placement.migrate {name}` span on the target (the spawn
    /// and grant spans of the cycle nest under it), counting
    /// `placement.migrations` and observing `placement.migrate.ticks`.
    /// A `target` equal to the current placement is a no-op.
    ///
    /// The cycle mirrors the restart cycle, with a seal-escrow leg:
    /// re-resolve the image when admission-controlled, open every
    /// escrowed blob at the source while the domain is live, destroy,
    /// spawn from the manifest image on the target, verify the
    /// successor measures as the baseline, re-attest where supported,
    /// re-seal the escrow under the target's keys, and re-grant exactly
    /// the manifest-declared channels.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for unknown components or pool indexes;
    /// [`CoreError::AdmissionRefused`] when the registry refuses the
    /// re-resolution; substrate errors from any leg of the cycle.
    pub fn migrate_component(&mut self, name: &str, target: usize) -> Result<(), CoreError> {
        let p = self.assembly.placement(name)?;
        if target >= self.assembly.substrate_count() {
            return Err(CoreError::NotFound(format!(
                "pool substrate index {target}"
            )));
        }
        if p.substrate == target {
            return Ok(());
        }
        let span = {
            let sub = self.assembly.substrate_mut(target);
            let at = sub.now();
            sub.telemetry_mut_ref().map(|t| {
                (
                    at,
                    t.begin_span(&format!("placement.migrate {name}"), "placement", at),
                )
            })
        };
        let result = self.migrate_cycle(name, target);
        if let Some((started, span)) = span {
            let sub = self.assembly.substrate_mut(target);
            let at = sub.now();
            let outcome = if result.is_ok() {
                lateral_telemetry::outcome::OK
            } else {
                lateral_telemetry::outcome::FAILED
            };
            if let Some(t) = sub.telemetry_mut_ref() {
                t.end_span(span, at, outcome);
                let metrics = t.metrics_mut();
                if result.is_ok() {
                    metrics.incr("placement.migrations", 1);
                }
                metrics.observe("placement.migrate.ticks", at.saturating_sub(started));
            }
        }
        result
    }

    fn migrate_cycle(&mut self, name: &str, target: usize) -> Result<(), CoreError> {
        let mut cm = self
            .app
            .component(name)
            .ok_or_else(|| CoreError::NotFound(format!("component '{name}'")))?
            .clone();
        let mut adopted_update = false;
        if let Some(registry) = &mut self.registry {
            let resolved = registry
                .resolve(name)
                .map_err(|e| CoreError::AdmissionRefused {
                    component: name.to_string(),
                    reason: format!("migration re-resolution: {e}"),
                })?;
            if resolved.image != cm.image {
                cm.image = resolved.image.clone();
                adopted_update = true;
                if let Some(c) = self.app.components.iter_mut().find(|c| c.name == name) {
                    c.image = resolved.image;
                }
            }
        }
        // Escrow out: open every registered blob at the source while
        // the domain is still alive — after the destroy the sealing key
        // is unreachable and the state would be lost.
        let p = self.assembly.placement(name)?;
        let blobs = self.sealed_escrow.get(name).cloned().unwrap_or_default();
        let mut opened = Vec::with_capacity(blobs.len());
        for blob in &blobs {
            opened.push(self.assembly.substrates[p.substrate].unseal(p.domain, blob)?);
        }
        let component = self.factory.build(&cm).ok_or_else(|| {
            CoreError::InvalidManifest(format!("factory cannot rebuild '{name}'"))
        })?;
        self.assembly.migrate(&cm, component, target)?;
        let m = self.assembly.measurement(name)?;
        if adopted_update {
            self.baselines.insert(name.to_string(), m);
        } else {
            let baseline = self.baselines[name];
            if m != baseline {
                return Err(CoreError::Substrate(format!(
                    "migrated '{name}' measurement diverged from baseline"
                )));
            }
        }
        let ev = self.attest_raw(name)?;
        if let Some(ev) = &ev {
            if ev.measurement != self.baselines[name] {
                return Err(CoreError::Substrate(format!(
                    "migrated '{name}' attestation evidence diverged from baseline"
                )));
            }
        }
        if adopted_update {
            self.baseline_evidence.insert(name.to_string(), ev.clone());
        }
        self.last_evidence.insert(name.to_string(), ev);
        // Escrow in: re-seal under the target's keys; the escrow entry
        // now holds blobs only the migrated incarnation can open.
        let q = self.assembly.placement(name)?;
        let mut resealed = Vec::with_capacity(opened.len());
        for plaintext in &opened {
            resealed.push(self.assembly.substrates[q.substrate].seal(q.domain, plaintext)?);
        }
        if !resealed.is_empty() {
            self.sealed_escrow.insert(name.to_string(), resealed);
        }
        self.migration_counts
            .entry(name.to_string())
            .and_modify(|c| *c += 1)
            .or_insert(1);
        self.assembly.regrant(&self.app, name)?;
        Ok(())
    }

    /// Liveness summary. [`Health::Failed`] when an escalating component
    /// crashed or everything is down; [`Health::Degraded`] names the
    /// components currently down or quarantined.
    pub fn health(&self) -> Health {
        if self.escalated.is_some() {
            return Health::Failed;
        }
        let down: Vec<String> = self
            .states
            .iter()
            .filter(|(_, s)| !matches!(s, State::Up))
            .map(|(n, _)| n.clone())
            .collect();
        if down.is_empty() {
            Health::Healthy
        } else if down.len() == self.states.len() {
            Health::Failed
        } else {
            Health::Degraded(down)
        }
    }

    /// Restarts performed for a component so far.
    pub fn restarts(&self, name: &str) -> u32 {
        *self.restart_counts.get(name).unwrap_or(&0)
    }

    /// Whether a component exhausted its budget (or crashed under
    /// `Never`/`Escalate`) and is out of service for good.
    pub fn is_quarantined(&self, name: &str) -> bool {
        matches!(self.states.get(name), Some(State::Quarantined))
    }

    /// The measurement recorded at composition time.
    pub fn baseline_measurement(&self, name: &str) -> Option<Digest> {
        self.baselines.get(name).copied()
    }

    /// The attestation evidence recorded at composition time (`None`
    /// when the hosting substrate cannot attest).
    pub fn baseline_evidence(&self, name: &str) -> Option<&AttestationEvidence> {
        self.baseline_evidence.get(name).and_then(|e| e.as_ref())
    }

    /// The most recent attestation evidence (updated on every
    /// successful restart).
    pub fn evidence(&self, name: &str) -> Option<&AttestationEvidence> {
        self.last_evidence.get(name).and_then(|e| e.as_ref())
    }

    /// One supervision health tick. With a registry attached, sweeps
    /// every *running* component: an instance whose measurement digest
    /// has been revoked, or whose web-of-trust score has dropped below
    /// the registry's admission threshold (a distrust wave landed since
    /// the spawn), is destroyed and quarantined on the spot — the
    /// revocation-to-quarantine latency is therefore bounded by the
    /// tick cadence, and demotion burns zero restart budget. Returns
    /// the names quarantined by this tick.
    pub fn tick(&mut self) -> Vec<String> {
        self.ticks += 1;
        if self.registry.is_none() {
            return Vec::new();
        }
        let up: Vec<String> = self
            .states
            .iter()
            .filter(|(_, s)| matches!(s, State::Up))
            .map(|(n, _)| n.clone())
            .collect();
        let mut quarantined = Vec::new();
        for name in up {
            let Ok(digest) = self.assembly.measurement(&name) else {
                continue;
            };
            let revoked = self.registry.as_ref().is_some_and(|r| r.is_revoked(digest));
            let demoted = !revoked
                && self
                    .registry
                    .as_mut()
                    .is_some_and(|r| r.wot_demoted(digest));
            if revoked || demoted {
                if let Ok(p) = self.assembly.placement(&name) {
                    let _ = self.assembly.substrates[p.substrate].destroy(p.domain);
                }
                self.quarantine(&name);
                quarantined.push(name);
            }
        }
        quarantined
    }

    /// Health ticks performed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The attached registry, when built with
    /// [`Supervisor::new_admitted`].
    pub fn registry(&self) -> Option<&Registry> {
        self.registry.as_ref()
    }

    /// Mutable access to the attached registry (publishing updates,
    /// revoking digests mid-run).
    pub fn registry_mut(&mut self) -> Option<&mut Registry> {
        self.registry.as_mut()
    }

    /// The supervised assembly (read side).
    pub fn assembly(&self) -> &Assembly {
        &self.assembly
    }

    /// The supervised assembly (write side — fault-plan installation,
    /// attack injection in experiments).
    pub fn assembly_mut(&mut self) -> &mut Assembly {
        &mut self.assembly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ComponentManifest;
    use lateral_substrate::component::Component;
    use lateral_substrate::fault::{FaultPlan, FaultSpec};
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::testkit::Echo;

    fn factory() -> Box<dyn ComponentFactory> {
        Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
    }

    fn pool() -> Vec<Box<dyn Substrate>> {
        vec![Box::new(SoftwareSubstrate::new("sup-test"))]
    }

    fn two_workers(policy: RestartPolicy) -> AppManifest {
        AppManifest::new(
            "supervised",
            vec![
                ComponentManifest::new("worker").restart(policy),
                ComponentManifest::new("sidekick"),
            ],
        )
    }

    fn install(sup: &mut Supervisor, plan: FaultPlan) {
        sup.assembly_mut()
            .substrate_mut(0)
            .fabric_mut_ref()
            .expect("software routes through the fabric")
            .install_fault_plan(plan);
    }

    /// Drives `worker` + `sidekick` until the worker answers again,
    /// returning (lost calls, answered).
    fn drive(sup: &mut Supervisor, rounds: usize) -> (u32, u32) {
        let (mut lost, mut served) = (0, 0);
        for _ in 0..rounds {
            match sup.call("worker", b"ping") {
                Ok(_) => served += 1,
                Err(CoreError::Unavailable(_)) => lost += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            // Sidekick traffic keeps the logical clock moving through
            // the backoff window.
            sup.call("sidekick", b"tick").unwrap();
        }
        (lost, served)
    }

    #[test]
    fn transient_crash_restarts_within_budget() {
        let app = two_workers(RestartPolicy::Restart {
            max_restarts: 3,
            backoff_base: 20,
        });
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 2)),
        );
        let baseline = sup.baseline_measurement("worker").unwrap();
        let (lost, served) = drive(&mut sup, 40);
        assert!(lost >= 1, "the injected crash loses at least one call");
        assert!(served >= 30, "service resumed after the bounded window");
        assert_eq!(sup.restarts("worker"), 1);
        assert_eq!(sup.health(), Health::Healthy);
        assert_eq!(sup.assembly().measurement("worker").unwrap(), baseline);
    }

    #[test]
    fn permanent_crash_exhausts_budget_and_quarantines() {
        let app = two_workers(RestartPolicy::Restart {
            max_restarts: 2,
            backoff_base: 10,
        });
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 1).permanent()),
        );
        let (_, served) = drive(&mut sup, 60);
        assert_eq!(served, 0, "a permanent fault never recovers");
        assert!(sup.is_quarantined("worker"));
        assert_eq!(sup.restarts("worker"), 2, "budget fully spent first");
        assert_eq!(sup.health(), Health::Degraded(vec!["worker".into()]));
        // The rest of the assembly keeps serving.
        assert_eq!(sup.call("sidekick", b"x").unwrap(), b"x");
    }

    #[test]
    fn quarantine_counter_increments_exactly_once_per_exhaustion() {
        let app = two_workers(RestartPolicy::Restart {
            max_restarts: 2,
            backoff_base: 10,
        });
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 1).permanent()),
        );
        let quarantines = |sup: &mut Supervisor| {
            sup.assembly_mut()
                .substrate_mut(0)
                .telemetry_mut_ref()
                .unwrap()
                .metrics_mut()
                .counter("supervisor.quarantines")
        };
        assert_eq!(quarantines(&mut sup), 0);
        let _ = drive(&mut sup, 60);
        assert!(sup.is_quarantined("worker"));
        assert_eq!(
            quarantines(&mut sup),
            1,
            "one budget exhaustion = one count"
        );
        // Hitting the quarantined component again never re-counts.
        for _ in 0..5 {
            let _ = sup.call("worker", b"x");
        }
        assert_eq!(quarantines(&mut sup), 1);
    }

    #[test]
    fn never_policy_quarantines_on_first_crash() {
        let app = two_workers(RestartPolicy::Never);
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 1)),
        );
        assert!(matches!(
            sup.call("worker", b"x"),
            Err(CoreError::Unavailable(_))
        ));
        assert!(sup.is_quarantined("worker"));
        assert_eq!(sup.restarts("worker"), 0);
    }

    #[test]
    fn escalate_policy_fails_the_assembly() {
        let app = two_workers(RestartPolicy::Escalate);
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 1)),
        );
        let _ = sup.call("worker", b"x");
        assert_eq!(sup.health(), Health::Failed);
        assert!(matches!(
            sup.call("sidekick", b"x"),
            Err(CoreError::Unavailable(_))
        ));
    }

    #[test]
    fn spawn_fault_during_restart_consumes_budget_then_recovers() {
        let app = two_workers(RestartPolicy::Restart {
            max_restarts: 3,
            backoff_base: 10,
        });
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        // Crash once; the first respawn attempt also fails.
        install(
            &mut sup,
            FaultPlan::new()
                .with(FaultSpec::crash("worker", 1))
                .with(FaultSpec::fail_spawn("worker", 1)),
        );
        let (lost, served) = drive(&mut sup, 60);
        assert!(lost >= 2, "crash + failed restart both lose calls");
        assert!(served > 0, "second restart attempt succeeds");
        assert_eq!(sup.restarts("worker"), 2);
        assert_eq!(sup.health(), Health::Healthy);
    }

    mod admitted {
        use super::*;
        use lateral_crypto::sign::SigningKey;
        use lateral_registry::{measurement_of, ManifestDraft};

        /// A registry trusting one root, holding every component of the
        /// two-workers app under its manifest-default image bytes.
        fn registry() -> Registry {
            let root = SigningKey::from_seed(b"supervisor admission root");
            let mut reg = Registry::new("sup-admission");
            reg.trust_root(&root.verifying_key());
            for (name, image) in [("worker", b"worker".as_slice()), ("sidekick", b"sidekick")] {
                reg.publish(image, ManifestDraft::new(name, image).sign(&root, None))
                    .unwrap();
            }
            reg
        }

        fn admitted_sup(policy: RestartPolicy) -> Supervisor {
            Supervisor::new_admitted(two_workers(policy), pool(), factory(), registry()).unwrap()
        }

        #[test]
        fn revoked_running_instance_quarantined_on_next_tick() {
            let mut sup = admitted_sup(RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 10,
            });
            assert_eq!(sup.call("worker", b"ping").unwrap(), b"ping");
            assert_eq!(sup.tick(), Vec::<String>::new(), "nothing revoked yet");
            sup.registry_mut()
                .unwrap()
                .revoke(measurement_of(b"worker"), "supply-chain incident")
                .unwrap();
            // Still up until the sweep runs...
            assert!(!sup.is_quarantined("worker"));
            // ...and quarantined by the very next tick.
            assert_eq!(sup.tick(), vec!["worker".to_string()]);
            assert!(sup.is_quarantined("worker"));
            assert_eq!(sup.ticks(), 2);
            assert!(matches!(
                sup.call("worker", b"ping"),
                Err(CoreError::Unavailable(_))
            ));
            // The rest of the assembly keeps serving.
            assert_eq!(sup.call("sidekick", b"x").unwrap(), b"x");
            assert_eq!(sup.health(), Health::Degraded(vec!["worker".into()]));
        }

        #[test]
        fn wot_demoted_instance_quarantined_on_next_tick_without_restarts() {
            use lateral_wot::{Proof, Rating, ReviewProof, TrustGraph};
            let mut reg = registry();
            let reviewer = SigningKey::from_seed(b"fleet reviewer");
            let mut graph = TrustGraph::new();
            graph.seed_root(&reviewer.verifying_key().to_bytes());
            reg.attach_wot(graph, 100);
            // Both images need clearing reviews before admission.
            for image in [b"worker".as_slice(), b"sidekick"] {
                let review = ReviewProof::issue(&reviewer, measurement_of(image), Rating::High, 1);
                reg.ingest_proof(&Proof::Review(review)).unwrap();
            }
            let mut sup = Supervisor::new_admitted(
                two_workers(RestartPolicy::Restart {
                    max_restarts: 3,
                    backoff_base: 10,
                }),
                pool(),
                factory(),
                reg,
            )
            .unwrap();
            assert_eq!(sup.call("worker", b"ping").unwrap(), b"ping");
            assert_eq!(sup.tick(), Vec::<String>::new(), "scores still clear");
            // Distrust wave: the root reviewer's later review supersedes
            // its earlier `high`, dragging the subject score negative.
            let wave =
                ReviewProof::issue(&reviewer, measurement_of(b"worker"), Rating::Distrust, 2);
            sup.registry_mut()
                .unwrap()
                .ingest_proof(&Proof::Review(wave))
                .unwrap();
            assert!(
                !sup.is_quarantined("worker"),
                "demotion waits for the sweep"
            );
            assert_eq!(sup.tick(), vec!["worker".to_string()]);
            assert!(sup.is_quarantined("worker"));
            assert_eq!(
                sup.restarts("worker"),
                0,
                "demotion burns zero restart budget"
            );
            // Re-ticking never re-quarantines, and the rest keeps serving.
            assert_eq!(sup.tick(), Vec::<String>::new());
            assert_eq!(sup.call("sidekick", b"x").unwrap(), b"x");
            assert_eq!(sup.health(), Health::Degraded(vec!["worker".into()]));
        }

        #[test]
        fn respawn_of_revoked_image_refused() {
            let mut sup = admitted_sup(RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 10,
            });
            install(
                &mut sup,
                FaultPlan::new().with(FaultSpec::crash("worker", 2)),
            );
            // Crash the worker, then revoke its image while it is down.
            let _ = sup.call("worker", b"ping");
            let _ = sup.call("worker", b"boom");
            sup.registry_mut()
                .unwrap()
                .revoke(measurement_of(b"worker"), "revoked while down")
                .unwrap();
            let (_, served) = drive(&mut sup, 40);
            assert_eq!(served, 0, "a revoked image must never respawn");
            assert!(sup.is_quarantined("worker"));
            assert_eq!(sup.restarts("worker"), 0);
        }

        #[test]
        fn certified_image_update_adopted_on_restart() {
            let mut sup = admitted_sup(RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 10,
            });
            let old_baseline = sup.baseline_measurement("worker").unwrap();
            // Publish worker v2 — a *certified* update — then crash v1.
            let root = SigningKey::from_seed(b"supervisor admission root");
            sup.registry_mut()
                .unwrap()
                .publish(
                    b"worker v2",
                    ManifestDraft::new("worker", b"worker v2").sign(&root, None),
                )
                .unwrap();
            install(
                &mut sup,
                FaultPlan::new().with(FaultSpec::crash("worker", 2)),
            );
            let (lost, served) = drive(&mut sup, 40);
            assert!(lost >= 1 && served > 0, "lost={lost} served={served}");
            // The respawn re-resolved: v2 is running and is the new
            // baseline (the old image would have failed the measurement
            // check instead).
            let new_baseline = sup.baseline_measurement("worker").unwrap();
            assert_ne!(new_baseline, old_baseline);
            assert_eq!(new_baseline, measurement_of(b"worker v2"));
            assert_eq!(sup.assembly().measurement("worker").unwrap(), new_baseline);
        }

        #[test]
        fn uncertified_image_refused_at_construction() {
            let stranger = SigningKey::from_seed(b"stranger");
            let mut reg = registry();
            reg.publish(
                b"rogue",
                ManifestDraft::new("rogue", b"rogue").sign(&stranger, None),
            )
            .unwrap();
            let app = AppManifest::new("rogue-app", vec![ComponentManifest::new("rogue")]);
            let err = Supervisor::new_admitted(app, pool(), factory(), reg).unwrap_err();
            assert!(matches!(err, CoreError::AdmissionRefused { .. }), "{err}");
        }
    }

    mod migration {
        use super::*;

        fn wired_app() -> AppManifest {
            AppManifest::new(
                "migratable",
                vec![
                    ComponentManifest::new("caller").channel("ask", "worker", 9),
                    ComponentManifest::new("worker"),
                ],
            )
        }

        fn two_pool() -> Vec<Box<dyn Substrate>> {
            vec![
                Box::new(SoftwareSubstrate::new("pool-a")),
                Box::new(SoftwareSubstrate::new("pool-b")),
            ]
        }

        #[test]
        fn manual_migration_preserves_state_channels_and_baseline() {
            let mut sup = Supervisor::new(wired_app(), two_pool(), factory()).unwrap();
            assert_eq!(sup.assembly().placement("worker").unwrap().substrate, 0);
            let baseline = sup.baseline_measurement("worker").unwrap();
            // Seal state on the source and escrow it.
            let p = sup.assembly().placement("worker").unwrap();
            let blob = sup
                .assembly_mut()
                .substrate_mut(p.substrate)
                .seal(p.domain, b"worker state")
                .unwrap();
            sup.register_sealed("worker", blob);

            sup.migrate_component("worker", 1).unwrap();

            assert_eq!(sup.assembly().placement("worker").unwrap().substrate, 1);
            assert_eq!(sup.migrations("worker"), 1);
            assert_eq!(sup.baseline_measurement("worker").unwrap(), baseline);
            assert_eq!(sup.assembly().measurement("worker").unwrap(), baseline);
            // The escrow was re-sealed: the target incarnation opens it
            // byte-identically.
            let q = sup.assembly().placement("worker").unwrap();
            let resealed = sup.sealed_blobs("worker")[0].clone();
            assert_eq!(
                sup.assembly_mut()
                    .substrate_mut(q.substrate)
                    .unseal(q.domain, &resealed)
                    .unwrap(),
                b"worker state"
            );
            // Declared channels were re-granted — and only declared ones.
            assert_eq!(
                sup.assembly_mut()
                    .call_channel("caller", "ask", b"hi")
                    .unwrap(),
                b"hi"
            );
            assert!(sup
                .assembly_mut()
                .call_channel("worker", "ask", b"x")
                .is_err());
            assert_eq!(sup.call("worker", b"direct").unwrap(), b"direct");
            // Metrics landed on the target substrate.
            let migrations = sup
                .assembly_mut()
                .substrate_mut(1)
                .telemetry_mut_ref()
                .unwrap()
                .metrics_mut()
                .counter("placement.migrations");
            assert_eq!(migrations, 1);
        }

        #[test]
        fn migration_to_current_placement_is_a_noop() {
            let mut sup = Supervisor::new(wired_app(), two_pool(), factory()).unwrap();
            sup.migrate_component("worker", 0).unwrap();
            assert_eq!(sup.migrations("worker"), 0);
            assert!(matches!(
                sup.migrate_component("worker", 7),
                Err(CoreError::NotFound(_))
            ));
        }

        #[test]
        fn optimize_over_balanced_pool_stays_put() {
            // Two identical software substrates price every candidate
            // equally: the plan must prefer the current placement over
            // churn, and apply_plan must be a no-op.
            let mut sup = Supervisor::new(wired_app(), two_pool(), factory()).unwrap();
            for _ in 0..8 {
                sup.assembly_mut()
                    .call_channel("caller", "ask", b"payload")
                    .unwrap();
            }
            let plan = sup.optimize().unwrap();
            assert_eq!(plan.move_count(), 0);
            assert!(plan.decision("worker").unwrap().calls >= 8);
            assert_eq!(sup.apply_plan(&plan).unwrap(), 0);
            let plans = sup
                .assembly_mut()
                .substrate_mut(0)
                .telemetry_mut_ref()
                .unwrap()
                .metrics_mut()
                .counter("placement.plans");
            assert_eq!(plans, 1);
        }
    }

    #[test]
    fn restarted_component_keeps_declared_channels_only() {
        let app = AppManifest::new(
            "wired",
            vec![
                ComponentManifest::new("caller").channel("ask", "worker", 9),
                ComponentManifest::new("worker").restartable(3, 10),
                ComponentManifest::new("sidekick"),
            ],
        );
        let mut sup = Supervisor::new(app, pool(), factory()).unwrap();
        assert_eq!(
            sup.assembly_mut()
                .call_channel("caller", "ask", b"hi")
                .unwrap(),
            b"hi"
        );
        install(
            &mut sup,
            FaultPlan::new().with(FaultSpec::crash("worker", 1)),
        );
        let _ = sup.call("worker", b"boom");
        // Drive the clock, then let the supervisor restart the worker.
        for _ in 0..20 {
            let _ = sup.call("sidekick", b"tick");
            let _ = sup.call("worker", b"ping");
        }
        assert_eq!(sup.health(), Health::Healthy);
        // The declared channel was re-granted onto the fresh domain.
        assert_eq!(
            sup.assembly_mut()
                .call_channel("caller", "ask", b"hi")
                .unwrap(),
            b"hi"
        );
        // And nothing undeclared appeared.
        assert!(sup
            .assembly_mut()
            .call_channel("sidekick", "ask", b"x")
            .is_err());
    }
}
