//! Security analysis over the channel graph — the tooling §IV calls for.
//!
//! *"Better tooling is needed to analyze security properties when
//! applications consist of many independently communicating services.
//! Especially, tools to uncover confused deputy problems are crucial."*
//!
//! Three analyses, all static over the [`AppManifest`]:
//!
//! * [`blast_radius`] — which components and assets an attacker reaches
//!   after compromising a given component (forward closure over declared
//!   channels plus everything co-located in the same domain). This is
//!   the number experiment E1 compares between the vertical and the
//!   horizontal design.
//! * [`asset_exposure`] / [`asset_tcb_loc`] — for each asset, the set of
//!   components whose compromise reaches it and the lines of code that
//!   must therefore be correct (the asset's TCB, experiment E7).
//! * [`confused_deputy_candidates`] — servers handling multiple clients
//!   whose badges do not distinguish them, or that hold assets while
//!   serving mixed trust classes.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::manifest::{AppManifest, Sensitivity, TrustClass};

/// The result of compromising one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlastRadius {
    /// The compromised component.
    pub start: String,
    /// Every component the attacker can invoke, transitively.
    pub reachable_components: BTreeSet<String>,
    /// Every asset in a reachable (or the compromised) component.
    pub reachable_assets: BTreeSet<String>,
    /// Reachable assets with `Secret` sensitivity.
    pub secret_assets: BTreeSet<String>,
}

impl BlastRadius {
    /// Fraction of the app's assets the attacker reaches (0.0–1.0).
    pub fn asset_fraction(&self, app: &AppManifest) -> f64 {
        let total: usize = app.components.iter().map(|c| c.assets.len()).sum();
        if total == 0 {
            0.0
        } else {
            self.reachable_assets.len() as f64 / total as f64
        }
    }
}

/// Computes the forward closure from `compromised` over declared
/// channels: everything it can invoke (and therefore feed attacker
/// input), plus the assets those components hold.
///
/// # Panics
///
/// Panics if `compromised` is not in the manifest (programming error in
/// the experiment harness).
pub fn blast_radius(app: &AppManifest, compromised: &str) -> BlastRadius {
    assert!(
        app.component(compromised).is_some(),
        "unknown component '{compromised}'"
    );
    let mut reachable = BTreeSet::new();
    let mut queue = VecDeque::new();
    queue.push_back(compromised.to_string());
    while let Some(current) = queue.pop_front() {
        if !reachable.insert(current.clone()) {
            continue;
        }
        if let Some(cm) = app.component(&current) {
            for ch in &cm.channels {
                if !reachable.contains(&ch.to) {
                    queue.push_back(ch.to.clone());
                }
            }
        }
    }
    let mut assets = BTreeSet::new();
    let mut secrets = BTreeSet::new();
    for name in &reachable {
        if let Some(cm) = app.component(name) {
            for a in &cm.assets {
                assets.insert(a.name.clone());
                if a.sensitivity == Sensitivity::Secret {
                    secrets.insert(a.name.clone());
                }
            }
        }
    }
    BlastRadius {
        start: compromised.to_string(),
        reachable_components: reachable,
        reachable_assets: assets,
        secret_assets: secrets,
    }
}

/// The exposure set of an asset: every component whose compromise
/// reaches the asset's holder (reverse reachability), including the
/// holder itself. Returns `None` for unknown assets.
pub fn asset_exposure(app: &AppManifest, asset: &str) -> Option<BTreeSet<String>> {
    let holder = app
        .components
        .iter()
        .find(|c| c.assets.iter().any(|a| a.name == asset))?
        .name
        .clone();
    let exposure: BTreeSet<String> = app
        .components
        .iter()
        .filter(|c| {
            blast_radius(app, &c.name)
                .reachable_components
                .contains(&holder)
        })
        .map(|c| c.name.clone())
        .collect();
    Some(exposure)
}

/// Lines of code that must be correct for `asset` to stay safe: the LoC
/// of every component in the exposure set plus `substrate_tcb_loc` (the
/// isolation substrate underneath, which is always trusted). Returns
/// `None` for unknown assets.
pub fn asset_tcb_loc(app: &AppManifest, asset: &str, substrate_tcb_loc: u64) -> Option<u64> {
    let exposure = asset_exposure(app, asset)?;
    let app_loc: u64 = app
        .components
        .iter()
        .filter(|c| exposure.contains(&c.name))
        .map(|c| c.loc)
        .sum();
    Some(app_loc + substrate_tcb_loc)
}

/// Why a component was flagged as a confused-deputy candidate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeputyRisk {
    /// Two inbound channels carry the *same badge*: the server cannot
    /// tell those clients apart — a definite bug.
    CollidingBadges {
        /// The badge value shared by multiple clients.
        badge: u64,
        /// The clients that share it.
        clients: Vec<String>,
    },
    /// The server holds assets and serves clients of mixed trust
    /// classes; it must demultiplex carefully (warning).
    MixedTrustClients {
        /// Trusted callers.
        trusted: Vec<String>,
        /// Legacy callers.
        legacy: Vec<String>,
    },
}

/// A flagged component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeputyWarning {
    /// The server at risk.
    pub component: String,
    /// The specific risk found.
    pub risk: DeputyRisk,
}

/// Scans the manifest for confused-deputy candidates.
pub fn confused_deputy_candidates(app: &AppManifest) -> Vec<DeputyWarning> {
    let mut warnings = Vec::new();
    let inbound = app.inbound();
    for cm in &app.components {
        let Some(callers) = inbound.get(cm.name.as_str()) else {
            continue;
        };
        if callers.len() < 2 {
            continue;
        }
        // Badge collisions.
        let mut by_badge: BTreeMap<u64, Vec<String>> = BTreeMap::new();
        for (caller, badge) in callers {
            by_badge.entry(*badge).or_default().push(caller.to_string());
        }
        for (badge, clients) in by_badge {
            if clients.len() > 1 {
                warnings.push(DeputyWarning {
                    component: cm.name.clone(),
                    risk: DeputyRisk::CollidingBadges { badge, clients },
                });
            }
        }
        // Mixed trust with assets.
        if !cm.assets.is_empty() {
            let (mut trusted, mut legacy) = (Vec::new(), Vec::new());
            for (caller, _) in callers {
                match app.component(caller).map(|c| c.trust) {
                    Some(TrustClass::Legacy) => legacy.push(caller.to_string()),
                    Some(TrustClass::Trusted) => trusted.push(caller.to_string()),
                    None => {}
                }
            }
            if !trusted.is_empty() && !legacy.is_empty() {
                warnings.push(DeputyWarning {
                    component: cm.name.clone(),
                    risk: DeputyRisk::MixedTrustClients { trusted, legacy },
                });
            }
        }
    }
    warnings
}

/// A cross-machine link: a component on one app/machine invoking an
/// exported component of another (what [`crate::remote`] implements at
/// runtime).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteLink {
    /// `(app name, component)` on the calling side.
    pub from: (String, String),
    /// `(app name, component)` on the serving side.
    pub to: (String, String),
}

impl RemoteLink {
    /// Creates a link.
    pub fn new(from_app: &str, from: &str, to_app: &str, to: &str) -> RemoteLink {
        RemoteLink {
            from: (from_app.to_string(), from.to_string()),
            to: (to_app.to_string(), to.to_string()),
        }
    }
}

/// Blast radius across a *distributed* system — the paper's
/// "distributed confidence domains across machine boundaries" (§III-C).
/// Components are qualified as `app/component`; remote links are extra
/// directed edges in the combined graph.
///
/// # Panics
///
/// Panics when `compromised` does not name a component of any app.
pub fn distributed_blast_radius(
    apps: &[&AppManifest],
    links: &[RemoteLink],
    compromised_app: &str,
    compromised: &str,
) -> BTreeSet<String> {
    let qualified = |app: &str, comp: &str| format!("{app}/{comp}");
    // Build the combined edge map.
    let mut edges: BTreeMap<String, Vec<String>> = BTreeMap::new();
    let mut known = BTreeSet::new();
    for app in apps {
        for c in &app.components {
            let me = qualified(&app.name, &c.name);
            known.insert(me.clone());
            for ch in &c.channels {
                edges
                    .entry(me.clone())
                    .or_default()
                    .push(qualified(&app.name, &ch.to));
            }
        }
    }
    for link in links {
        edges
            .entry(qualified(&link.from.0, &link.from.1))
            .or_default()
            .push(qualified(&link.to.0, &link.to.1));
    }
    let start = qualified(compromised_app, compromised);
    assert!(known.contains(&start), "unknown component '{start}'");
    let mut reachable = BTreeSet::new();
    let mut queue = VecDeque::from([start]);
    while let Some(cur) = queue.pop_front() {
        if !reachable.insert(cur.clone()) {
            continue;
        }
        for next in edges.get(&cur).into_iter().flatten() {
            if !reachable.contains(next) {
                queue.push_back(next.clone());
            }
        }
    }
    reachable
}

/// Renders the application's trust topology as Graphviz DOT — the
/// "map of communication relationships" of §III-A, for human review.
/// Legacy components are drawn as red boxes, trusted ones as green
/// ellipses; edges carry channel labels and badges; assets appear as
/// annotations on their holder.
pub fn to_dot(app: &AppManifest) -> String {
    let mut out = String::new();
    out.push_str(&format!("digraph \"{}\" {{\n", app.name));
    out.push_str("  rankdir=LR;\n");
    for c in &app.components {
        let (shape, color) = match c.trust {
            TrustClass::Trusted => ("ellipse", "darkgreen"),
            TrustClass::Legacy => ("box", "red"),
        };
        let assets: Vec<String> = c
            .assets
            .iter()
            .map(|a| format!("{} ({:?})", a.name, a.sensitivity))
            .collect();
        let label = if assets.is_empty() {
            format!("{}\\n{} LoC", c.name, c.loc)
        } else {
            format!("{}\\n{} LoC\\n[{}]", c.name, c.loc, assets.join(", "))
        };
        out.push_str(&format!(
            "  \"{}\" [shape={shape}, color={color}, label=\"{label}\"];\n",
            c.name
        ));
    }
    for c in &app.components {
        for ch in &c.channels {
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{} (badge {})\"];\n",
                c.name, ch.to, ch.label, ch.badge
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Summary table row for the E1/E7 reports: one row per compromised
/// component.
#[derive(Clone, Debug)]
pub struct ContainmentRow {
    /// The compromised component.
    pub compromised: String,
    /// Components reached.
    pub components_reached: usize,
    /// Assets reached.
    pub assets_reached: usize,
    /// Secret assets reached.
    pub secrets_reached: usize,
    /// Fraction of all assets reached.
    pub asset_fraction: f64,
}

/// Computes the containment table: the blast radius of compromising each
/// component in turn.
pub fn containment_table(app: &AppManifest) -> Vec<ContainmentRow> {
    app.components
        .iter()
        .map(|c| {
            let br = blast_radius(app, &c.name);
            ContainmentRow {
                compromised: c.name.clone(),
                components_reached: br.reachable_components.len(),
                assets_reached: br.reachable_assets.len(),
                secrets_reached: br.secret_assets.len(),
                asset_fraction: br.asset_fraction(app),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ComponentManifest;

    /// ui → {renderer, store}; store holds the archive; tls holds keys
    /// and is reached only from ui.
    fn horizontal() -> AppManifest {
        AppManifest::new(
            "mail-horizontal",
            vec![
                ComponentManifest::new("ui")
                    .channel("render", "renderer", 1)
                    .channel("store", "store", 2)
                    .channel("net", "tls", 3),
                ComponentManifest::new("renderer").loc(30_000),
                ComponentManifest::new("store").asset("mail-archive", Sensitivity::Personal),
                ComponentManifest::new("tls").asset("tls-keys", Sensitivity::Secret),
            ],
        )
    }

    fn vertical() -> AppManifest {
        AppManifest::new(
            "mail-vertical",
            vec![ComponentManifest::new("monolith")
                .loc(100_000)
                .legacy()
                .asset("mail-archive", Sensitivity::Personal)
                .asset("tls-keys", Sensitivity::Secret)],
        )
    }

    #[test]
    fn renderer_compromise_reaches_nothing() {
        let app = horizontal();
        let br = blast_radius(&app, "renderer");
        assert_eq!(br.reachable_components.len(), 1); // itself
        assert!(br.reachable_assets.is_empty());
        assert_eq!(br.asset_fraction(&app), 0.0);
    }

    #[test]
    fn ui_compromise_reaches_everything_it_may_call() {
        let app = horizontal();
        let br = blast_radius(&app, "ui");
        assert_eq!(br.reachable_components.len(), 4);
        assert_eq!(br.reachable_assets.len(), 2);
        assert_eq!(br.secret_assets.len(), 1);
    }

    #[test]
    fn vertical_compromise_reaches_all_assets() {
        let app = vertical();
        let br = blast_radius(&app, "monolith");
        assert_eq!(br.asset_fraction(&app), 1.0);
        assert!(br.secret_assets.contains("tls-keys"));
    }

    #[test]
    fn asset_exposure_follows_reverse_reachability() {
        let app = horizontal();
        let exposure = asset_exposure(&app, "tls-keys").unwrap();
        // tls itself and ui (which can call tls); renderer/store cannot.
        assert!(exposure.contains("tls"));
        assert!(exposure.contains("ui"));
        assert!(!exposure.contains("renderer"));
        assert!(!exposure.contains("store"));
    }

    #[test]
    fn asset_tcb_excludes_unreachable_code() {
        let app = horizontal();
        // tls-keys TCB: ui (1000) + tls (1000) + substrate — the 30k
        // renderer is NOT in the TCB.
        assert_eq!(asset_tcb_loc(&app, "tls-keys", 10_000), Some(12_000));
        // Vertical: everything is in the TCB.
        let v = vertical();
        assert_eq!(asset_tcb_loc(&v, "tls-keys", 10_000), Some(110_000));
    }

    #[test]
    fn unknown_asset_is_none() {
        assert!(asset_exposure(&horizontal(), "ghost").is_none());
        assert!(asset_tcb_loc(&horizontal(), "ghost", 0).is_none());
    }

    #[test]
    fn colliding_badges_flagged() {
        let app = AppManifest::new(
            "d",
            vec![
                ComponentManifest::new("a").channel("s", "server", 7),
                ComponentManifest::new("b").channel("s", "server", 7),
                ComponentManifest::new("server"),
            ],
        );
        let warnings = confused_deputy_candidates(&app);
        assert_eq!(warnings.len(), 1);
        assert!(matches!(
            &warnings[0].risk,
            DeputyRisk::CollidingBadges { badge: 7, clients } if clients.len() == 2
        ));
    }

    #[test]
    fn distinct_badges_not_flagged() {
        let app = AppManifest::new(
            "d",
            vec![
                ComponentManifest::new("a").channel("s", "server", 1),
                ComponentManifest::new("b").channel("s", "server", 2),
                ComponentManifest::new("server"),
            ],
        );
        assert!(confused_deputy_candidates(&app).is_empty());
    }

    #[test]
    fn mixed_trust_with_assets_flagged() {
        let app = AppManifest::new(
            "d",
            vec![
                ComponentManifest::new("trusted-ui").channel("s", "store", 1),
                ComponentManifest::new("android")
                    .legacy()
                    .channel("s", "store", 2),
                ComponentManifest::new("store").asset("db", Sensitivity::Personal),
            ],
        );
        let warnings = confused_deputy_candidates(&app);
        assert!(warnings
            .iter()
            .any(|w| matches!(&w.risk, DeputyRisk::MixedTrustClients { .. })));
    }

    #[test]
    fn containment_table_covers_all_components() {
        let app = horizontal();
        let table = containment_table(&app);
        assert_eq!(table.len(), 4);
        let renderer = table.iter().find(|r| r.compromised == "renderer").unwrap();
        assert_eq!(renderer.assets_reached, 0);
        let ui = table.iter().find(|r| r.compromised == "ui").unwrap();
        assert_eq!(ui.assets_reached, 2);
    }

    #[test]
    fn distributed_blast_radius_crosses_machines_only_over_links() {
        // Meter appliance: android → gateway; meter-agent → (remote).
        let appliance = AppManifest::new(
            "appliance",
            vec![
                ComponentManifest::new("android")
                    .legacy()
                    .channel("net", "gateway", 1),
                ComponentManifest::new("gateway"),
                ComponentManifest::new("meter-agent"),
            ],
        );
        // Utility: frontend → db.
        let utility = AppManifest::new(
            "utility",
            vec![
                ComponentManifest::new("frontend").channel("store", "db", 1),
                ComponentManifest::new("db").asset("billing-db", Sensitivity::Personal),
            ],
        );
        let links = [RemoteLink::new(
            "appliance",
            "meter-agent",
            "utility",
            "frontend",
        )];

        // The meter agent reaches the utility frontend and its db.
        let r =
            distributed_blast_radius(&[&appliance, &utility], &links, "appliance", "meter-agent");
        assert!(r.contains("utility/frontend"));
        assert!(r.contains("utility/db"));

        // The compromised Android does NOT: its only channel is the
        // gateway — no remote link, no path. Confidence stays domained.
        let r = distributed_blast_radius(&[&appliance, &utility], &links, "appliance", "android");
        assert_eq!(
            r,
            ["appliance/android", "appliance/gateway"]
                .into_iter()
                .map(String::from)
                .collect()
        );
    }

    #[test]
    fn dot_export_names_all_nodes_and_edges() {
        let app = horizontal();
        let dot = to_dot(&app);
        assert!(dot.starts_with("digraph"));
        for c in &app.components {
            assert!(dot.contains(&format!("\"{}\"", c.name)), "{}", c.name);
        }
        assert!(dot.contains("\"ui\" -> \"tls\""));
        assert!(dot.contains("badge 3"));
        assert!(dot.contains("tls-keys (Secret)"));
        // The legacy baseline renders red boxes.
        let vdot = to_dot(&vertical());
        assert!(vdot.contains("shape=box, color=red"));
    }

    #[test]
    fn cycles_terminate() {
        let app = AppManifest::new(
            "cyclic",
            vec![
                ComponentManifest::new("a").channel("next", "b", 1),
                ComponentManifest::new("b").channel("next", "a", 1),
            ],
        );
        let br = blast_radius(&app, "a");
        assert_eq!(br.reachable_components.len(), 2);
    }
}
