//! Telemetry-driven placement optimization: score where each component
//! *should* run, from where its ticks *actually* go.
//!
//! The composer's initial placement is security-first: every component
//! lands on the smallest-TCB substrate that defends its required
//! attacker models ([`crate::composer::compose`]). That deliberately
//! ignores cost — and the paper's §III-A asks for placement to be a
//! *choice*, not an accident. This module closes the loop with
//! observability:
//!
//! 1. the fabric's retained trace folds into a
//!    [`CrossingProfile`](lateral_telemetry::profile::CrossingProfile)
//!    — per-edge calls, bytes, and tick histograms;
//! 2. every backend's [`BackendPolicy`](lateral_substrate::fabric::BackendPolicy)
//!    exposes its pricing as data
//!    ([`CrossingCostModel`](lateral_substrate::fabric::CrossingCostModel));
//! 3. [`plan_placement`] re-prices each component's observed traffic on
//!    every pool candidate and picks the cheapest substrate **among
//!    those that still defend the component's required attacker
//!    models** — the manifest's isolation envelope is a hard
//!    constraint, never traded for ticks.
//!
//! Scoring prices each component's incident edges under a
//! **co-location assumption**: the counterpart is assumed to sit on the
//! same candidate substrate, so an edge is priced as `calls` ordinary
//! trusted-to-trusted invokes carrying the observed bytes. This makes
//! per-component scores independent (no combinatorial search) and is
//! exact whenever the whole assembly moves together — the common case
//! for the pool shapes in-tree.
//!
//! The resulting [`PlacementPlan`] is plain data with the same strict,
//! canonical text codec discipline as the manifest: all-or-nothing
//! decode, canonical integers, ordered entries, trailing garbage
//! rejected. Two digests summarize it:
//!
//! * [`PlacementPlan::digest`] — the full plan (costs included), stable
//!   across runs on the *same* pool;
//! * [`PlacementPlan::decision_digest`] — only the backend-invariant
//!   decision trace (names, observed traffic volumes, per-candidate
//!   eligibility verdicts, and that the choice is cost-minimal), which
//!   must come out identical no matter which backend generated the
//!   profile — the E17 gate.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use lateral_crypto::Digest;
use lateral_substrate::fabric::DomainKind;
use lateral_telemetry::profile::CrossingProfile;

use crate::composer::Assembly;
use crate::manifest::AppManifest;
use crate::CoreError;

/// Domain separator for [`PlacementPlan::digest`].
const PLAN_DOMAIN: &[u8] = b"lateral.core.placement-plan";

/// Domain separator for [`PlacementPlan::decision_digest`].
const DECISION_DOMAIN: &[u8] = b"lateral.core.placement-decisions";

/// Header line opening every encoded plan.
const PLAN_HEADER: &str = "placement-plan v1";

/// Errors from the plan codec.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanCodecError(String);

impl fmt::Display for PlanCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed placement-plan: {}", self.0)
    }
}

impl Error for PlanCodecError {}

/// One pool substrate's score for one component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CandidateScore {
    /// The candidate's profile name (e.g. `"trustzone"`).
    pub backend: String,
    /// Whether the candidate defends the component's required attacker
    /// models — an ineligible candidate is never chosen, no matter how
    /// cheap.
    pub eligible: bool,
    /// Predicted crossing ticks for the component's observed traffic,
    /// re-priced on this candidate's cost model (co-location
    /// assumption).
    pub cost: u64,
}

/// The optimizer's verdict for one component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ComponentDecision {
    /// Component name.
    pub component: String,
    /// Calls observed on edges incident to the component.
    pub calls: u64,
    /// Payload bytes observed on edges incident to the component.
    pub bytes: u64,
    /// Pool index the component currently occupies.
    pub current: usize,
    /// Pool index the optimizer chose (equal to `current` for a stay).
    pub chosen: usize,
    /// Every pool candidate's score, in pool order.
    pub candidates: Vec<CandidateScore>,
}

impl ComponentDecision {
    /// Whether this decision moves the component.
    #[must_use]
    pub fn is_move(&self) -> bool {
        self.chosen != self.current
    }

    /// The predicted tick saving of applying this decision.
    #[must_use]
    pub fn saving(&self) -> u64 {
        self.candidates[self.current]
            .cost
            .saturating_sub(self.candidates[self.chosen].cost)
    }
}

/// A deterministic placement plan: one decision per placed component,
/// in component-name order. See the module docs for the codec and
/// digest contracts.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct PlacementPlan {
    decisions: Vec<ComponentDecision>,
}

impl PlacementPlan {
    /// All decisions, in component-name order.
    pub fn decisions(&self) -> impl Iterator<Item = &ComponentDecision> {
        self.decisions.iter()
    }

    /// The decisions that move their component.
    pub fn moves(&self) -> impl Iterator<Item = &ComponentDecision> {
        self.decisions.iter().filter(|d| d.is_move())
    }

    /// Number of components the plan migrates.
    #[must_use]
    pub fn move_count(&self) -> usize {
        self.moves().count()
    }

    /// Total predicted tick saving across all decisions.
    #[must_use]
    pub fn predicted_saving(&self) -> u64 {
        self.decisions.iter().map(ComponentDecision::saving).sum()
    }

    /// The decision for one component, if placed.
    #[must_use]
    pub fn decision(&self, component: &str) -> Option<&ComponentDecision> {
        self.decisions.iter().find(|d| d.component == component)
    }

    /// Canonical text form:
    ///
    /// ```text
    /// placement-plan v1
    /// component <name> calls <n> bytes <b> current <i> chosen <j>
    /// candidate <idx> <backend> eligible <0|1> cost <c>
    /// ```
    ///
    /// Components in name order, each followed by its candidates in
    /// pool order. [`PlacementPlan::parse`] accepts exactly this form.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{PLAN_HEADER}");
        for d in &self.decisions {
            let _ = writeln!(
                out,
                "component {} calls {} bytes {} current {} chosen {}",
                d.component, d.calls, d.bytes, d.current, d.chosen,
            );
            for (idx, c) in d.candidates.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "candidate {idx} {} eligible {} cost {}",
                    c.backend,
                    u64::from(c.eligible),
                    c.cost,
                );
            }
        }
        out
    }

    /// Strict decoder for [`PlacementPlan::to_text`]. All-or-nothing: a
    /// missing header, an unknown directive, a malformed or
    /// non-canonical integer, components out of name order or
    /// duplicated, candidate indexes out of sequence, a `current` or
    /// `chosen` index outside the candidate range, a component with no
    /// candidates, or any trailing garbage rejects the whole text.
    /// `parse(p.to_text())` reproduces `p` exactly.
    ///
    /// # Errors
    ///
    /// [`PlanCodecError`] on any malformation.
    pub fn parse(text: &str) -> Result<PlacementPlan, PlanCodecError> {
        let bad =
            |line_no: usize, why: &str| PlanCodecError(format!("line {}: {why}", line_no + 1));
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, first)) if first == PLAN_HEADER => {}
            _ => return Err(PlanCodecError("missing header".into())),
        }
        let mut decisions: Vec<ComponentDecision> = Vec::new();
        let close = |d: &ComponentDecision| -> Result<(), PlanCodecError> {
            if d.candidates.is_empty() {
                return Err(PlanCodecError(format!(
                    "component '{}' has no candidates",
                    d.component
                )));
            }
            if d.current >= d.candidates.len() || d.chosen >= d.candidates.len() {
                return Err(PlanCodecError(format!(
                    "component '{}' indexes outside the candidate range",
                    d.component
                )));
            }
            Ok(())
        };
        for (no, line) in lines {
            let words: Vec<&str> = line.split(' ').collect();
            let int = |label_idx: usize, label: &str| -> Result<u64, PlanCodecError> {
                if words[label_idx] != label {
                    return Err(bad(no, &format!("expected '{label}'")));
                }
                parse_u64(words[label_idx + 1])
                    .ok_or_else(|| bad(no, &format!("malformed {label}")))
            };
            match words[0] {
                "component" if words.len() == 10 => {
                    if let Some(prev) = decisions.last() {
                        close(prev)?;
                    }
                    let name = words[1];
                    if name.is_empty() {
                        return Err(bad(no, "empty component name"));
                    }
                    if decisions
                        .last()
                        .is_some_and(|prev| prev.component.as_str() >= name)
                    {
                        return Err(bad(no, "components out of canonical order"));
                    }
                    let calls = int(2, "calls")?;
                    let bytes = int(4, "bytes")?;
                    let current = usize::try_from(int(6, "current")?)
                        .map_err(|_| bad(no, "current overflows"))?;
                    let chosen = usize::try_from(int(8, "chosen")?)
                        .map_err(|_| bad(no, "chosen overflows"))?;
                    decisions.push(ComponentDecision {
                        component: name.to_string(),
                        calls,
                        bytes,
                        current,
                        chosen,
                        candidates: Vec::new(),
                    });
                }
                "candidate" if words.len() == 7 => {
                    let d = decisions
                        .last_mut()
                        .ok_or_else(|| bad(no, "candidate before any component"))?;
                    let idx = parse_u64(words[1]).ok_or_else(|| bad(no, "malformed index"))?;
                    if idx != d.candidates.len() as u64 {
                        return Err(bad(no, "candidate index out of sequence"));
                    }
                    let backend = words[2];
                    if backend.is_empty() {
                        return Err(bad(no, "empty backend name"));
                    }
                    let eligible = match int(3, "eligible")? {
                        0 => false,
                        1 => true,
                        _ => return Err(bad(no, "eligible must be 0 or 1")),
                    };
                    let cost = int(5, "cost")?;
                    d.candidates.push(CandidateScore {
                        backend: backend.to_string(),
                        eligible,
                        cost,
                    });
                }
                _ => return Err(bad(no, "expected a 'component' or 'candidate' line")),
            }
        }
        if let Some(last) = decisions.last() {
            close(last)?;
        }
        Ok(PlacementPlan { decisions })
    }

    /// Canonical digest of the full plan (costs included) under a
    /// plan-specific domain separator. Identical across two runs of the
    /// same traffic on the same pool.
    #[must_use]
    pub fn digest(&self) -> Digest {
        Digest::of_parts(&[PLAN_DOMAIN, self.to_text().as_bytes()])
    }

    /// Digest of the **backend-invariant decision trace**: per
    /// component (name order) its name, observed calls and bytes, the
    /// per-candidate eligibility verdicts, and whether the chosen
    /// candidate is cost-minimal among the eligible ones. Costs,
    /// substrate indexes, and the stay/move bit are deliberately
    /// excluded — those legitimately differ between backends; what must
    /// *not* differ is which traffic was seen, which candidates the
    /// isolation envelope admits, and that the optimizer chose
    /// optimally within it.
    #[must_use]
    pub fn decision_digest(&self) -> Digest {
        let mut out = String::from("placement-decisions v1\n");
        for d in &self.decisions {
            let eligible: String = d
                .candidates
                .iter()
                .map(|c| if c.eligible { '1' } else { '0' })
                .collect();
            let optimal = d
                .candidates
                .iter()
                .filter(|c| c.eligible)
                .all(|c| c.cost >= d.candidates[d.chosen].cost);
            let _ = writeln!(
                out,
                "component {} calls {} bytes {} eligible {} optimal {}",
                d.component,
                d.calls,
                d.bytes,
                eligible,
                u64::from(optimal),
            );
        }
        Digest::of_parts(&[DECISION_DOMAIN, out.as_bytes()])
    }

    /// Fixed-width report table: one line per decision.
    #[must_use]
    pub fn render(&self) -> String {
        let width = self
            .decisions
            .iter()
            .map(|d| d.component.len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for d in &self.decisions {
            let verdict = if d.is_move() {
                format!(
                    "move {} -> {}",
                    d.candidates[d.current].backend, d.candidates[d.chosen].backend
                )
            } else {
                format!("stay {}", d.candidates[d.current].backend)
            };
            let _ = writeln!(
                out,
                "{:width$}  calls {:>8}  now {:>12}  best {:>12}  {verdict}",
                d.component, d.calls, d.candidates[d.current].cost, d.candidates[d.chosen].cost,
            );
        }
        out
    }
}

/// Scores every placed component of `app` against every pool candidate
/// of `assembly`, using the observed `profile`, and returns the
/// deterministic [`PlacementPlan`].
///
/// Per component, each candidate is scored by re-pricing the
/// component's incident edges (calls and bytes, co-location assumption)
/// on the candidate's [`cost_model`](lateral_substrate::substrate::Substrate::cost_model);
/// eligibility is the candidate profile's
/// [`satisfies`](lateral_substrate::attacker::SubstrateProfile::satisfies)
/// verdict on the component's required attacker models. The cheapest
/// eligible candidate wins; on a cost tie the current placement is
/// preferred (then the lowest pool index), so a plan over balanced
/// candidates is a no-op rather than churn.
///
/// # Errors
///
/// * [`CoreError::NotFound`] — a manifest component is not placed.
/// * [`CoreError::NoSuitableSubstrate`] — a pool member exposes no cost
///   model (nothing in-tree does), leaving a component unscorable.
pub fn plan_placement(
    app: &AppManifest,
    assembly: &Assembly,
    profile: &CrossingProfile,
) -> Result<PlacementPlan, CoreError> {
    // (backend name, eligible-for?, model) per pool member, computed
    // once — eligibility is per component, models are per substrate.
    let models: Vec<_> = assembly.pool_profiles_and_models().into_iter().collect();
    let mut names: Vec<&str> = app.components.iter().map(|c| c.name.as_str()).collect();
    names.sort_unstable();
    let mut decisions = Vec::with_capacity(names.len());
    for name in names {
        let cm = app.component(name).expect("names come from app.components");
        let current = assembly.placement(name)?.substrate;
        // Incident traffic, co-location assumption: every edge touching
        // the component is priced as ordinary trusted-to-trusted
        // invokes on the candidate.
        let (mut calls, mut bytes) = (0u64, 0u64);
        for (key, stats) in profile.edges() {
            if key.from == *name || key.to == *name {
                calls += stats.calls();
                bytes += stats.bytes;
            }
        }
        let mut candidates = Vec::with_capacity(models.len());
        for (sub_profile, model) in &models {
            let model = model
                .as_ref()
                .ok_or_else(|| CoreError::NoSuitableSubstrate {
                    component: name.to_string(),
                    reason: format!(
                        "pool substrate '{}' exposes no cost model",
                        sub_profile.name
                    ),
                })?;
            candidates.push(CandidateScore {
                backend: sub_profile.name.clone(),
                eligible: sub_profile.satisfies(&cm.required_defense),
                cost: model.price_invokes(DomainKind::Trusted, DomainKind::Trusted, calls, bytes),
            });
        }
        let chosen = candidates
            .iter()
            .enumerate()
            .filter(|(_, c)| c.eligible)
            .min_by_key(|(idx, c)| (c.cost, *idx != current, *idx))
            .map(|(idx, _)| idx)
            .ok_or_else(|| CoreError::NoSuitableSubstrate {
                component: name.to_string(),
                reason: "no pool candidate defends the required attacker models".into(),
            })?;
        decisions.push(ComponentDecision {
            component: name.to_string(),
            calls,
            bytes,
            current,
            chosen,
            candidates,
        });
    }
    Ok(PlacementPlan { decisions })
}

/// Strict decimal parser: rejects empty strings, leading `+`/`-`,
/// leading zeros (except "0" itself), and overflow — the canonical
/// encoder never emits any of those.
fn parse_u64(s: &str) -> Option<u64> {
    if s.is_empty() || (s.len() > 1 && s.starts_with('0')) {
        return None;
    }
    if !s.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    s.parse().ok()
}

/// Groups incident-edge totals per component — exposed for reporting
/// (E17 prints observed traffic next to the plan's predictions).
#[must_use]
pub fn incident_traffic(profile: &CrossingProfile) -> BTreeMap<String, (u64, u64)> {
    let mut per: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (key, stats) in profile.edges() {
        for end in [&key.from, &key.to] {
            let slot = per.entry(end.clone()).or_default();
            slot.0 += stats.calls();
            slot.1 += stats.bytes;
        }
    }
    per
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::compose;
    use crate::manifest::ComponentManifest;
    use lateral_substrate::attacker::AttackerModel;
    use lateral_substrate::component::Component;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::Substrate;
    use lateral_substrate::testkit::Echo;

    fn echo_factory(_: &ComponentManifest) -> Option<Box<dyn Component>> {
        Some(Box::new(Echo))
    }

    /// Two-substrate pool (both software) with a two-component app and
    /// some driven traffic, for plan-shape tests.
    fn plan_over_traffic() -> PlacementPlan {
        let app = AppManifest::new(
            "demo",
            vec![
                ComponentManifest::new("ui").channel("ask", "service", 1),
                ComponentManifest::new("service"),
            ],
        );
        let pool: Vec<Box<dyn Substrate>> = vec![
            Box::new(SoftwareSubstrate::new("pool-a")),
            Box::new(SoftwareSubstrate::new("pool-b")),
        ];
        let mut asm = compose(&app, pool, &mut echo_factory).unwrap();
        for _ in 0..10 {
            asm.call_channel("ui", "ask", b"0123456789abcdef").unwrap();
        }
        let profile = asm.crossing_profile();
        plan_placement(&app, &asm, &profile).unwrap()
    }

    #[test]
    fn balanced_candidates_produce_a_stay_plan() {
        let plan = plan_over_traffic();
        assert_eq!(plan.decisions().count(), 2);
        assert_eq!(plan.move_count(), 0, "identical costs must not churn");
        assert_eq!(plan.predicted_saving(), 0);
        let ui = plan.decision("ui").unwrap();
        assert_eq!(ui.calls, 10);
        assert!(ui.bytes >= 10 * 16, "payloads counted");
        assert_eq!(ui.chosen, ui.current);
        assert!(ui.candidates.iter().all(|c| c.eligible));
    }

    #[test]
    fn ineligible_candidates_are_never_chosen() {
        // "vault" requires a defense the software pool cannot provide on
        // candidate 1 — simulate by requiring a model software lacks and
        // checking the plan refuses, then that a satisfiable component
        // keeps all-eligible verdicts.
        let app = AppManifest::new(
            "demo",
            vec![ComponentManifest::new("vault").requires(&[AttackerModel::PhysicalBus])],
        );
        let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("pool-a"))];
        assert!(compose(&app, pool, &mut echo_factory).is_err());
    }

    #[test]
    fn text_codec_round_trips_canonically() {
        let plan = plan_over_traffic();
        let text = plan.to_text();
        let back = PlacementPlan::parse(&text).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_text(), text);
        assert_eq!(back.digest(), plan.digest());
        assert_eq!(back.decision_digest(), plan.decision_digest());
        // Components appear in name order.
        let service = text.find("component service").unwrap();
        let ui = text.find("component ui").unwrap();
        assert!(service < ui);
        // The empty plan round-trips too.
        let empty = PlacementPlan::default();
        assert_eq!(PlacementPlan::parse(&empty.to_text()).unwrap(), empty);
    }

    #[test]
    fn parse_rejects_malformed_text() {
        let good = plan_over_traffic().to_text();
        let reordered = {
            let mut rev = plan_over_traffic();
            rev.decisions.reverse(); // components out of canonical order
            rev.to_text()
        };
        let duplicated = {
            let mut dup = plan_over_traffic();
            dup.decisions.push(dup.decisions[0].clone());
            dup.to_text()
        };
        for bad in [
            "",
            "placement-plan v2",
            good.trim_end().rsplit_once(' ').unwrap().0, // last token cut off
            &format!("{good}trailing"),                  // trailing garbage
            &good.replace("component", "components"),
            &good.replace("eligible 1", "eligible 2"),
            &good.replace("calls 10", "calls 010"), // non-canonical integer
            &good.replace("calls 10", "calls +10"), // signed integer
            &good.replace("candidate 1", "candidate 3"), // index out of sequence
            &good.replace("chosen 0", "chosen 9"),  // outside candidate range
            &good.replacen("candidate 0", "candidate 1", 1),
            reordered.as_str(),
            duplicated.as_str(),
        ] {
            assert!(PlacementPlan::parse(bad).is_err(), "accepted: {bad:?}");
        }
        // Candidate line before any component line.
        let stray = format!("{PLAN_HEADER}\ncandidate 0 software eligible 1 cost 5\n");
        assert!(PlacementPlan::parse(&stray).is_err());
    }

    #[test]
    fn decision_digest_ignores_costs_but_full_digest_does_not() {
        let plan = plan_over_traffic();
        let mut repriced = plan.clone();
        // A backend charging different (but still optimal-at-chosen)
        // costs: scale every cost; eligibility and optimality intact.
        for d in &mut repriced.decisions {
            for c in &mut d.candidates {
                c.cost *= 100;
            }
        }
        assert_eq!(plan.decision_digest(), repriced.decision_digest());
        assert_ne!(plan.digest(), repriced.digest());
        // But a different eligibility verdict changes the decision trace.
        let mut fenced = plan.clone();
        fenced.decisions[0].candidates[1].eligible = false;
        assert_ne!(plan.decision_digest(), fenced.decision_digest());
    }

    #[test]
    fn incident_traffic_counts_both_endpoints() {
        let mut profile = CrossingProfile::new();
        profile.observe("a", "b", "ipc", 1_000, 64);
        profile.observe("a", "b", "ipc", 1_000, 64);
        let per = incident_traffic(&profile);
        assert_eq!(per["a"], (2, 128));
        assert_eq!(per["b"], (2, 128));
    }

    #[test]
    fn render_names_moves_and_stays() {
        let plan = plan_over_traffic();
        let table = plan.render();
        assert!(table.contains("stay pool-a") || table.contains("stay software"));
        assert_eq!(table, plan.render());
    }
}
