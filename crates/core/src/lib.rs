//! The trusted component ecosystem runtime.
//!
//! This crate is the integration layer of the paper's vision (§III):
//!
//! * [`manifest`] — applications are *described*, not hard-wired: a
//!   [`manifest::AppManifest`] names every component, its assets, its
//!   required attacker model, and **every communication channel it is
//!   allowed to have**. "Such a manifest enables the isolation substrate
//!   to establish just the needed channels and block all other
//!   communication, thereby promoting a POLA design mentality for the
//!   entire system" (§III-A).
//! * [`composer`] — instantiates a manifest over a pool of substrates,
//!   choosing for each component a backend whose
//!   [`SubstrateProfile`](lateral_substrate::attacker::SubstrateProfile)
//!   defends against the component's required attacker model ("a unified
//!   interface also allows developers to hand-pick an isolation
//!   mechanism … based on the required attacker model").
//! * [`analysis`] — the tooling §IV calls for: per-asset TCB accounting,
//!   information-flow reachability over the channel graph (the blast
//!   radius of experiment E1), confused-deputy candidate detection, and
//!   a Graphviz exporter for human review.
//! * [`placement`] — the observability loop closed: crossing-cost
//!   profiles folded from the fabric's retained trace are re-priced on
//!   every pool backend's introspectable cost model, producing a
//!   deterministic [`placement::PlacementPlan`] the supervisor applies
//!   by live migration — always inside the manifest's isolation
//!   envelope.
//! * [`supervisor`] — the recovery layer: manifests declare per-component
//!   restart policies, and a [`supervisor::Supervisor`] drives crashed
//!   components through destroy → respawn → re-measure → re-attest →
//!   re-grant, quarantining those that exhaust their restart budget while
//!   the rest of the assembly keeps serving.
//! * [`remote`] — cross-machine composition: assembly components exported
//!   over the adversarial network behind attested secure channels
//!   ("our envisioned architecture also extends across the network",
//!   §III-C).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod composer;
pub mod manifest;
pub mod placement;
pub mod remote;
pub mod supervisor;

use std::error::Error;
use std::fmt;

/// Errors from manifest validation and composition.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// The manifest is internally inconsistent.
    InvalidManifest(String),
    /// No substrate in the pool satisfies a component's requirements.
    NoSuitableSubstrate {
        /// The component that could not be placed.
        component: String,
        /// Why each candidate was rejected.
        reason: String,
    },
    /// A runtime substrate operation failed during composition.
    Substrate(String),
    /// A name lookup failed (component or channel label).
    NotFound(String),
    /// The target component is temporarily unavailable: its domain
    /// crashed and the supervisor has not (yet) restarted it, or it
    /// exhausted its restart budget and is quarantined. Callers seeing
    /// this during the bounded restart window should back off and retry.
    Unavailable(String),
    /// Admission control refused a component image: the registry knows
    /// no certified image for it, the digest is revoked, or the
    /// manifest's image does not match the certified bytes.
    AdmissionRefused {
        /// The component whose image was refused.
        component: String,
        /// Why admission control said no.
        reason: String,
    },
    /// The request exceeded a bounded in-flight window and was refused
    /// without being served — typed backpressure from the multiplexed
    /// remote session layer. Drain some replies, then resubmit.
    Overloaded(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidManifest(r) => write!(f, "invalid manifest: {r}"),
            CoreError::NoSuitableSubstrate { component, reason } => {
                write!(f, "no suitable substrate for '{component}': {reason}")
            }
            CoreError::Substrate(r) => write!(f, "substrate error: {r}"),
            CoreError::NotFound(r) => write!(f, "not found: {r}"),
            CoreError::Unavailable(r) => write!(f, "temporarily unavailable: {r}"),
            CoreError::AdmissionRefused { component, reason } => {
                write!(f, "admission refused for '{component}': {reason}")
            }
            CoreError::Overloaded(r) => write!(f, "overloaded: {r}"),
        }
    }
}

impl Error for CoreError {}

impl From<lateral_substrate::SubstrateError> for CoreError {
    fn from(e: lateral_substrate::SubstrateError) -> Self {
        match e {
            // A fail-stopped domain is a liveness condition, not a
            // composition failure: the supervisor destroys and respawns
            // it, so callers get the retryable variant.
            lateral_substrate::SubstrateError::DomainCrashed(_) => {
                CoreError::Unavailable(e.to_string())
            }
            _ => CoreError::Substrate(e.to_string()),
        }
    }
}
