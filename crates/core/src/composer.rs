//! The composer: from manifest to running, POLA-wired assembly.
//!
//! The composer is deliberately part of the TCB — it is the software
//! embodiment of the paper's "development workflow" where separation "is
//! built right into" application construction. It:
//!
//! 1. places every component on a substrate whose profile defends the
//!    component's required attacker models (preferring the candidate
//!    with the smallest TCB — the *deliberate* choice §III-A asks for,
//!    instead of "fashionability of a new hardware feature");
//! 2. establishes exactly the channels the manifest declares; nothing
//!    else can ever communicate;
//! 3. bridges channels whose endpoints landed on different substrates
//!    (the smart-meter appliance mixes a microkernel and TrustZone);
//! 4. offers the experiment harness *environment* entry points to drive
//!    components, tracked separately from declared channels.

use std::collections::BTreeMap;

use lateral_crypto::Digest;
use lateral_registry::Registry;
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};

use crate::manifest::{AppManifest, ComponentManifest};
use crate::CoreError;

/// Produces component instances for the composer.
pub trait ComponentFactory {
    /// Builds the component named by `manifest`, or `None` when unknown.
    fn build(&mut self, manifest: &ComponentManifest) -> Option<Box<dyn Component>>;
}

impl<F> ComponentFactory for F
where
    F: FnMut(&ComponentManifest) -> Option<Box<dyn Component>>,
{
    fn build(&mut self, manifest: &ComponentManifest) -> Option<Box<dyn Component>> {
        self(manifest)
    }
}

/// One substrate's aggregated fabric counters, as seen by the composer.
///
/// Every backend now routes lifecycle and invocation through the shared
/// `substrate::fabric` engine, so the assembly can report uniform
/// observability regardless of which mechanisms back the pool.
#[derive(Clone, Debug)]
pub struct TrafficRow {
    /// Substrate profile name (e.g. `"microkernel"`).
    pub substrate: String,
    /// Invocations the engine dispatched on this substrate.
    pub invocations: u64,
    /// Payload + reply bytes moved across domain boundaries.
    pub bytes: u64,
    /// Invocations refused at the capability check.
    pub denials: u64,
    /// Synchronous re-entries refused by the engine.
    pub reentrancy_faults: u64,
}

/// One placed component.
#[derive(Clone, Copy, Debug)]
pub struct Placement {
    /// Index into the assembly's substrate pool.
    pub substrate: usize,
    /// Domain on that substrate.
    pub domain: DomainId,
}

pub(crate) enum ChannelRef {
    /// Caller and target share a substrate: the caller's own capability.
    Local { substrate: usize, cap: ChannelCap },
    /// Endpoints on different substrates: the composer relays through an
    /// environment domain on the target substrate that owns a capability
    /// with the declared badge.
    Bridged { substrate: usize, cap: ChannelCap },
}

/// A running application.
///
/// Internals are crate-visible so the [`crate::supervisor`] can drive
/// the destroy → respawn → re-grant cycle without widening the public
/// surface.
pub struct Assembly {
    pub(crate) substrates: Vec<Box<dyn Substrate>>,
    pub(crate) placements: BTreeMap<String, Placement>,
    pub(crate) channels: BTreeMap<(String, String), ChannelRef>,
    pub(crate) env_domains: Vec<Option<DomainId>>,
    pub(crate) env_caps: BTreeMap<(String, u64), (usize, ChannelCap)>,
    pub(crate) regrant_epoch: u64,
}

impl std::fmt::Debug for Assembly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Assembly({} components over {} substrates)",
            self.placements.len(),
            self.substrates.len()
        )
    }
}

/// Badge used for environment (harness) invocations by default.
pub const ENV_BADGE: Badge = Badge(0xE4F);

/// Composes `app` over `substrates` using `factory`.
///
/// ```
/// use lateral_core::composer::compose;
/// use lateral_core::manifest::{AppManifest, ComponentManifest};
/// use lateral_substrate::software::SoftwareSubstrate;
/// use lateral_substrate::substrate::Substrate;
/// use lateral_substrate::testkit::Echo;
///
/// # fn main() -> Result<(), lateral_core::CoreError> {
/// let app = AppManifest::new(
///     "demo",
///     vec![
///         ComponentManifest::new("ui").channel("ask", "service", 1),
///         ComponentManifest::new("service"),
///     ],
/// );
/// let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("doc"))];
/// let mut factory = |_m: &ComponentManifest| {
///     Some(Box::new(Echo) as Box<dyn lateral_substrate::component::Component>)
/// };
/// let mut assembly = compose(&app, pool, &mut factory)?;
/// assert_eq!(assembly.call_channel("ui", "ask", b"ping")?, b"ping");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidManifest`] — the manifest fails validation or
///   the factory does not know a component.
/// * [`CoreError::NoSuitableSubstrate`] — a component's required attacker
///   models are not covered by any pool member.
/// * [`CoreError::Substrate`] — spawn or grant failures.
pub fn compose(
    app: &AppManifest,
    substrates: Vec<Box<dyn Substrate>>,
    factory: &mut dyn ComponentFactory,
) -> Result<Assembly, CoreError> {
    app.validate()?;
    let mut assembly = Assembly {
        env_domains: substrates.iter().map(|_| None).collect(),
        substrates,
        placements: BTreeMap::new(),
        channels: BTreeMap::new(),
        env_caps: BTreeMap::new(),
        regrant_epoch: 0,
    };
    // One `compose` span per pool substrate: every spawn and grant the
    // phases below perform on that substrate nests under it, so the
    // whole composition is one causal tree per fabric.
    let spans: Vec<Option<lateral_telemetry::SpanId>> = assembly
        .substrates
        .iter_mut()
        .map(|sub| {
            let at = sub.now();
            sub.telemetry_mut_ref()
                .map(|t| t.begin_span(&format!("compose {}", app.name), "compose", at))
        })
        .collect();
    let result = compose_phases(app, &mut assembly, factory);
    let outcome = if result.is_ok() {
        lateral_telemetry::outcome::OK
    } else {
        lateral_telemetry::outcome::FAILED
    };
    for (idx, span) in spans.into_iter().enumerate() {
        if let Some(span) = span {
            let sub = &mut assembly.substrates[idx];
            let at = sub.now();
            if let Some(t) = sub.telemetry_mut_ref() {
                t.end_span(span, at, outcome);
            }
        }
    }
    result?;
    Ok(assembly)
}

fn compose_phases(
    app: &AppManifest,
    assembly: &mut Assembly,
    factory: &mut dyn ComponentFactory,
) -> Result<(), CoreError> {
    // Phase 1: placement + spawn.
    for cm in &app.components {
        let mut candidates: Vec<(usize, u64)> = assembly
            .substrates
            .iter()
            .enumerate()
            .filter(|(_, s)| s.profile().satisfies(&cm.required_defense))
            .map(|(i, s)| (i, s.profile().tcb_loc))
            .collect();
        candidates.sort_by_key(|(_, tcb)| *tcb);
        let (idx, _) = candidates.first().copied().ok_or_else(|| {
            let required: Vec<String> = cm.required_defense.iter().map(|m| m.to_string()).collect();
            CoreError::NoSuitableSubstrate {
                component: cm.name.clone(),
                reason: format!(
                    "no pool substrate defends against [{}]",
                    required.join(", ")
                ),
            }
        })?;
        let component = factory.build(cm).ok_or_else(|| {
            CoreError::InvalidManifest(format!("factory cannot build '{}'", cm.name))
        })?;
        let spec = DomainSpec::named(&cm.name)
            .with_image(&cm.image)
            .with_mem_pages(cm.mem_pages)
            .with_loc(cm.loc);
        let domain = assembly.substrates[idx].spawn(spec, component)?;
        assembly.placements.insert(
            cm.name.clone(),
            Placement {
                substrate: idx,
                domain,
            },
        );
    }

    // Phase 2: channels (declaration order — components may rely on it
    // when enumerating their capability space).
    for cm in &app.components {
        for ch in &cm.channels {
            assembly.establish_channel(&cm.name, &ch.label, &ch.to, ch.badge)?;
        }
    }
    Ok(())
}

/// Checks one component manifest against the registry: the registry
/// must hold a certified, unrevoked image for the component's name, and
/// the manifest's image bytes must be exactly the certified bytes.
/// Returns the resolution so callers can adopt registry-served images.
///
/// # Errors
///
/// [`CoreError::AdmissionRefused`] carrying the registry's refusal.
pub(crate) fn admit_component(
    cm: &ComponentManifest,
    registry: &mut Registry,
) -> Result<lateral_registry::ResolvedImage, CoreError> {
    let resolved = registry
        .resolve(&cm.name)
        .map_err(|e| CoreError::AdmissionRefused {
            component: cm.name.clone(),
            reason: e.to_string(),
        })?;
    if resolved.image != cm.image {
        return Err(CoreError::AdmissionRefused {
            component: cm.name.clone(),
            reason: format!(
                "manifest image measures {} but the certified image is {}",
                lateral_registry::measurement_of(&cm.image).short_hex(),
                resolved.digest.short_hex()
            ),
        });
    }
    Ok(resolved)
}

/// Composes `app` under **admission control**: every component image is
/// resolved through `registry` first, and composition refuses to start
/// any component whose image is uncertified, revoked, or different from
/// the certified bytes. This is the paper's trusted-distribution story:
/// the composer spawns only what the certification pipeline let through.
///
/// When the manifest declares a `wot-threshold`, it is installed as the
/// registry's per-assembly web-of-trust threshold before any component
/// is resolved, so the certification pipeline's `wot-threshold` pass
/// judges every image against *this* assembly's bar.
///
/// # Errors
///
/// [`CoreError::AdmissionRefused`] on any registry refusal, plus
/// everything [`compose`] can return.
pub fn compose_admitted(
    app: &AppManifest,
    substrates: Vec<Box<dyn Substrate>>,
    factory: &mut dyn ComponentFactory,
    registry: &mut Registry,
) -> Result<Assembly, CoreError> {
    app.validate()?;
    registry.set_wot_threshold(app.wot_threshold);
    for cm in &app.components {
        admit_component(cm, registry)?;
    }
    compose(app, substrates, factory)
}

/// Liveness of an assembly, as reported by [`Assembly::health`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Health {
    /// Every placed component is alive.
    Healthy,
    /// The named components are down (crashed and not yet restarted, or
    /// quarantined); the rest of the assembly keeps serving.
    Degraded(Vec<String>),
    /// Every component is down (or the supervisor escalated a crash).
    Failed,
}

impl Assembly {
    fn env_domain(&mut self, substrate: usize) -> Result<DomainId, SubstrateError> {
        if let Some(d) = self.env_domains[substrate] {
            return Ok(d);
        }
        let d = self.substrates[substrate].spawn(
            DomainSpec::named("__env__").with_mem_pages(1),
            Box::new(lateral_substrate::testkit::Echo),
        )?;
        self.env_domains[substrate] = Some(d);
        Ok(d)
    }

    /// The placement of a component.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`].
    pub fn placement(&self, name: &str) -> Result<Placement, CoreError> {
        self.placements
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::NotFound(format!("component '{name}'")))
    }

    /// The name of the substrate a component landed on.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`].
    pub fn substrate_of(&self, name: &str) -> Result<String, CoreError> {
        let p = self.placement(name)?;
        Ok(self.substrates[p.substrate].profile().name.clone())
    }

    /// Mutable access to a pool substrate (attack injection in
    /// experiments).
    pub fn substrate_mut(&mut self, index: usize) -> &mut dyn Substrate {
        self.substrates[index].as_mut()
    }

    /// Number of substrates in the pool.
    pub fn substrate_count(&self) -> usize {
        self.substrates.len()
    }

    /// Invokes a *declared* channel on behalf of its owning component.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for unknown channels, otherwise the
    /// substrate invocation errors.
    pub fn call_channel(
        &mut self,
        from: &str,
        label: &str,
        data: &[u8],
    ) -> Result<Vec<u8>, CoreError> {
        let key = (from.to_string(), label.to_string());
        let chref = self
            .channels
            .get(&key)
            .ok_or_else(|| CoreError::NotFound(format!("channel '{from}'.'{label}'")))?;
        match chref {
            ChannelRef::Local { substrate, cap } => {
                let (sub, cap) = (*substrate, *cap);
                let caller = self.placements[from].domain;
                Ok(self.substrates[sub].invoke(caller, &cap, data)?)
            }
            ChannelRef::Bridged { substrate, cap } => {
                let (sub, cap) = (*substrate, *cap);
                let env = self.env_domains[sub].expect("bridge env exists");
                Ok(self.substrates[sub].invoke(env, &cap, data)?)
            }
        }
    }

    /// Invokes a declared channel once per payload through the
    /// substrate's batched path: one capability validation, one backend
    /// gate, one telemetry span for the whole batch (see
    /// [`Substrate::invoke_batch`]).
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for unknown channels; otherwise the first
    /// failing payload's substrate error (later payloads unattempted).
    pub fn call_channel_batch(
        &mut self,
        from: &str,
        label: &str,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, CoreError> {
        let key = (from.to_string(), label.to_string());
        let chref = self
            .channels
            .get(&key)
            .ok_or_else(|| CoreError::NotFound(format!("channel '{from}'.'{label}'")))?;
        match chref {
            ChannelRef::Local { substrate, cap } => {
                let (sub, cap) = (*substrate, *cap);
                let caller = self.placements[from].domain;
                Ok(self.substrates[sub].invoke_batch(caller, &cap, payloads)?)
            }
            ChannelRef::Bridged { substrate, cap } => {
                let (sub, cap) = (*substrate, *cap);
                let env = self.env_domains[sub].expect("bridge env exists");
                Ok(self.substrates[sub].invoke_batch(env, &cap, payloads)?)
            }
        }
    }

    /// Environment invocation of a component with [`ENV_BADGE`].
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for unknown components, otherwise
    /// substrate errors.
    pub fn call_component(&mut self, name: &str, data: &[u8]) -> Result<Vec<u8>, CoreError> {
        self.call_component_badged(name, ENV_BADGE, data)
    }

    /// Environment invocation with an explicit badge (for components
    /// that demultiplex clients by badge).
    ///
    /// # Errors
    ///
    /// Same as [`Assembly::call_component`].
    pub fn call_component_badged(
        &mut self,
        name: &str,
        badge: Badge,
        data: &[u8],
    ) -> Result<Vec<u8>, CoreError> {
        let placement = self.placement(name)?;
        let key = (name.to_string(), badge.0);
        if !self.env_caps.contains_key(&key) {
            let env = self.env_domain(placement.substrate)?;
            let cap =
                self.substrates[placement.substrate].grant_channel(env, placement.domain, badge)?;
            self.env_caps
                .insert(key.clone(), (placement.substrate, cap));
        }
        let (sub, cap) = self.env_caps[&key];
        let env = self.env_domains[sub].expect("env exists");
        Ok(self.substrates[sub].invoke(env, &cap, data)?)
    }

    /// How many times the supervisor has re-granted channels after a
    /// restart or migration — the session layer's re-grant epoch: any
    /// bump invalidates outstanding remote resumption tickets.
    pub fn regrant_epoch(&self) -> u64 {
        self.regrant_epoch
    }

    /// The measurement of a placed component.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] / substrate errors.
    pub fn measurement(&self, name: &str) -> Result<Digest, CoreError> {
        let p = self.placement(name)?;
        Ok(self.substrates[p.substrate].measurement(p.domain)?)
    }

    /// Attestation evidence for a placed component.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] / substrate errors (including
    /// `Unsupported` when the substrate cannot attest).
    pub fn attest(
        &mut self,
        name: &str,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, CoreError> {
        let p = self.placement(name)?;
        Ok(self.substrates[p.substrate].attest(p.domain, report_data)?)
    }

    /// Component names in placement order.
    pub fn component_names(&self) -> Vec<String> {
        self.placements.keys().cloned().collect()
    }

    /// The merged crossing profile of the whole pool: every substrate's
    /// retained trace folded edge-wise into one
    /// [`lateral_telemetry::profile::CrossingProfile`] (substrates
    /// without a fabric contribute nothing). This is the observation
    /// input to [`crate::placement::plan_placement`].
    #[must_use]
    pub fn crossing_profile(&self) -> lateral_telemetry::profile::CrossingProfile {
        let mut merged = lateral_telemetry::profile::CrossingProfile::new();
        for sub in &self.substrates {
            if let Some(p) = sub.crossing_profile() {
                merged.absorb(&p);
            }
        }
        merged
    }

    /// Every pool substrate's profile and introspectable cost model, in
    /// pool order — the candidate set the placement optimizer scores
    /// against.
    #[must_use]
    pub fn pool_profiles_and_models(
        &self,
    ) -> Vec<(
        lateral_substrate::attacker::SubstrateProfile,
        Option<lateral_substrate::fabric::CrossingCostModel>,
    )> {
        self.substrates
            .iter()
            .map(|s| (s.profile().clone(), s.cost_model()))
            .collect()
    }

    /// Fabric traffic counters for every pool substrate, in pool order.
    ///
    /// Substrates predating the fabric engine (none in-tree) would
    /// simply be absent from the result.
    pub fn traffic(&self) -> Vec<TrafficRow> {
        self.substrates
            .iter()
            .filter_map(|s| {
                let stats = s.fabric_ref()?.stats();
                Some(TrafficRow {
                    substrate: s.profile().name.clone(),
                    invocations: stats.total_invocations(),
                    bytes: stats.total_bytes(),
                    denials: stats.total_denials(),
                    reentrancy_faults: stats.total_reentrancy_faults(),
                })
            })
            .collect()
    }

    /// Grants (or re-grants, overwriting the channel-map entry) the
    /// declared channel `from_name.label → to_name`. Both endpoints must
    /// be placed.
    pub(crate) fn establish_channel(
        &mut self,
        from_name: &str,
        label: &str,
        to_name: &str,
        badge: u64,
    ) -> Result<(), CoreError> {
        let from = self.placement(from_name)?;
        let to = self.placement(to_name)?;
        let key = (from_name.to_string(), label.to_string());
        if from.substrate == to.substrate {
            let cap = self.substrates[from.substrate].grant_channel(
                from.domain,
                to.domain,
                Badge(badge),
            )?;
            self.channels.insert(
                key,
                ChannelRef::Local {
                    substrate: from.substrate,
                    cap,
                },
            );
        } else {
            let env = self.env_domain(to.substrate)?;
            let cap = self.substrates[to.substrate].grant_channel(env, to.domain, Badge(badge))?;
            self.channels.insert(
                key,
                ChannelRef::Bridged {
                    substrate: to.substrate,
                    cap,
                },
            );
        }
        Ok(())
    }

    /// Destroys a component's (possibly crashed) domain and spawns a
    /// fresh successor from the manifest on the *same* substrate. The
    /// destroyed domain's capabilities are already dead by fabric
    /// semantics; the channel-map and env-cap entries involving the
    /// component are dropped so the supervisor re-grants from a clean
    /// slate. On spawn failure the component stays placed at its dead
    /// domain id (every call fails until a later restart succeeds).
    pub(crate) fn respawn(
        &mut self,
        cm: &ComponentManifest,
        component: Box<dyn Component>,
    ) -> Result<(), CoreError> {
        let p = self.placement(&cm.name)?;
        // The old domain may already be gone if a previous restart
        // attempt failed after the destroy.
        let _ = self.substrates[p.substrate].destroy(p.domain);
        self.channels.retain(|(from, _), _| from != &cm.name);
        self.env_caps.retain(|(target, _), _| target != &cm.name);
        let spec = DomainSpec::named(&cm.name)
            .with_image(&cm.image)
            .with_mem_pages(cm.mem_pages)
            .with_loc(cm.loc);
        let domain = self.substrates[p.substrate].spawn(spec, component)?;
        self.placements.insert(
            cm.name.clone(),
            Placement {
                substrate: p.substrate,
                domain,
            },
        );
        Ok(())
    }

    /// Live-migrates a component: destroys its current domain (stale
    /// capabilities die with it, exactly as in a respawn) and spawns a
    /// fresh successor from the manifest on the `target` pool substrate.
    /// Channel-map and env-cap entries involving the component are
    /// dropped so the caller re-grants from a clean slate; sealed-state
    /// escrow is the caller's job (sealing keys never cross substrates).
    pub(crate) fn migrate(
        &mut self,
        cm: &ComponentManifest,
        component: Box<dyn Component>,
        target: usize,
    ) -> Result<(), CoreError> {
        if target >= self.substrates.len() {
            return Err(CoreError::NotFound(format!(
                "pool substrate index {target}"
            )));
        }
        let p = self.placement(&cm.name)?;
        let _ = self.substrates[p.substrate].destroy(p.domain);
        self.channels.retain(|(from, _), _| from != &cm.name);
        self.env_caps
            .retain(|(target_name, _), _| target_name != &cm.name);
        let spec = DomainSpec::named(&cm.name)
            .with_image(&cm.image)
            .with_mem_pages(cm.mem_pages)
            .with_loc(cm.loc);
        let domain = self.substrates[target].spawn(spec, component)?;
        self.placements.insert(
            cm.name.clone(),
            Placement {
                substrate: target,
                domain,
            },
        );
        Ok(())
    }

    /// Re-establishes every manifest-declared channel from or to `name`
    /// (exactly the declared set — the POLA guarantee survives the
    /// restart). Channels whose other endpoint is itself down are
    /// skipped; that endpoint's own restart re-grants them.
    pub(crate) fn regrant(&mut self, app: &AppManifest, name: &str) -> Result<(), CoreError> {
        // Every re-grant bumps the epoch: outstanding remote resumption
        // tickets were minted against the old channel topology and must
        // force a fresh attestation handshake.
        self.regrant_epoch += 1;
        for cm in &app.components {
            for ch in &cm.channels {
                if cm.name != name && ch.to != name {
                    continue;
                }
                let endpoints_alive = [&cm.name, &ch.to].iter().all(|n| {
                    self.placements
                        .get(n.as_str())
                        .is_some_and(|p| self.substrates[p.substrate].measurement(p.domain).is_ok())
                });
                if !endpoints_alive {
                    continue;
                }
                self.establish_channel(&cm.name, &ch.label, &ch.to, ch.badge)?;
            }
        }
        Ok(())
    }

    /// Liveness summary: a component counts as down when its domain no
    /// longer exists (destroyed, not yet respawned) or the fabric marked
    /// it crashed.
    pub fn health(&self) -> Health {
        let mut down = Vec::new();
        for (name, p) in &self.placements {
            let sub = &self.substrates[p.substrate];
            let dead = sub.measurement(p.domain).is_err()
                || sub.fabric_ref().is_some_and(|f| f.is_crashed(p.domain));
            if dead {
                down.push(name.clone());
            }
        }
        if down.is_empty() {
            Health::Healthy
        } else if down.len() == self.placements.len() {
            Health::Failed
        } else {
            Health::Degraded(down)
        }
    }

    /// Tears down a component: its domain is destroyed (memory scrubbed,
    /// inbound capabilities revoked by the substrate) and every declared
    /// channel from or to it stops existing.
    ///
    /// # Errors
    ///
    /// [`CoreError::NotFound`] for unknown components; substrate errors
    /// from the destroy itself.
    pub fn destroy_component(&mut self, name: &str) -> Result<(), CoreError> {
        let placement = self.placement(name)?;
        self.substrates[placement.substrate].destroy(placement.domain)?;
        self.placements.remove(name);
        self.channels.retain(|(from, _), _| from != name);
        self.env_caps.retain(|(target, _), _| target != name);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::ComponentManifest;
    use lateral_substrate::attacker::AttackerModel;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::testkit::{BadgeReporter, Counter, Echo};

    fn echo_factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
        match cm.name.as_str() {
            "badge-reporter" => Some(Box::new(BadgeReporter)),
            "counter" => Some(Box::new(Counter::default())),
            _ => Some(Box::new(Echo)),
        }
    }

    fn pool() -> Vec<Box<dyn Substrate>> {
        vec![Box::new(SoftwareSubstrate::new("pool-0"))]
    }

    #[test]
    fn composes_and_calls_declared_channels() {
        let app = AppManifest::new(
            "demo",
            vec![
                ComponentManifest::new("ui").channel("count", "counter", 5),
                ComponentManifest::new("counter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        let r = asm.call_channel("ui", "count", b"").unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 1);
    }

    #[test]
    fn batched_channel_call_returns_in_order_replies() {
        let app = AppManifest::new(
            "demo",
            vec![
                ComponentManifest::new("ui").channel("count", "counter", 5),
                ComponentManifest::new("counter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        let replies = asm
            .call_channel_batch("ui", "count", &[b"", b"", b""])
            .unwrap();
        let counts: Vec<u64> = replies
            .into_iter()
            .map(|r| u64::from_le_bytes(r.try_into().unwrap()))
            .collect();
        assert_eq!(counts, vec![1, 2, 3]);
        assert!(matches!(
            asm.call_channel_batch("ui", "missing", &[b"x"]),
            Err(CoreError::NotFound(_))
        ));
    }

    #[test]
    fn undeclared_channel_does_not_exist() {
        let app = AppManifest::new(
            "demo",
            vec![
                ComponentManifest::new("ui"),
                ComponentManifest::new("counter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        assert!(matches!(
            asm.call_channel("ui", "count", b""),
            Err(CoreError::NotFound(_))
        ));
    }

    #[test]
    fn declared_badges_are_delivered() {
        let app = AppManifest::new(
            "demo",
            vec![
                ComponentManifest::new("client").channel("ask", "badge-reporter", 0xBEEF),
                ComponentManifest::new("badge-reporter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        let r = asm.call_channel("client", "ask", b"").unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 0xBEEF);
    }

    #[test]
    fn unplaceable_component_is_reported() {
        let app = AppManifest::new(
            "demo",
            vec![ComponentManifest::new("hsm").requires(&[AttackerModel::PhysicalBus])],
        );
        // The software substrate defends only remote-software.
        let err = compose(&app, pool(), &mut echo_factory).unwrap_err();
        assert!(matches!(err, CoreError::NoSuitableSubstrate { .. }));
    }

    #[test]
    fn placement_prefers_smallest_satisfying_tcb() {
        // Two software substrates; fake a big one by constructing a pool
        // where ordering matters. Both satisfy, first has bigger TCB.
        let big: Box<dyn Substrate> = Box::new(SoftwareSubstrate::new("big"));
        let small: Box<dyn Substrate> = Box::new(SoftwareSubstrate::new("small"));
        // Identical profiles → stable: picks index 0 (same tcb). This
        // test just pins the tie-break behavior.
        let app = AppManifest::new("demo", vec![ComponentManifest::new("c")]);
        let asm = compose(&app, vec![big, small], &mut echo_factory).unwrap();
        assert_eq!(asm.placement("c").unwrap().substrate, 0);
    }

    #[test]
    fn environment_calls_work_and_are_badged() {
        let app = AppManifest::new("demo", vec![ComponentManifest::new("badge-reporter")]);
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        let r = asm
            .call_component_badged("badge-reporter", Badge(42), b"")
            .unwrap();
        assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 42);
    }

    #[test]
    fn unknown_factory_component_rejected() {
        struct NoneFactory;
        impl ComponentFactory for NoneFactory {
            fn build(&mut self, _: &ComponentManifest) -> Option<Box<dyn Component>> {
                None
            }
        }
        let app = AppManifest::new("demo", vec![ComponentManifest::new("mystery")]);
        assert!(matches!(
            compose(&app, pool(), &mut NoneFactory),
            Err(CoreError::InvalidManifest(_))
        ));
    }

    #[test]
    fn destroy_component_kills_channels_in_both_directions() {
        let app = AppManifest::new(
            "teardown",
            vec![
                ComponentManifest::new("ui").channel("count", "counter", 5),
                ComponentManifest::new("counter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        asm.call_channel("ui", "count", b"").unwrap();
        asm.call_component("counter", b"").unwrap();
        asm.destroy_component("counter").unwrap();
        // Name gone, channel gone, env path gone.
        assert!(asm.placement("counter").is_err());
        assert!(asm.call_channel("ui", "count", b"").is_err());
        assert!(asm.call_component("counter", b"").is_err());
        // The survivor keeps working.
        assert_eq!(
            asm.call_component("ui", b"still here").unwrap(),
            b"still here"
        );
    }

    #[test]
    fn traffic_reports_fabric_counters_across_the_pool() {
        let app = AppManifest::new(
            "traffic",
            vec![
                ComponentManifest::new("ui").channel("count", "counter", 5),
                ComponentManifest::new("counter"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        asm.call_channel("ui", "count", b"12345678").unwrap();
        asm.call_channel("ui", "count", b"12345678").unwrap();
        let rows = asm.traffic();
        assert_eq!(rows.len(), 1, "one pool substrate");
        let row = &rows[0];
        assert_eq!(row.substrate, "software");
        assert_eq!(row.invocations, 2);
        // Payload (8) + little-endian u64 reply (8) per call.
        assert_eq!(row.bytes, 2 * (8 + 8));
        assert_eq!(row.denials, 0);
        assert_eq!(row.reentrancy_faults, 0);
    }

    mod admission {
        use super::*;
        use lateral_crypto::sign::SigningKey;
        use lateral_registry::ManifestDraft;

        fn registry_with(entries: &[(&str, &[u8])]) -> Registry {
            let root = SigningKey::from_seed(b"composer admission root");
            let mut reg = Registry::new("admission-test");
            reg.trust_root(&root.verifying_key());
            for (name, image) in entries {
                reg.publish(image, ManifestDraft::new(name, image).sign(&root, None))
                    .unwrap();
            }
            reg
        }

        #[test]
        fn certified_app_composes() {
            let mut reg = registry_with(&[("ui", b"ui v1"), ("counter", b"counter v1")]);
            let app = AppManifest::new(
                "demo",
                vec![
                    ComponentManifest::new("ui")
                        .image(b"ui v1")
                        .channel("count", "counter", 5),
                    ComponentManifest::new("counter").image(b"counter v1"),
                ],
            );
            let mut asm = compose_admitted(&app, pool(), &mut echo_factory, &mut reg).unwrap();
            let r = asm.call_channel("ui", "count", b"").unwrap();
            assert_eq!(u64::from_le_bytes(r.try_into().unwrap()), 1);
            assert!(reg.stats().resolves >= 2);
        }

        #[test]
        fn unregistered_component_refused() {
            let mut reg = registry_with(&[("ui", b"ui v1")]);
            let app = AppManifest::new(
                "demo",
                vec![
                    ComponentManifest::new("ui").image(b"ui v1"),
                    ComponentManifest::new("counter").image(b"counter v1"),
                ],
            );
            let err = compose_admitted(&app, pool(), &mut echo_factory, &mut reg).unwrap_err();
            assert!(
                matches!(err, CoreError::AdmissionRefused { ref component, .. } if component == "counter"),
                "{err}"
            );
        }

        #[test]
        fn revoked_component_refused() {
            let mut reg = registry_with(&[("ui", b"ui v1")]);
            let digest = lateral_registry::measurement_of(b"ui v1");
            reg.revoke(digest, "compromised build host").unwrap();
            let app = AppManifest::new("demo", vec![ComponentManifest::new("ui").image(b"ui v1")]);
            let err = compose_admitted(&app, pool(), &mut echo_factory, &mut reg).unwrap_err();
            match err {
                CoreError::AdmissionRefused { component, reason } => {
                    assert_eq!(component, "ui");
                    assert!(reason.contains("revoked"), "{reason}");
                }
                other => panic!("expected refusal, got {other}"),
            }
        }

        #[test]
        fn manifest_threshold_installs_into_the_registry() {
            use lateral_wot::{Proof, Rating, ReviewProof, TrustGraph};
            let mut reg = registry_with(&[("ui", b"ui v1")]);
            let reviewer = SigningKey::from_seed(b"assembly reviewer");
            let mut graph = TrustGraph::new();
            graph.seed_root(&reviewer.verifying_key().to_bytes());
            reg.attach_wot(graph, 0);
            let digest = lateral_registry::measurement_of(b"ui v1");
            let review = ReviewProof::issue(&reviewer, digest, Rating::Trust, 1);
            reg.ingest_proof(&Proof::Review(review)).unwrap();
            // `trust` from the lone root scores ~1.0 (~1000 milli): it
            // clears a 500-milli assembly bar but not a 1500-milli one.
            let app = |milli| {
                AppManifest::new("demo", vec![ComponentManifest::new("ui").image(b"ui v1")])
                    .with_wot_threshold(milli)
            };
            let err =
                compose_admitted(&app(1500), pool(), &mut echo_factory, &mut reg).unwrap_err();
            assert!(matches!(err, CoreError::AdmissionRefused { .. }), "{err}");
            assert_eq!(reg.wot_threshold_milli(), 1500);
            compose_admitted(&app(500), pool(), &mut echo_factory, &mut reg).unwrap();
            assert_eq!(reg.wot_threshold_milli(), 500);
        }

        #[test]
        fn digest_mismatched_image_refused() {
            let mut reg = registry_with(&[("ui", b"ui v1")]);
            // The app manifest conjures different bytes than certified.
            let app = AppManifest::new(
                "demo",
                vec![ComponentManifest::new("ui").image(b"ui v1 (tampered)")],
            );
            let err = compose_admitted(&app, pool(), &mut echo_factory, &mut reg).unwrap_err();
            match err {
                CoreError::AdmissionRefused { reason, .. } => {
                    assert!(reason.contains("certified image"), "{reason}");
                }
                other => panic!("expected refusal, got {other}"),
            }
        }
    }

    #[test]
    fn cross_substrate_channels_are_bridged() {
        let app = AppManifest::new(
            "demo",
            vec![
                // Force them apart: second requires an attacker model
                // only the second substrate has... with two identical
                // software substrates we cannot force placement, so use
                // the pool order tie-break plus a custom-requirement
                // trick is unavailable; instead verify bridging by
                // placing on one pool of two and checking the call path
                // still works when we *manually* compose a bridged
                // channel via distinct pools in the integration tests.
                ComponentManifest::new("a").channel("go", "b", 9),
                ComponentManifest::new("b"),
            ],
        );
        let mut asm = compose(&app, pool(), &mut echo_factory).unwrap();
        assert_eq!(asm.call_channel("a", "go", b"x").unwrap(), b"x");
    }
}
