//! Application manifests: declared components, assets, and channels.
//!
//! A manifest is the paper's "map of communication relationships": the
//! composer establishes exactly the declared channels, and the analysis
//! tools reason about trust and information flow over the same map.

use std::collections::{BTreeMap, BTreeSet};

use lateral_substrate::attacker::AttackerModel;

use crate::CoreError;

/// How sensitive an asset is (used in reports; any compromise of a
/// `Secret` asset counts as a security failure).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Sensitivity {
    /// Public data; disclosure is harmless.
    Public,
    /// Personal data; disclosure is a privacy incident.
    Personal,
    /// Credentials / key material; disclosure is a security failure.
    Secret,
}

/// A named asset held inside one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Asset {
    /// Asset name (unique within the app).
    pub name: String,
    /// Sensitivity class.
    pub sensitivity: Sensitivity,
}

/// A declared communication channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Label the owning component uses to refer to the channel.
    pub label: String,
    /// Name of the target component.
    pub to: String,
    /// Badge delivered to the target (client identity).
    pub badge: u64,
}

/// Whether a component is trusted or legacy (assumed compromised).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrustClass {
    /// Designed per POLA / small enough to audit — trusted.
    Trusted,
    /// Monolithic legacy code — assumed compromised (§II-A).
    Legacy,
}

/// One component in the application.
#[derive(Clone, Debug)]
pub struct ComponentManifest {
    /// Unique component name.
    pub name: String,
    /// Code image (its digest is the attestable measurement).
    pub image: Vec<u8>,
    /// Implementation size in lines of code (TCB accounting).
    pub loc: u64,
    /// Private memory in pages.
    pub mem_pages: usize,
    /// Trusted or legacy.
    pub trust: TrustClass,
    /// The weakest attacker this component must still withstand.
    pub required_defense: BTreeSet<AttackerModel>,
    /// Assets held inside the component.
    pub assets: Vec<Asset>,
    /// Channels this component may use (POLA: nothing else exists).
    pub channels: Vec<ChannelDecl>,
}

impl ComponentManifest {
    /// Starts a builder-flavored manifest with defaults (trusted, 1000
    /// LoC, 4 pages, image = name, defends remote-software).
    pub fn new(name: &str) -> ComponentManifest {
        ComponentManifest {
            name: name.to_string(),
            image: name.as_bytes().to_vec(),
            loc: 1_000,
            mem_pages: 4,
            trust: TrustClass::Trusted,
            required_defense: [AttackerModel::RemoteSoftware].into_iter().collect(),
            assets: Vec::new(),
            channels: Vec::new(),
        }
    }

    /// Sets the code image.
    #[must_use]
    pub fn image(mut self, image: &[u8]) -> ComponentManifest {
        self.image = image.to_vec();
        self
    }

    /// Sets the line count.
    #[must_use]
    pub fn loc(mut self, loc: u64) -> ComponentManifest {
        self.loc = loc;
        self
    }

    /// Marks the component legacy (assumed compromised).
    #[must_use]
    pub fn legacy(mut self) -> ComponentManifest {
        self.trust = TrustClass::Legacy;
        self
    }

    /// Requires defense against the given attacker models.
    #[must_use]
    pub fn requires(mut self, models: &[AttackerModel]) -> ComponentManifest {
        self.required_defense = models.iter().copied().collect();
        self
    }

    /// Declares an asset.
    #[must_use]
    pub fn asset(mut self, name: &str, sensitivity: Sensitivity) -> ComponentManifest {
        self.assets.push(Asset {
            name: name.to_string(),
            sensitivity,
        });
        self
    }

    /// Declares a channel `label → to` with `badge`.
    #[must_use]
    pub fn channel(mut self, label: &str, to: &str, badge: u64) -> ComponentManifest {
        self.channels.push(ChannelDecl {
            label: label.to_string(),
            to: to.to_string(),
            badge,
        });
        self
    }
}

/// A whole application: a set of components and their channel graph.
#[derive(Clone, Debug)]
pub struct AppManifest {
    /// Application name.
    pub name: String,
    /// The components.
    pub components: Vec<ComponentManifest>,
}

impl AppManifest {
    /// Creates an application manifest from components.
    pub fn new(name: &str, components: Vec<ComponentManifest>) -> AppManifest {
        AppManifest {
            name: name.to_string(),
            components,
        }
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentManifest> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidManifest`] for duplicate component names,
    /// channels to unknown targets, duplicate channel labels within one
    /// component, duplicate asset names across the app, or self-channels.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut names = BTreeSet::new();
        for c in &self.components {
            if !names.insert(&c.name) {
                return Err(CoreError::InvalidManifest(format!(
                    "duplicate component name '{}'",
                    c.name
                )));
            }
        }
        let mut assets = BTreeSet::new();
        for c in &self.components {
            for a in &c.assets {
                if !assets.insert(&a.name) {
                    return Err(CoreError::InvalidManifest(format!(
                        "duplicate asset name '{}'",
                        a.name
                    )));
                }
            }
            let mut labels = BTreeSet::new();
            for ch in &c.channels {
                if !labels.insert(&ch.label) {
                    return Err(CoreError::InvalidManifest(format!(
                        "duplicate channel label '{}' in '{}'",
                        ch.label, c.name
                    )));
                }
                if ch.to == c.name {
                    return Err(CoreError::InvalidManifest(format!(
                        "component '{}' declares a channel to itself",
                        c.name
                    )));
                }
                if !names.contains(&ch.to) {
                    return Err(CoreError::InvalidManifest(format!(
                        "channel '{}' in '{}' targets unknown component '{}'",
                        ch.label, c.name, ch.to
                    )));
                }
            }
        }
        Ok(())
    }

    /// The inverse channel map: for each component, who may call it
    /// (caller name, badge).
    pub fn inbound(&self) -> BTreeMap<&str, Vec<(&str, u64)>> {
        let mut map: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for c in &self.components {
            map.entry(c.name.as_str()).or_default();
            for ch in &c.channels {
                map.entry(ch.to.as_str())
                    .or_default()
                    .push((c.name.as_str(), ch.badge));
            }
        }
        map
    }

    /// Total declared lines of application code.
    pub fn total_loc(&self) -> u64 {
        self.components.iter().map(|c| c.loc).sum()
    }

    /// Total number of declared channels.
    pub fn channel_count(&self) -> usize {
        self.components.iter().map(|c| c.channels.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppManifest {
        AppManifest::new(
            "mail",
            vec![
                ComponentManifest::new("ui")
                    .channel("render", "renderer", 1)
                    .channel("store", "mail-store", 2),
                ComponentManifest::new("renderer").loc(30_000),
                ComponentManifest::new("mail-store").asset("mail-archive", Sensitivity::Personal),
            ],
        )
    }

    #[test]
    fn valid_manifest_passes() {
        sample().validate().unwrap();
        assert_eq!(sample().channel_count(), 2);
        assert_eq!(sample().total_loc(), 32_000);
    }

    #[test]
    fn duplicate_component_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a"), ComponentManifest::new("a")],
        );
        assert!(matches!(app.validate(), Err(CoreError::InvalidManifest(_))));
    }

    #[test]
    fn unknown_target_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a").channel("c", "ghost", 1)],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn self_channel_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a").channel("self", "a", 1)],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        let app = AppManifest::new(
            "x",
            vec![
                ComponentManifest::new("a")
                    .channel("c", "b", 1)
                    .channel("c", "b", 2),
                ComponentManifest::new("b"),
            ],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn duplicate_asset_rejected() {
        let app = AppManifest::new(
            "x",
            vec![
                ComponentManifest::new("a").asset("k", Sensitivity::Secret),
                ComponentManifest::new("b").asset("k", Sensitivity::Secret),
            ],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn inbound_map_inverts_channels() {
        let app = sample();
        let inbound = app.inbound();
        assert_eq!(inbound["renderer"], vec![("ui", 1)]);
        assert_eq!(inbound["mail-store"], vec![("ui", 2)]);
        assert!(inbound["ui"].is_empty());
    }
}
