//! Application manifests: declared components, assets, and channels.
//!
//! A manifest is the paper's "map of communication relationships": the
//! composer establishes exactly the declared channels, and the analysis
//! tools reason about trust and information flow over the same map.

use std::collections::{BTreeMap, BTreeSet};

use lateral_substrate::attacker::AttackerModel;

use crate::CoreError;

/// How sensitive an asset is (used in reports; any compromise of a
/// `Secret` asset counts as a security failure).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Sensitivity {
    /// Public data; disclosure is harmless.
    Public,
    /// Personal data; disclosure is a privacy incident.
    Personal,
    /// Credentials / key material; disclosure is a security failure.
    Secret,
}

/// A named asset held inside one component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Asset {
    /// Asset name (unique within the app).
    pub name: String,
    /// Sensitivity class.
    pub sensitivity: Sensitivity,
}

/// A declared communication channel.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChannelDecl {
    /// Label the owning component uses to refer to the channel.
    pub label: String,
    /// Name of the target component.
    pub to: String,
    /// Badge delivered to the target (client identity).
    pub badge: u64,
}

/// Whether a component is trusted or legacy (assumed compromised).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrustClass {
    /// Designed per POLA / small enough to audit — trusted.
    Trusted,
    /// Monolithic legacy code — assumed compromised (§II-A).
    Legacy,
}

/// What the supervisor does when a component's domain fail-stops.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RestartPolicy {
    /// Crash once, stay down: the component is quarantined immediately
    /// (the default — supervision is opt-in per component).
    Never,
    /// Destroy, respawn from the image, re-attest, and re-grant — up to
    /// `max_restarts` times, with a doubling logical-clock backoff.
    Restart {
        /// Restart budget over the component's lifetime; exceeding it
        /// quarantines the component.
        max_restarts: u32,
        /// Logical-clock ticks before the first restart attempt; doubles
        /// per consecutive restart (capped at 64× the base).
        backoff_base: u64,
    },
    /// A crash of this component fails the whole assembly (it is load-
    /// bearing beyond repair — e.g. the root of trust).
    Escalate,
}

impl RestartPolicy {
    /// The backoff before restart attempt `n` (0-based): doubling from
    /// the base, capped at 64× base. Zero for policies without restarts.
    pub fn backoff(&self, n: u32) -> u64 {
        match self {
            RestartPolicy::Restart { backoff_base, .. } => {
                backoff_base.saturating_mul(1u64 << n.min(6))
            }
            _ => 0,
        }
    }
}

/// One component in the application.
#[derive(Clone, Debug)]
pub struct ComponentManifest {
    /// Unique component name.
    pub name: String,
    /// Code image (its digest is the attestable measurement).
    pub image: Vec<u8>,
    /// Implementation size in lines of code (TCB accounting).
    pub loc: u64,
    /// Private memory in pages.
    pub mem_pages: usize,
    /// Trusted or legacy.
    pub trust: TrustClass,
    /// The weakest attacker this component must still withstand.
    pub required_defense: BTreeSet<AttackerModel>,
    /// Assets held inside the component.
    pub assets: Vec<Asset>,
    /// Channels this component may use (POLA: nothing else exists).
    pub channels: Vec<ChannelDecl>,
    /// What the supervisor does when this component crashes.
    pub restart: RestartPolicy,
}

impl ComponentManifest {
    /// Starts a builder-flavored manifest with defaults (trusted, 1000
    /// LoC, 4 pages, image = name, defends remote-software).
    pub fn new(name: &str) -> ComponentManifest {
        ComponentManifest {
            name: name.to_string(),
            image: name.as_bytes().to_vec(),
            loc: 1_000,
            mem_pages: 4,
            trust: TrustClass::Trusted,
            required_defense: [AttackerModel::RemoteSoftware].into_iter().collect(),
            assets: Vec::new(),
            channels: Vec::new(),
            restart: RestartPolicy::Never,
        }
    }

    /// Sets the code image.
    #[must_use]
    pub fn image(mut self, image: &[u8]) -> ComponentManifest {
        self.image = image.to_vec();
        self
    }

    /// Sets the line count.
    #[must_use]
    pub fn loc(mut self, loc: u64) -> ComponentManifest {
        self.loc = loc;
        self
    }

    /// Marks the component legacy (assumed compromised).
    #[must_use]
    pub fn legacy(mut self) -> ComponentManifest {
        self.trust = TrustClass::Legacy;
        self
    }

    /// Requires defense against the given attacker models.
    #[must_use]
    pub fn requires(mut self, models: &[AttackerModel]) -> ComponentManifest {
        self.required_defense = models.iter().copied().collect();
        self
    }

    /// Declares an asset.
    #[must_use]
    pub fn asset(mut self, name: &str, sensitivity: Sensitivity) -> ComponentManifest {
        self.assets.push(Asset {
            name: name.to_string(),
            sensitivity,
        });
        self
    }

    /// Declares a channel `label → to` with `badge`.
    #[must_use]
    pub fn channel(mut self, label: &str, to: &str, badge: u64) -> ComponentManifest {
        self.channels.push(ChannelDecl {
            label: label.to_string(),
            to: to.to_string(),
            badge,
        });
        self
    }

    /// Sets the restart policy.
    #[must_use]
    pub fn restart(mut self, policy: RestartPolicy) -> ComponentManifest {
        self.restart = policy;
        self
    }

    /// Shorthand: supervised restart with the given budget and backoff.
    #[must_use]
    pub fn restartable(self, max_restarts: u32, backoff_base: u64) -> ComponentManifest {
        self.restart(RestartPolicy::Restart {
            max_restarts,
            backoff_base,
        })
    }
}

/// A whole application: a set of components and their channel graph.
#[derive(Clone, Debug)]
pub struct AppManifest {
    /// Application name.
    pub name: String,
    /// Minimum web-of-trust review score (in milli-units, `750` =
    /// 0.750) every component image must clear during certification.
    /// `None` uses the registry's default threshold.
    pub wot_threshold: Option<i64>,
    /// The components.
    pub components: Vec<ComponentManifest>,
}

impl AppManifest {
    /// Creates an application manifest from components.
    pub fn new(name: &str, components: Vec<ComponentManifest>) -> AppManifest {
        AppManifest {
            name: name.to_string(),
            wot_threshold: None,
            components,
        }
    }

    /// Sets the per-assembly web-of-trust admission threshold
    /// (milli-units; see the `wot-threshold` manifest directive).
    #[must_use]
    pub fn with_wot_threshold(mut self, milli: i64) -> AppManifest {
        self.wot_threshold = Some(milli);
        self
    }

    /// Looks up a component by name.
    pub fn component(&self, name: &str) -> Option<&ComponentManifest> {
        self.components.iter().find(|c| c.name == name)
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidManifest`] for duplicate component names,
    /// channels to unknown targets, duplicate channel labels within one
    /// component, duplicate asset names across the app, or self-channels.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut names = BTreeSet::new();
        for c in &self.components {
            if !names.insert(&c.name) {
                return Err(CoreError::InvalidManifest(format!(
                    "duplicate component name '{}'",
                    c.name
                )));
            }
        }
        let mut assets = BTreeSet::new();
        for c in &self.components {
            for a in &c.assets {
                if !assets.insert(&a.name) {
                    return Err(CoreError::InvalidManifest(format!(
                        "duplicate asset name '{}'",
                        a.name
                    )));
                }
            }
            let mut labels = BTreeSet::new();
            let mut targets = BTreeSet::new();
            for ch in &c.channels {
                if !labels.insert(&ch.label) {
                    return Err(CoreError::InvalidManifest(format!(
                        "duplicate channel label '{}' in '{}'",
                        ch.label, c.name
                    )));
                }
                if !targets.insert((&ch.to, ch.badge)) {
                    return Err(CoreError::InvalidManifest(format!(
                        "duplicate channel declaration '{}' -> '{}' badge {} in '{}'",
                        ch.label, ch.to, ch.badge, c.name
                    )));
                }
                if ch.to == c.name {
                    return Err(CoreError::InvalidManifest(format!(
                        "component '{}' declares a channel to itself",
                        c.name
                    )));
                }
                if !names.contains(&ch.to) {
                    return Err(CoreError::InvalidManifest(format!(
                        "channel '{}' in '{}' targets unknown component '{}'",
                        ch.label, c.name, ch.to
                    )));
                }
            }
        }
        Ok(())
    }

    /// The inverse channel map: for each component, who may call it
    /// (caller name, badge).
    pub fn inbound(&self) -> BTreeMap<&str, Vec<(&str, u64)>> {
        let mut map: BTreeMap<&str, Vec<(&str, u64)>> = BTreeMap::new();
        for c in &self.components {
            map.entry(c.name.as_str()).or_default();
            for ch in &c.channels {
                map.entry(ch.to.as_str())
                    .or_default()
                    .push((c.name.as_str(), ch.badge));
            }
        }
        map
    }

    /// Total declared lines of application code.
    pub fn total_loc(&self) -> u64 {
        self.components.iter().map(|c| c.loc).sum()
    }

    /// Total number of declared channels.
    pub fn channel_count(&self) -> usize {
        self.components.iter().map(|c| c.channels.len()).sum()
    }

    /// Parses the line-based manifest text format produced by
    /// [`AppManifest::to_text`]:
    ///
    /// ```text
    /// app demo
    /// wot-threshold 750
    /// component meter
    ///   image 6d65746572
    ///   loc 1200
    ///   pages 4
    ///   legacy
    ///   requires remote-software compromised-os
    ///   asset readings personal
    ///   channel report utility 7
    ///   restart 3 1000
    /// component utility
    ///   restart never
    /// ```
    ///
    /// `image` takes the hex-encoded code image; `restart` takes
    /// `never`, `escalate`, or `<max_restarts> <backoff_base>`;
    /// `wot-threshold` is app-level (before the first `component`) and
    /// takes the minimum review score in milli-units. Blank
    /// lines and `#` comments are ignored. The result is validated
    /// before it is returned — adversarial input either parses into a
    /// consistent manifest or fails loudly, never silently half-loads.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidManifest`] on any unknown directive, malformed
    /// number, missing context, or post-parse validation failure.
    pub fn parse(text: &str) -> Result<AppManifest, CoreError> {
        let bad = |line_no: usize, why: &str| {
            CoreError::InvalidManifest(format!("manifest line {}: {why}", line_no + 1))
        };
        let mut app: Option<AppManifest> = None;
        let mut seen_scalars: BTreeSet<String> = BTreeSet::new();
        for (no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let directive = words.next().expect("non-empty line has a first word");
            let rest: Vec<&str> = words.collect();
            if directive == "app" {
                if app.is_some() {
                    return Err(bad(no, "duplicate 'app' line"));
                }
                let [name] = rest.as_slice() else {
                    return Err(bad(no, "expected 'app <name>'"));
                };
                app = Some(AppManifest::new(name, Vec::new()));
                continue;
            }
            let app = app
                .as_mut()
                .ok_or_else(|| bad(no, "directive before 'app' line"))?;
            if directive == "wot-threshold" {
                if !app.components.is_empty() {
                    return Err(bad(no, "'wot-threshold' must precede all components"));
                }
                if app.wot_threshold.is_some() {
                    return Err(bad(no, "duplicate 'wot-threshold' directive"));
                }
                let [milli] = rest.as_slice() else {
                    return Err(bad(no, "expected 'wot-threshold <milli>'"));
                };
                app.wot_threshold = Some(
                    milli
                        .parse()
                        .map_err(|_| bad(no, "malformed wot-threshold"))?,
                );
                continue;
            }
            if directive == "component" {
                let [name] = rest.as_slice() else {
                    return Err(bad(no, "expected 'component <name>'"));
                };
                app.components.push(ComponentManifest::new(name));
                seen_scalars.clear();
                continue;
            }
            let cm = app
                .components
                .last_mut()
                .ok_or_else(|| bad(no, "directive before any 'component'"))?;
            // Scalar directives may appear at most once per component;
            // silently letting a later line overwrite an earlier one is
            // exactly the kind of ambiguity adversarial manifests trade
            // on ("restart never" up top, "restart 9 1" further down).
            let scalar = matches!(
                directive,
                "image" | "loc" | "pages" | "legacy" | "requires" | "restart"
            );
            if scalar && !seen_scalars.insert(directive.to_string()) {
                return Err(bad(no, &format!("duplicate '{directive}' directive")));
            }
            match (directive, rest.as_slice()) {
                ("image", [hex]) => {
                    cm.image = decode_hex(hex).ok_or_else(|| bad(no, "malformed image hex"))?;
                }
                ("loc", [n]) => {
                    cm.loc = n.parse().map_err(|_| bad(no, "malformed loc"))?;
                }
                ("pages", [n]) => {
                    cm.mem_pages = n.parse().map_err(|_| bad(no, "malformed pages"))?;
                }
                ("legacy", []) => cm.trust = TrustClass::Legacy,
                ("requires", models) if !models.is_empty() => {
                    cm.required_defense = models
                        .iter()
                        .map(|m| parse_model(m).ok_or_else(|| bad(no, "unknown attacker model")))
                        .collect::<Result<_, _>>()?;
                }
                ("asset", [name, sens]) => {
                    let sensitivity =
                        parse_sensitivity(sens).ok_or_else(|| bad(no, "unknown sensitivity"))?;
                    cm.assets.push(Asset {
                        name: (*name).to_string(),
                        sensitivity,
                    });
                }
                ("channel", [label, to, badge]) => {
                    let badge = badge.parse().map_err(|_| bad(no, "malformed badge"))?;
                    cm.channels.push(ChannelDecl {
                        label: (*label).to_string(),
                        to: (*to).to_string(),
                        badge,
                    });
                }
                ("restart", ["never"]) => cm.restart = RestartPolicy::Never,
                ("restart", ["escalate"]) => cm.restart = RestartPolicy::Escalate,
                ("restart", [max, base]) => {
                    cm.restart = RestartPolicy::Restart {
                        max_restarts: max.parse().map_err(|_| bad(no, "malformed max_restarts"))?,
                        backoff_base: base
                            .parse()
                            .map_err(|_| bad(no, "malformed backoff_base"))?,
                    };
                }
                _ => return Err(bad(no, "unknown or malformed directive")),
            }
        }
        let app = app.ok_or_else(|| CoreError::InvalidManifest("empty manifest text".into()))?;
        app.validate()?;
        Ok(app)
    }

    /// Serializes to the text format [`AppManifest::parse`] accepts.
    /// `parse(m.to_text())` reproduces `m` (the round-trip the fuzz
    /// suite pins down).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "app {}", self.name);
        if let Some(milli) = self.wot_threshold {
            let _ = writeln!(out, "wot-threshold {milli}");
        }
        for c in &self.components {
            let _ = writeln!(out, "component {}", c.name);
            let _ = writeln!(out, "  image {}", encode_hex(&c.image));
            let _ = writeln!(out, "  loc {}", c.loc);
            let _ = writeln!(out, "  pages {}", c.mem_pages);
            if c.trust == TrustClass::Legacy {
                let _ = writeln!(out, "  legacy");
            }
            let models: Vec<String> = c.required_defense.iter().map(|m| m.to_string()).collect();
            if !models.is_empty() {
                let _ = writeln!(out, "  requires {}", models.join(" "));
            }
            for a in &c.assets {
                let _ = writeln!(
                    out,
                    "  asset {} {}",
                    a.name,
                    sensitivity_name(a.sensitivity)
                );
            }
            for ch in &c.channels {
                let _ = writeln!(out, "  channel {} {} {}", ch.label, ch.to, ch.badge);
            }
            match c.restart {
                RestartPolicy::Never => {
                    let _ = writeln!(out, "  restart never");
                }
                RestartPolicy::Escalate => {
                    let _ = writeln!(out, "  restart escalate");
                }
                RestartPolicy::Restart {
                    max_restarts,
                    backoff_base,
                } => {
                    let _ = writeln!(out, "  restart {max_restarts} {backoff_base}");
                }
            }
        }
        out
    }
}

fn parse_sensitivity(s: &str) -> Option<Sensitivity> {
    match s {
        "public" => Some(Sensitivity::Public),
        "personal" => Some(Sensitivity::Personal),
        "secret" => Some(Sensitivity::Secret),
        _ => None,
    }
}

fn sensitivity_name(s: Sensitivity) -> &'static str {
    match s {
        Sensitivity::Public => "public",
        Sensitivity::Personal => "personal",
        Sensitivity::Secret => "secret",
    }
}

fn parse_model(s: &str) -> Option<AttackerModel> {
    match s {
        "remote-software" => Some(AttackerModel::RemoteSoftware),
        "compromised-os" => Some(AttackerModel::CompromisedOs),
        "malicious-device" => Some(AttackerModel::MaliciousDevice),
        "physical-bus" => Some(AttackerModel::PhysicalBus),
        "physical-boot" => Some(AttackerModel::PhysicalBoot),
        _ => None,
    }
}

fn encode_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn decode_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AppManifest {
        AppManifest::new(
            "mail",
            vec![
                ComponentManifest::new("ui")
                    .channel("render", "renderer", 1)
                    .channel("store", "mail-store", 2),
                ComponentManifest::new("renderer").loc(30_000),
                ComponentManifest::new("mail-store").asset("mail-archive", Sensitivity::Personal),
            ],
        )
    }

    #[test]
    fn valid_manifest_passes() {
        sample().validate().unwrap();
        assert_eq!(sample().channel_count(), 2);
        assert_eq!(sample().total_loc(), 32_000);
    }

    #[test]
    fn duplicate_component_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a"), ComponentManifest::new("a")],
        );
        assert!(matches!(app.validate(), Err(CoreError::InvalidManifest(_))));
    }

    #[test]
    fn unknown_target_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a").channel("c", "ghost", 1)],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn self_channel_rejected() {
        let app = AppManifest::new(
            "x",
            vec![ComponentManifest::new("a").channel("self", "a", 1)],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn duplicate_label_rejected() {
        let app = AppManifest::new(
            "x",
            vec![
                ComponentManifest::new("a")
                    .channel("c", "b", 1)
                    .channel("c", "b", 2),
                ComponentManifest::new("b"),
            ],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn duplicate_asset_rejected() {
        let app = AppManifest::new(
            "x",
            vec![
                ComponentManifest::new("a").asset("k", Sensitivity::Secret),
                ComponentManifest::new("b").asset("k", Sensitivity::Secret),
            ],
        );
        assert!(app.validate().is_err());
    }

    #[test]
    fn duplicate_channel_declaration_rejected() {
        // Same (target, badge) pair under two different labels: the
        // grants would be indistinguishable at the receiving end.
        let app = AppManifest::new(
            "x",
            vec![
                ComponentManifest::new("a")
                    .channel("c1", "b", 1)
                    .channel("c2", "b", 1),
                ComponentManifest::new("b"),
            ],
        );
        assert!(matches!(app.validate(), Err(CoreError::InvalidManifest(_))));
    }

    #[test]
    fn duplicate_scalar_directives_rejected_in_text() {
        for bad in [
            "app a\ncomponent c\nloc 1\nloc 2",
            "app a\ncomponent c\nimage 00\nimage 01",
            "app a\ncomponent c\npages 1\npages 2",
            "app a\ncomponent c\nlegacy\nlegacy",
            "app a\ncomponent c\nrequires remote-software\nrequires compromised-os",
            "app a\ncomponent c\nrestart never\nrestart 9 1",
        ] {
            assert!(AppManifest::parse(bad).is_err(), "accepted: {bad:?}");
        }
        // A fresh component resets the once-per-component tracking.
        let app = AppManifest::parse("app a\ncomponent c\nloc 1\ncomponent d\nloc 2").unwrap();
        assert_eq!(app.components.len(), 2);
    }

    #[test]
    fn text_format_round_trips() {
        let app = AppManifest::new(
            "meterapp",
            vec![
                ComponentManifest::new("meter")
                    .image(b"meter-image")
                    .loc(1_200)
                    .asset("readings", Sensitivity::Personal)
                    .channel("report", "utility", 7)
                    .restartable(3, 1_000),
                ComponentManifest::new("utility")
                    .legacy()
                    .requires(&[AttackerModel::RemoteSoftware, AttackerModel::CompromisedOs])
                    .restart(RestartPolicy::Escalate),
            ],
        );
        let text = app.to_text();
        let parsed = AppManifest::parse(&text).unwrap();
        assert_eq!(parsed.to_text(), text);
        assert_eq!(
            parsed.component("meter").unwrap().restart,
            RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 1_000
            }
        );
        assert_eq!(parsed.component("meter").unwrap().image, b"meter-image");
        assert_eq!(
            parsed.component("utility").unwrap().restart,
            RestartPolicy::Escalate
        );
    }

    #[test]
    fn parse_rejects_malformed_text() {
        for bad in [
            "",
            "component orphan",
            "app a\nloc 3",
            "app a\ncomponent c\nloc nine",
            "app a\ncomponent c\nfrobnicate 1",
            "app a\napp b",
            "app a\ncomponent c\nrestart sometimes",
            "app a\ncomponent c\nimage zz",
            "app a\ncomponent c\nchannel x c 1", // self-channel fails validate()
            "wot-threshold 750\napp a",
            "app a\nwot-threshold 750\nwot-threshold 600",
            "app a\nwot-threshold many",
            "app a\ncomponent c\nwot-threshold 750", // app-level only
        ] {
            assert!(AppManifest::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn wot_threshold_round_trips() {
        let app = AppManifest::new("x", vec![ComponentManifest::new("a")]).with_wot_threshold(750);
        let text = app.to_text();
        assert!(text.contains("wot-threshold 750"));
        let parsed = AppManifest::parse(&text).unwrap();
        assert_eq!(parsed.wot_threshold, Some(750));
        assert_eq!(parsed.to_text(), text);
        // Absent directive stays absent through the round trip.
        let plain = AppManifest::parse("app a\ncomponent c").unwrap();
        assert_eq!(plain.wot_threshold, None);
        assert!(!plain.to_text().contains("wot-threshold"));
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RestartPolicy::Restart {
            max_restarts: 10,
            backoff_base: 100,
        };
        assert_eq!(p.backoff(0), 100);
        assert_eq!(p.backoff(1), 200);
        assert_eq!(p.backoff(6), 6_400);
        assert_eq!(p.backoff(60), 6_400, "capped at 64x base");
        assert_eq!(RestartPolicy::Never.backoff(3), 0);
    }

    #[test]
    fn inbound_map_inverts_channels() {
        let app = sample();
        let inbound = app.inbound();
        assert_eq!(inbound["renderer"], vec![("ui", 1)]);
        assert_eq!(inbound["mail-store"], vec![("ui", 2)]);
        assert!(inbound["ui"].is_empty());
    }
}
