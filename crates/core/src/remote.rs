//! Cross-machine composition: exporting assembly components over the
//! network behind attested secure channels.
//!
//! §III-C: *"By using trust anchors provided by the hardware, our
//! envisioned architecture also extends across the network, allowing
//! trusted component interaction in distributed systems."* This module
//! generalizes the smart-meter pattern into reusable infrastructure:
//!
//! * a [`RemoteServer`] exports one component of an [`Assembly`] at a
//!   network address; every inbound invocation arrives through a secure
//!   channel whose handshake carried **channel-bound attestation
//!   evidence** for the exported component (produced by whatever
//!   substrate it runs on);
//! * a [`RemoteClient`] connects, verifies the evidence against its
//!   [`ChannelPolicy`], optionally attests its *own* local component in
//!   return (mutual attestation), and then issues request/reply calls
//!   that look just like local channel invocations;
//! * both sides only ever exchange bytes through the adversarial
//!   [`Network`], so every man-in-the-middle, relay, and replay test of
//!   `lateral-net` applies unchanged.
//!
//! The driving style is explicitly two-sided — the caller pumps the
//! server between client steps — so experiments can interpose the
//! network adversary at any point.

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_net::channel::{
    encode_evidence, ChannelPolicy, ClientHandshake, PeerInfo, SecureChannel, ServerAwaitFinish,
    ServerHandshake,
};
use lateral_net::session::{
    decode_reply_group, decode_request_group, encode_reply_group, encode_request_group, ReplyEntry,
    RequestEntry, ResumeAccept, ResumeHello, ResumptionTicket, SessionEpoch, TicketStore,
    STATUS_ERR, STATUS_OK, STATUS_OVERLOADED,
};
use lateral_net::sim::Network;
use lateral_net::wire::{put_field, Reader};
use lateral_net::Addr;
use lateral_registry::Registry;
use lateral_substrate::cap::Badge;
use lateral_telemetry::{outcome as span_outcome, SpanId, Telemetry, TraceContext};

use crate::composer::Assembly;
use crate::CoreError;

const MSG_HELLO: u8 = 0;
const MSG_SERVER_HELLO: u8 = 1;
const MSG_FINISH: u8 = 2;
const MSG_REQUEST: u8 = 3;
const MSG_REPLY: u8 = 4;
const MSG_ERROR: u8 = 5;
const MSG_REQ_GROUP: u8 = 6;
const MSG_REPLY_GROUP: u8 = 7;
const MSG_RESUME: u8 = 8;
const MSG_RESUME_OK: u8 = 9;
const MSG_RESUME_REJECT: u8 = 10;

/// Default bound on in-flight multiplexed requests per session, both
/// client-side (submission refusal) and server-side (typed
/// `Overloaded` replies for over-window entries).
pub const DEFAULT_WINDOW: usize = 32;

/// Assembles the [`SessionEpoch`] a resumption ticket must match: the
/// registry's revocation and trust epochs plus the assembly's re-grant
/// epoch. Any of the three moving forces a fresh attestation handshake.
pub fn current_session_epoch(registry: &Registry, assembly: &Assembly) -> SessionEpoch {
    SessionEpoch {
        revocation: registry.revocation_epoch(),
        trust: registry.wot_epoch(),
        regrant: assembly.regrant_epoch(),
    }
}

fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(kind);
    out.extend_from_slice(body);
    out
}

fn unframe(packet: &[u8]) -> Result<(u8, &[u8]), CoreError> {
    packet
        .split_first()
        .map(|(k, body)| (*k, body))
        .ok_or_else(|| CoreError::Substrate("empty packet".into()))
}

/// Splits an opened record body into its propagated [`TraceContext`]
/// and payload, or `None` for a legacy untraced body. The context codec
/// itself is strict; only the *absence* of the envelope is tolerated.
fn split_traced(body: &[u8]) -> Option<(TraceContext, Vec<u8>)> {
    let mut r = Reader::new(body);
    let ctx = TraceContext::decode(r.field().ok()?).ok()?;
    let payload = r.field().ok()?.to_vec();
    r.finish().ok()?;
    Some((ctx, payload))
}

/// What a server exports.
pub struct ServiceExport {
    /// Assembly component that receives remote invocations.
    pub component: String,
    /// Badge remote clients carry when invoking the component.
    pub badge: Badge,
    /// The server's channel identity key.
    pub identity: SigningKey,
    /// Requirements on connecting clients (pinning / attestation).
    pub client_policy: ChannelPolicy,
    /// Attach channel-bound attestation evidence for `component` to the
    /// handshake (requires the component's substrate to support it).
    pub attest: bool,
}

impl std::fmt::Debug for ServiceExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServiceExport({})", self.component)
    }
}

enum ServerSession {
    /// Awaiting the ClientFinish; carries the digest of the evidence
    /// the server attached to its hello (zero when not attesting) so
    /// the resumption ticket minted at FINISH is bound to it.
    AwaitingFinish(ServerAwaitFinish, [u8; 32]),
    Established(Box<SecureChannel>, PeerInfo),
}

/// The server side of one exported service.
pub struct RemoteServer {
    addr: Addr,
    export: ServiceExport,
    sessions: std::collections::BTreeMap<Addr, ServerSession>,
    rng: Drbg,
    telemetry: Telemetry,
    tickets: TicketStore,
    epoch: SessionEpoch,
    window: usize,
}

impl std::fmt::Debug for RemoteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RemoteServer({} at {}, {} sessions)",
            self.export.component,
            self.addr,
            self.sessions.len()
        )
    }
}

impl RemoteServer {
    /// Creates a server for `export`, registering `addr` on `net`.
    pub fn bind(net: &mut Network, addr: Addr, export: ServiceExport) -> RemoteServer {
        net.register(addr.clone());
        let rng = Drbg::from_seed(&[b"lateral.remote.server.", addr.0.as_bytes()].concat());
        RemoteServer {
            addr,
            export,
            sessions: std::collections::BTreeMap::new(),
            rng,
            telemetry: Telemetry::new(),
            tickets: TicketStore::new(64),
            epoch: SessionEpoch {
                revocation: 0,
                trust: 0,
                regrant: 0,
            },
            window: DEFAULT_WINDOW,
        }
    }

    /// The bound address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Installs the session epoch resumption tickets are minted in and
    /// validated against (see [`current_session_epoch`]). Moving the
    /// epoch invalidates every outstanding ticket at redemption time.
    pub fn set_epoch(&mut self, epoch: SessionEpoch) {
        self.epoch = epoch;
    }

    /// The session epoch currently in force.
    pub fn epoch(&self) -> SessionEpoch {
        self.epoch
    }

    /// Bounds the per-group in-flight window: request-group entries
    /// beyond it are answered [`STATUS_OVERLOADED`] instead of served.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// The server's telemetry: accept/serve spans (serve spans adopt
    /// the caller's propagated trace) and remote-layer metrics.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The server's telemetry, writable.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The verified identity of an established client, if any.
    pub fn peer(&self, client: &Addr) -> Option<&PeerInfo> {
        match self.sessions.get(client) {
            Some(ServerSession::Established(_, info)) => Some(info),
            _ => None,
        }
    }

    /// Processes every pending inbound packet, advancing handshakes and
    /// serving requests against `assembly`. Returns the number of
    /// packets handled.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (unknown own address) error; per
    /// -session protocol failures tear down that session and answer the
    /// peer with an error frame, as a real server would.
    pub fn pump(&mut self, net: &mut Network, assembly: &mut Assembly) -> Result<usize, CoreError> {
        let mut handled = 0;
        while let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        {
            handled += 1;
            let reply = self.handle(&packet.from, &packet.payload, assembly);
            let (kind, body) = match reply {
                Ok((kind, body)) => (kind, body),
                Err(e) => {
                    self.sessions.remove(&packet.from);
                    (MSG_ERROR, e.to_string().into_bytes())
                }
            };
            // Losing the reply is the adversary's prerogative.
            let _ = net.send(&self.addr.clone(), &packet.from, &frame(kind, &body));
        }
        Ok(handled)
    }

    fn handle(
        &mut self,
        from: &Addr,
        payload: &[u8],
        assembly: &mut Assembly,
    ) -> Result<(u8, Vec<u8>), CoreError> {
        let (kind, body) = unframe(payload)?;
        match kind {
            MSG_HELLO => {
                let at = self.telemetry.tick();
                let accept = self
                    .telemetry
                    .begin_span(&format!("accept {from}"), "remote", at);
                let pending =
                    match ServerHandshake::accept(&self.export.identity, &mut self.rng, body) {
                        Ok(p) => p,
                        Err(e) => {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(accept, at, span_outcome::FAILED);
                            return Err(CoreError::Substrate(format!("accept: {e}")));
                        }
                    };
                let evidence = if self.export.attest {
                    let at = self.telemetry.tick();
                    let span = self.telemetry.begin_span("attest.evidence", "remote", at);
                    let ev =
                        assembly.attest(&self.export.component, pending.transcript().as_bytes());
                    let at = self.telemetry.tick();
                    match ev {
                        Ok(ev) => {
                            self.telemetry.end_span(span, at, span_outcome::OK);
                            self.telemetry.metrics_mut().incr("remote.attestations", 1);
                            Some(ev)
                        }
                        Err(e) => {
                            self.telemetry.end_span(span, at, span_outcome::FAILED);
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(accept, at, span_outcome::FAILED);
                            return Err(e);
                        }
                    }
                } else {
                    None
                };
                // The ticket minted at FINISH is bound to this evidence:
                // a resumed session inherits exactly the trust artifact
                // the original handshake established.
                let evidence_digest = evidence
                    .as_ref()
                    .map(|ev| Digest::of(&encode_evidence(ev)).0)
                    .unwrap_or([0u8; 32]);
                let (awaiting, server_hello) = pending.respond(evidence, body);
                self.sessions.insert(
                    from.clone(),
                    ServerSession::AwaitingFinish(awaiting, evidence_digest),
                );
                let at = self.telemetry.tick();
                self.telemetry.end_span(accept, at, span_outcome::OK);
                Ok((MSG_SERVER_HELLO, server_hello))
            }
            MSG_FINISH => {
                let (state, evidence_digest) = match self.sessions.remove(from) {
                    Some(ServerSession::AwaitingFinish(s, d)) => (s, d),
                    _ => return Err(CoreError::Substrate("no handshake in progress".into())),
                };
                let (mut channel, info) = state
                    .complete(body, &self.export.client_policy)
                    .map_err(|e| CoreError::Substrate(format!("finish: {e}")))?;
                // Mint a single-use resumption ticket bound to the
                // verified evidence and the epoch in force, sealed with
                // the fresh channel so the secret never rides in clear.
                let ticket =
                    self.tickets
                        .mint(&mut self.rng, info.key, evidence_digest, self.epoch);
                let sealed_ticket = channel.seal(&ticket.encode());
                self.sessions.insert(
                    from.clone(),
                    ServerSession::Established(Box::new(channel), info),
                );
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("session.established", "remote", at, span_outcome::OK);
                self.telemetry.metrics_mut().incr("remote.sessions", 1);
                let mut reply = Vec::new();
                put_field(&mut reply, b"connected");
                put_field(&mut reply, &sealed_ticket);
                Ok((MSG_REPLY, reply))
            }
            MSG_RESUME => {
                let hello = ResumeHello::decode(body)
                    .map_err(|e| CoreError::Substrate(format!("resume hello: {e}")))?;
                match self.tickets.redeem(&hello, &self.epoch, &mut self.rng) {
                    Ok(redeemed) => {
                        let mut channel = redeemed.channel;
                        // Rotate: mint the successor ticket under the
                        // current epoch, sealed with the resumed channel.
                        let next = self.tickets.mint(
                            &mut self.rng,
                            redeemed.peer_key,
                            redeemed.evidence,
                            self.epoch,
                        );
                        let sealed_ticket = channel.seal(&next.encode());
                        self.sessions.insert(
                            from.clone(),
                            ServerSession::Established(
                                Box::new(channel),
                                PeerInfo {
                                    key: redeemed.peer_key,
                                    attested: None,
                                },
                            ),
                        );
                        let at = self.telemetry.tick();
                        self.telemetry
                            .instant("session.resumed", "remote", at, span_outcome::OK);
                        self.telemetry.metrics_mut().incr("remote.resumes", 1);
                        let mut reply = Vec::new();
                        put_field(&mut reply, &redeemed.accept.encode());
                        put_field(&mut reply, &sealed_ticket);
                        Ok((MSG_RESUME_OK, reply))
                    }
                    Err(e) => {
                        // A refusal is a protocol answer, not a session
                        // teardown: the client falls back to the full
                        // attestation handshake.
                        let at = self.telemetry.tick();
                        self.telemetry.instant(
                            "session.resume_reject",
                            "remote",
                            at,
                            span_outcome::FAILED,
                        );
                        self.telemetry
                            .metrics_mut()
                            .incr("remote.resume_rejects", 1);
                        Ok((MSG_RESUME_REJECT, e.to_string().into_bytes()))
                    }
                }
            }
            MSG_REQUEST => {
                let (component, badge) = (self.export.component.clone(), self.export.badge);
                let session = self
                    .sessions
                    .get_mut(from)
                    .ok_or_else(|| CoreError::Substrate("no session".into()))?;
                let ServerSession::Established(channel, _) = session else {
                    return Err(CoreError::Substrate("handshake incomplete".into()));
                };
                let body_plain = match channel.open(body) {
                    Ok(b) => b,
                    Err(e) => {
                        let at = self.telemetry.tick();
                        self.telemetry
                            .instant("channel.open", "channel", at, span_outcome::FAILED);
                        return Err(CoreError::Substrate(format!("record: {e}")));
                    }
                };
                // A traced record lands the serve span in the *caller's*
                // trace; untraced (legacy) requests start a local one.
                let (ctx, request) = match split_traced(&body_plain) {
                    Some((ctx, payload)) => (Some(ctx), payload),
                    None => (None, body_plain),
                };
                let at = self.telemetry.tick();
                let serve = match ctx {
                    Some(ctx) => self.telemetry.begin_span_in(
                        ctx,
                        &format!("serve {component}"),
                        "remote",
                        at,
                    ),
                    None => self
                        .telemetry
                        .begin_span(&format!("serve {component}"), "remote", at),
                };
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.open", "channel", at, span_outcome::OK);
                let reply = match assembly.call_component_badged(&component, badge, &request) {
                    Ok(r) => r,
                    Err(e) => {
                        let at = self.telemetry.tick();
                        self.telemetry.end_span(serve, at, span_outcome::FAILED);
                        self.telemetry
                            .metrics_mut()
                            .incr("remote.serve.failures", 1);
                        return Err(e);
                    }
                };
                let ServerSession::Established(channel, _) =
                    self.sessions.get_mut(from).expect("session checked above")
                else {
                    unreachable!("session type checked above");
                };
                let record = match ctx {
                    Some(ctx) => {
                        // The reply continues the caller's trace, with
                        // the serve span as its causal parent.
                        let reply_ctx = TraceContext {
                            trace_id: ctx.trace_id,
                            parent: serve,
                        };
                        channel.seal_traced(reply_ctx, &reply)
                    }
                    None => channel.seal(&reply),
                };
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.seal", "channel", at, span_outcome::OK);
                let at = self.telemetry.tick();
                self.telemetry.end_span(serve, at, span_outcome::OK);
                self.telemetry.metrics_mut().incr("remote.requests", 1);
                Ok((MSG_REPLY, record))
            }
            MSG_REQ_GROUP => {
                let (component, badge) = (self.export.component.clone(), self.export.badge);
                let window = self.window;
                let session = self
                    .sessions
                    .get_mut(from)
                    .ok_or_else(|| CoreError::Substrate("no session".into()))?;
                let ServerSession::Established(channel, _) = session else {
                    return Err(CoreError::Substrate("handshake incomplete".into()));
                };
                let plain = channel
                    .open(body)
                    .map_err(|e| CoreError::Substrate(format!("record: {e}")))?;
                let mut entries = decode_request_group(&plain)
                    .map_err(|e| CoreError::Substrate(format!("group: {e}")))?;
                // Deterministic serve-and-reply order regardless of how
                // the client interleaved submissions: ascending id.
                entries.sort_by_key(|e| e.id);
                let mut replies = Vec::with_capacity(entries.len());
                for (pos, entry) in entries.iter().enumerate() {
                    if pos >= window {
                        self.telemetry.metrics_mut().incr("remote.overloads", 1);
                        replies.push(ReplyEntry {
                            id: entry.id,
                            status: STATUS_OVERLOADED,
                            payload: format!("in-flight window of {window} exceeded").into_bytes(),
                        });
                        continue;
                    }
                    // Each entry carries its own caller's context: the
                    // serve span adopts THAT trace, so every multiplexed
                    // request lands as a child of its own caller, never
                    // of the session opener or a sibling request.
                    let at = self.telemetry.tick();
                    let serve = self.telemetry.begin_span_in(
                        entry.ctx,
                        &format!("serve {component}"),
                        "remote",
                        at,
                    );
                    match assembly.call_component_badged(&component, badge, &entry.payload) {
                        Ok(r) => {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(serve, at, span_outcome::OK);
                            replies.push(ReplyEntry {
                                id: entry.id,
                                status: STATUS_OK,
                                payload: r,
                            });
                        }
                        Err(e) => {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(serve, at, span_outcome::FAILED);
                            self.telemetry
                                .metrics_mut()
                                .incr("remote.serve.failures", 1);
                            replies.push(ReplyEntry {
                                id: entry.id,
                                status: STATUS_ERR,
                                payload: e.to_string().into_bytes(),
                            });
                        }
                    }
                }
                self.telemetry
                    .metrics_mut()
                    .incr("remote.requests", entries.len() as u64);
                let group = encode_reply_group(&replies);
                let ServerSession::Established(channel, _) =
                    self.sessions.get_mut(from).expect("session checked above")
                else {
                    unreachable!("session type checked above");
                };
                let record = channel.seal(&group);
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.seal", "channel", at, span_outcome::OK);
                Ok((MSG_REPLY_GROUP, record))
            }
            other => Err(CoreError::Substrate(format!("unexpected frame {other}"))),
        }
    }
}

enum ClientSession {
    Idle,
    HelloSent(ClientHandshake),
    FinishSent(Box<SecureChannel>, PeerInfo),
    /// A resumption hello is in flight; holds the ticket being redeemed
    /// and the hello (for the acceptance-proof check).
    ResumeSent(Box<ResumptionTicket>, ResumeHello),
    Established(Box<SecureChannel>, PeerInfo),
}

/// The client side: connects to a [`RemoteServer`] and issues calls.
pub struct RemoteClient {
    addr: Addr,
    server: Addr,
    identity: SigningKey,
    policy: ChannelPolicy,
    /// Locally composed component whose evidence is attached to the
    /// handshake (mutual attestation), if any.
    attest_component: Option<String>,
    state: ClientSession,
    rng: Drbg,
    telemetry: Telemetry,
    /// One open session-root span; connects and requests nest under it
    /// so the whole client lifetime is a single causal tree.
    session_span: SpanId,
    /// The session root's trace id — multiplexed request spans link
    /// into it explicitly (they cannot use stack nesting: concurrent
    /// in-flight spans would nest under each other).
    root_trace: u64,
    connect_span: Option<SpanId>,
    /// In-flight request (legacy lock-step path): its span and the
    /// context it propagated.
    request: Option<(SpanId, TraceContext)>,
    /// Multiplexed in-flight requests by id: span + propagated context.
    pending: std::collections::BTreeMap<u64, (SpanId, TraceContext)>,
    /// Requests submitted but not yet flushed into a sealed group.
    outbox: Vec<RequestEntry>,
    next_req_id: u64,
    /// Client-side in-flight bound; submissions beyond it are refused
    /// with [`CoreError::Overloaded`] before anything hits the wire.
    window: usize,
    /// The resumption ticket from the last connect/resume, if any.
    ticket: Option<ResumptionTicket>,
    /// Peer identity learned at the last full handshake; a resumed
    /// session reuses it (the ticket is bound to the same peer).
    peer_hint: Option<PeerInfo>,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RemoteClient({} → {})", self.addr, self.server)
    }
}

impl RemoteClient {
    /// Creates a client at `addr` targeting `server`.
    pub fn new(
        net: &mut Network,
        addr: Addr,
        server: Addr,
        identity: SigningKey,
        policy: ChannelPolicy,
        attest_component: Option<&str>,
    ) -> RemoteClient {
        net.register(addr.clone());
        let rng = Drbg::from_seed(&[b"lateral.remote.client.", addr.0.as_bytes()].concat());
        let mut telemetry = Telemetry::new();
        let at = telemetry.tick();
        let session_span = telemetry.begin_span(&format!("remote {server}"), "remote", at);
        let root_trace = telemetry
            .context()
            .expect("session root just opened")
            .trace_id;
        RemoteClient {
            addr,
            server,
            identity,
            policy,
            attest_component: attest_component.map(|s| s.to_string()),
            state: ClientSession::Idle,
            rng,
            telemetry,
            session_span,
            root_trace,
            connect_span: None,
            request: None,
            pending: std::collections::BTreeMap::new(),
            outbox: Vec::new(),
            next_req_id: 1,
            window: DEFAULT_WINDOW,
            ticket: None,
            peer_hint: None,
        }
    }

    /// Whether a resumption ticket is held (set on every successful
    /// connect and rotated on every successful resume).
    pub fn has_ticket(&self) -> bool {
        self.ticket.is_some()
    }

    /// Bounds the client-side in-flight window: submissions beyond it
    /// are refused with [`CoreError::Overloaded`] before hitting the
    /// wire.
    pub fn set_window(&mut self, window: usize) {
        self.window = window.max(1);
    }

    /// Multiplexed requests currently awaiting replies (queued ones
    /// included: `pending` spans submit → reply, and unflushed outbox
    /// entries are already in it).
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// The client's telemetry: one session-root span with `connect`
    /// (attestation verification attached) and `request`
    /// (seal/open attached) child spans, plus remote-layer metrics.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The client's telemetry, writable.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The always-open session-root span every connect and request
    /// nests under.
    pub fn session_span(&self) -> SpanId {
        self.session_span
    }

    /// Installs a revocation list into the client's channel policy —
    /// `Registry::revoked_digests()` from `lateral-registry` is the
    /// canonical source. Handshakes from then on reject peer evidence
    /// whose measurement is on the list, so a revoked component cannot
    /// re-authenticate across the network even if its platform and
    /// measurement would otherwise satisfy the trust policy.
    pub fn set_revocations(&mut self, revoked: Vec<[u8; 32]>) {
        self.policy.revoked_measurements = Some(revoked);
    }

    /// Whether the secure session is established.
    pub fn connected(&self) -> bool {
        matches!(self.state, ClientSession::Established(..))
    }

    /// The server's verified identity, once connected.
    pub fn peer(&self) -> Option<&PeerInfo> {
        match &self.state {
            ClientSession::Established(_, info) | ClientSession::FinishSent(_, info) => Some(info),
            _ => None,
        }
    }

    /// Step 1: send the ClientHello.
    ///
    /// # Errors
    ///
    /// Network registration failures.
    pub fn start(&mut self, net: &mut Network) -> Result<(), CoreError> {
        if let Some(old) = self.connect_span.take() {
            // A previous connect attempt never completed.
            let at = self.telemetry.tick();
            self.telemetry.end_span(old, at, span_outcome::FAILED);
        }
        let at = self.telemetry.tick();
        self.connect_span = Some(self.telemetry.begin_span("connect", "remote", at));
        let (state, hello) = ClientHandshake::start(self.identity.clone(), &mut self.rng);
        self.state = ClientSession::HelloSent(state);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_HELLO, &hello),
        )
        .map(|_| ())
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Attempts to resume an earlier session with the held ticket,
    /// skipping the attestation handshake. On success the next
    /// [`RemoteClient::poll_handshake`] establishes the channel; on a
    /// server-side rejection it errors and the caller falls back to
    /// [`RemoteClient::start`] (the ticket is consumed either way).
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when no ticket is held or the network
    /// refuses the send.
    pub fn resume(&mut self, net: &mut Network) -> Result<(), CoreError> {
        let ticket = self
            .ticket
            .take()
            .ok_or_else(|| CoreError::Substrate("no resumption ticket".into()))?;
        if let Some(old) = self.connect_span.take() {
            let at = self.telemetry.tick();
            self.telemetry.end_span(old, at, span_outcome::FAILED);
        }
        let at = self.telemetry.tick();
        self.connect_span = Some(self.telemetry.begin_span("connect.resume", "remote", at));
        let hello = ResumeHello::new(&ticket, &mut self.rng);
        let encoded = hello.encode();
        self.state = ClientSession::ResumeSent(Box::new(ticket), hello);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_RESUME, &encoded),
        )
        .map(|_| ())
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Processes one pending inbound packet (ServerHello or connect
    /// acknowledgment), advancing the handshake. `assembly` is consulted
    /// for mutual-attestation evidence when configured.
    ///
    /// Returns `true` when a packet was consumed.
    ///
    /// # Errors
    ///
    /// Handshake verification failures (the connection is then dead;
    /// call [`RemoteClient::start`] to retry).
    pub fn poll_handshake(
        &mut self,
        net: &mut Network,
        assembly: Option<&mut Assembly>,
    ) -> Result<bool, CoreError> {
        let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Ok(false);
        };
        let (kind, body) = unframe(&packet.payload)?;
        match (
            kind,
            std::mem::replace(&mut self.state, ClientSession::Idle),
        ) {
            (MSG_SERVER_HELLO, ClientSession::HelloSent(state)) => {
                // `finish` verifies the server's channel binding and —
                // under an attesting policy — its attestation evidence,
                // so the verification lands in the connect span's tree.
                let at = self.telemetry.tick();
                let verify = self.telemetry.begin_span("attest.verify", "remote", at);
                let policy = std::mem::take(&mut self.policy);
                let result = state.finish(body, &policy, |transcript| {
                    match (&self.attest_component, assembly) {
                        (Some(name), Some(asm)) => asm.attest(name, transcript.as_bytes()).ok(),
                        _ => None,
                    }
                });
                self.policy = policy;
                let at = self.telemetry.tick();
                let (channel, finish, info) = match result {
                    Ok(parts) => {
                        self.telemetry.end_span(verify, at, span_outcome::OK);
                        parts
                    }
                    Err(e) => {
                        self.telemetry.end_span(verify, at, span_outcome::FAILED);
                        if let Some(c) = self.connect_span.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(c, at, span_outcome::FAILED);
                        }
                        return Err(CoreError::Substrate(format!("handshake: {e}")));
                    }
                };
                self.state = ClientSession::FinishSent(Box::new(channel), info);
                net.send(
                    &self.addr.clone(),
                    &self.server.clone(),
                    &frame(MSG_FINISH, &finish),
                )
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
                Ok(true)
            }
            (MSG_REPLY, ClientSession::FinishSent(mut channel, info)) => {
                // The connected acknowledgment carries the sealed
                // resumption ticket: (marker, sealed-ticket) fields.
                let mut r = Reader::new(body);
                let parsed = (|| -> Result<ResumptionTicket, CoreError> {
                    let marker = r
                        .field()
                        .map_err(|e| CoreError::Substrate(format!("connect ack: {e}")))?;
                    if marker != b"connected" {
                        return Err(CoreError::Substrate("malformed connect ack".into()));
                    }
                    let sealed = r
                        .field()
                        .map_err(|e| CoreError::Substrate(format!("connect ack: {e}")))?;
                    let plain = channel
                        .open(sealed)
                        .map_err(|e| CoreError::Substrate(format!("ticket record: {e}")))?;
                    ResumptionTicket::decode(&plain)
                        .map_err(|e| CoreError::Substrate(format!("ticket: {e}")))
                })();
                let ticket = match parsed {
                    Ok(t) => t,
                    Err(e) => {
                        if let Some(c) = self.connect_span.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(c, at, span_outcome::FAILED);
                        }
                        return Err(e);
                    }
                };
                self.ticket = Some(ticket);
                self.peer_hint = Some(info.clone());
                self.state = ClientSession::Established(channel, info);
                if let Some(c) = self.connect_span.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(c, at, span_outcome::OK);
                }
                self.telemetry.metrics_mut().incr("remote.connects", 1);
                Ok(true)
            }
            (MSG_RESUME_OK, ClientSession::ResumeSent(ticket, hello)) => {
                let parsed = (|| -> Result<(SecureChannel, ResumptionTicket), CoreError> {
                    let mut r = Reader::new(body);
                    let accept = ResumeAccept::decode(
                        r.field()
                            .map_err(|e| CoreError::Substrate(format!("resume ack: {e}")))?,
                    )
                    .map_err(|e| CoreError::Substrate(format!("resume ack: {e}")))?;
                    let sealed = r
                        .field()
                        .map_err(|e| CoreError::Substrate(format!("resume ack: {e}")))?;
                    let mut channel =
                        lateral_net::session::complete_resume(&ticket, &hello, &accept)
                            .map_err(|e| CoreError::Substrate(format!("resume: {e}")))?;
                    let plain = channel
                        .open(sealed)
                        .map_err(|e| CoreError::Substrate(format!("ticket record: {e}")))?;
                    let next = ResumptionTicket::decode(&plain)
                        .map_err(|e| CoreError::Substrate(format!("ticket: {e}")))?;
                    Ok((channel, next))
                })();
                match parsed {
                    Ok((channel, next)) => {
                        self.ticket = Some(next);
                        let info = self.peer_hint.clone().unwrap_or(PeerInfo {
                            key: [0u8; 32],
                            attested: None,
                        });
                        self.state = ClientSession::Established(Box::new(channel), info);
                        if let Some(c) = self.connect_span.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(c, at, span_outcome::OK);
                        }
                        self.telemetry.metrics_mut().incr("remote.resumes", 1);
                        Ok(true)
                    }
                    Err(e) => {
                        if let Some(c) = self.connect_span.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(c, at, span_outcome::FAILED);
                        }
                        Err(e)
                    }
                }
            }
            (MSG_RESUME_REJECT, ClientSession::ResumeSent(..)) => {
                // The ticket is spent (epoch moved or server state was
                // lost); fall back to the full attestation handshake
                // via [`RemoteClient::start`].
                if let Some(c) = self.connect_span.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(c, at, span_outcome::FAILED);
                }
                self.telemetry
                    .metrics_mut()
                    .incr("remote.resume_rejects", 1);
                Err(CoreError::Substrate(format!(
                    "resume rejected: {}",
                    String::from_utf8_lossy(body)
                )))
            }
            (MSG_ERROR, _) => {
                if let Some(c) = self.connect_span.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(c, at, span_outcome::FAILED);
                }
                Err(CoreError::Substrate(format!(
                    "server error: {}",
                    String::from_utf8_lossy(body)
                )))
            }
            (k, state) => {
                self.state = state;
                Err(CoreError::Substrate(format!("unexpected frame {k}")))
            }
        }
    }

    /// Sends one request over the established channel.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when not connected.
    pub fn send_request(&mut self, net: &mut Network, payload: &[u8]) -> Result<(), CoreError> {
        let ClientSession::Established(channel, _) = &mut self.state else {
            return Err(CoreError::Substrate("not connected".into()));
        };
        if let Some((old, _)) = self.request.take() {
            // The previous request's reply never arrived.
            let at = self.telemetry.tick();
            self.telemetry.end_span(old, at, span_outcome::FAILED);
        }
        let at = self.telemetry.tick();
        let span = self.telemetry.begin_span("request", "remote", at);
        let ctx = self.telemetry.context().expect("request span is open");
        let at = self.telemetry.tick();
        let seal_span = self.telemetry.begin_span("channel.seal", "channel", at);
        let record = channel.seal_traced(ctx, payload);
        let at = self.telemetry.tick();
        self.telemetry.end_span(seal_span, at, span_outcome::OK);
        self.request = Some((span, ctx));
        self.telemetry.metrics_mut().incr("remote.requests", 1);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_REQUEST, &record),
        )
        .map(|_| ())
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Queues one multiplexed request and returns its id. Nothing hits
    /// the wire until [`RemoteClient::flush`]; many requests may be in
    /// flight at once, each landing as a child span of its own caller
    /// context under the session root.
    ///
    /// # Errors
    ///
    /// [`CoreError::Overloaded`] when the in-flight window is full;
    /// [`CoreError::Substrate`] when not connected.
    pub fn submit(&mut self, payload: &[u8]) -> Result<u64, CoreError> {
        if !matches!(self.state, ClientSession::Established(..)) {
            return Err(CoreError::Substrate("not connected".into()));
        }
        if self.in_flight() >= self.window {
            self.telemetry.metrics_mut().incr("remote.overloads", 1);
            return Err(CoreError::Overloaded(format!(
                "in-flight window of {} exceeded",
                self.window
            )));
        }
        let id = self.next_req_id;
        self.next_req_id += 1;
        // Linked, not stacked: concurrent request spans are siblings
        // under the session root, never nested under one another.
        let at = self.telemetry.tick();
        let span = self.telemetry.begin_span_linked(
            TraceContext {
                trace_id: self.root_trace,
                parent: self.session_span,
            },
            "request",
            "remote",
            at,
        );
        let ctx = TraceContext {
            trace_id: self.root_trace,
            parent: span,
        };
        self.pending.insert(id, (span, ctx));
        self.outbox.push(RequestEntry {
            id,
            ctx,
            payload: payload.to_vec(),
        });
        self.telemetry.metrics_mut().incr("remote.requests", 1);
        Ok(id)
    }

    /// Seals every queued submission into one request-group record and
    /// sends it. Returns the number of requests flushed.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when not connected or the send fails.
    pub fn flush(&mut self, net: &mut Network) -> Result<usize, CoreError> {
        let ClientSession::Established(channel, _) = &mut self.state else {
            return Err(CoreError::Substrate("not connected".into()));
        };
        if self.outbox.is_empty() {
            return Ok(0);
        }
        let entries = std::mem::take(&mut self.outbox);
        let group = encode_request_group(&entries);
        let record = channel.seal(&group);
        let at = self.telemetry.tick();
        self.telemetry
            .instant("channel.seal", "channel", at, span_outcome::OK);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_REQ_GROUP, &record),
        )
        .map(|_| entries.len())
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Drains one pending reply-group record (if any), ending the span
    /// of every answered request. Returns `(id, outcome)` pairs in the
    /// server's deterministic reply order — ascending id.
    ///
    /// # Errors
    ///
    /// Record verification failures or server-reported errors; per
    /// -request failures are returned *inside* the vec, typed
    /// [`CoreError::Overloaded`] for window refusals.
    #[allow(clippy::type_complexity)]
    pub fn poll_group_replies(
        &mut self,
        net: &mut Network,
    ) -> Result<Vec<(u64, Result<Vec<u8>, CoreError>)>, CoreError> {
        let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Ok(Vec::new());
        };
        let (kind, body) = unframe(&packet.payload)?;
        match kind {
            MSG_REPLY_GROUP => {
                let ClientSession::Established(channel, _) = &mut self.state else {
                    return Err(CoreError::Substrate("not connected".into()));
                };
                let plain = channel
                    .open(body)
                    .map_err(|e| CoreError::Substrate(format!("record: {e}")))?;
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.open", "channel", at, span_outcome::OK);
                let entries = decode_reply_group(&plain)
                    .map_err(|e| CoreError::Substrate(format!("group: {e}")))?;
                let mut out = Vec::with_capacity(entries.len());
                for entry in entries {
                    if let Some((span, _)) = self.pending.remove(&entry.id) {
                        let at = self.telemetry.tick();
                        let outcome = if entry.status == STATUS_OK {
                            span_outcome::OK
                        } else {
                            span_outcome::FAILED
                        };
                        self.telemetry.end_span(span, at, outcome);
                    }
                    let result = match entry.status {
                        STATUS_OK => Ok(entry.payload),
                        STATUS_OVERLOADED => Err(CoreError::Overloaded(
                            String::from_utf8_lossy(&entry.payload).into_owned(),
                        )),
                        _ => Err(CoreError::Substrate(
                            String::from_utf8_lossy(&entry.payload).into_owned(),
                        )),
                    };
                    out.push((entry.id, result));
                }
                Ok(out)
            }
            MSG_ERROR => Err(CoreError::Substrate(format!(
                "server error: {}",
                String::from_utf8_lossy(body)
            ))),
            k => Err(CoreError::Substrate(format!("unexpected frame {k}"))),
        }
    }

    /// Drops the established channel (e.g. the connection went away),
    /// failing every in-flight request span. The resumption ticket is
    /// kept: the next [`RemoteClient::resume`] skips the attestation
    /// handshake if the server's epoch has not moved.
    pub fn disconnect(&mut self) {
        self.state = ClientSession::Idle;
        self.outbox.clear();
        let pending = std::mem::take(&mut self.pending);
        for (_, (span, _)) in pending {
            let at = self.telemetry.tick();
            self.telemetry.end_span(span, at, span_outcome::FAILED);
        }
        if let Some((span, _)) = self.request.take() {
            let at = self.telemetry.tick();
            self.telemetry.end_span(span, at, span_outcome::FAILED);
        }
        if let Some(c) = self.connect_span.take() {
            let at = self.telemetry.tick();
            self.telemetry.end_span(c, at, span_outcome::FAILED);
        }
    }

    /// Receives one pending reply, if any.
    ///
    /// # Errors
    ///
    /// Record verification failures or server-reported errors.
    pub fn poll_reply(&mut self, net: &mut Network) -> Result<Option<Vec<u8>>, CoreError> {
        let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Ok(None);
        };
        let (kind, body) = unframe(&packet.payload)?;
        match kind {
            MSG_REPLY => {
                let ClientSession::Established(channel, _) = &mut self.state else {
                    return Err(CoreError::Substrate("not connected".into()));
                };
                let at = self.telemetry.tick();
                let open_span = self.telemetry.begin_span("channel.open", "channel", at);
                let opened = channel.open_traced(body);
                let at = self.telemetry.tick();
                match opened {
                    Ok((ctx, payload)) => {
                        self.telemetry.end_span(open_span, at, span_outcome::OK);
                        if let Some((span, sent)) = self.request.take() {
                            let echoed = ctx.trace_id == sent.trace_id;
                            let outcome = if echoed {
                                span_outcome::OK
                            } else {
                                span_outcome::FAILED
                            };
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(span, at, outcome);
                            if !echoed {
                                return Err(CoreError::Substrate(
                                    "reply landed in a foreign trace".into(),
                                ));
                            }
                        }
                        Ok(Some(payload))
                    }
                    Err(e) => {
                        self.telemetry.end_span(open_span, at, span_outcome::FAILED);
                        if let Some((span, _)) = self.request.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(span, at, span_outcome::FAILED);
                        }
                        Err(CoreError::Substrate(format!("record: {e}")))
                    }
                }
            }
            MSG_ERROR => {
                if let Some((span, _)) = self.request.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(span, at, span_outcome::FAILED);
                }
                Err(CoreError::Substrate(format!(
                    "server error: {}",
                    String::from_utf8_lossy(body)
                )))
            }
            k => Err(CoreError::Substrate(format!("unexpected frame {k}"))),
        }
    }
}

/// Convenience driver: completes the handshake by alternating client and
/// server steps (for tests and examples; experiments interpose the
/// adversary by driving the steps themselves).
///
/// # Errors
///
/// The first handshake failure from either side.
pub fn establish(
    net: &mut Network,
    client: &mut RemoteClient,
    client_assembly: Option<&mut Assembly>,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
) -> Result<(), CoreError> {
    client.start(net)?;
    server.pump(net, server_assembly)?;
    client.poll_handshake(net, client_assembly)?; // consumes ServerHello
    server.pump(net, server_assembly)?;
    client.poll_handshake(net, None)?; // consumes "connected"
    if client.connected() {
        Ok(())
    } else {
        Err(CoreError::Substrate("handshake did not complete".into()))
    }
}

/// Convenience driver for one request/reply round trip.
///
/// # Errors
///
/// Propagates request, service, and record failures.
pub fn call(
    net: &mut Network,
    client: &mut RemoteClient,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
    payload: &[u8],
) -> Result<Vec<u8>, CoreError> {
    client.send_request(net, payload)?;
    server.pump(net, server_assembly)?;
    client
        .poll_reply(net)?
        .ok_or_else(|| CoreError::Substrate("reply lost in transit".into()))
}

/// Convenience driver: submits every payload as one multiplexed group,
/// flushes, pumps the server once, and collects the replies **in
/// submission order**. One seal/open round trip carries the whole batch.
///
/// # Errors
///
/// Transport/session failures; per-request outcomes (including typed
/// [`CoreError::Overloaded`] refusals) land inside the returned vec.
#[allow(clippy::type_complexity)]
pub fn call_batch(
    net: &mut Network,
    client: &mut RemoteClient,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
    payloads: &[Vec<u8>],
) -> Result<Vec<Result<Vec<u8>, CoreError>>, CoreError> {
    let mut ids = Vec::with_capacity(payloads.len());
    for payload in payloads {
        ids.push(client.submit(payload)?);
    }
    client.flush(net)?;
    server.pump(net, server_assembly)?;
    let mut by_id: std::collections::BTreeMap<u64, Result<Vec<u8>, CoreError>> =
        client.poll_group_replies(net)?.into_iter().collect();
    ids.into_iter()
        .map(|id| {
            by_id
                .remove(&id)
                .ok_or_else(|| CoreError::Substrate(format!("reply {id} lost in transit")))
        })
        .collect()
}

/// Convenience driver: resumes with the held ticket when possible,
/// falling back to the full attestation handshake. Returns `true` when
/// the session was resumed (no re-attestation happened).
///
/// # Errors
///
/// The fallback handshake's failure (a resume rejection alone is not an
/// error — it triggers the fallback).
pub fn resume_or_establish(
    net: &mut Network,
    client: &mut RemoteClient,
    client_assembly: Option<&mut Assembly>,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
) -> Result<bool, CoreError> {
    if client.has_ticket() {
        client.resume(net)?;
        server.pump(net, server_assembly)?;
        if client.poll_handshake(net, None).is_ok() && client.connected() {
            return Ok(true);
        }
    }
    establish(net, client, client_assembly, server, server_assembly)?;
    Ok(false)
}

/// Testkit parity check: on `sub`, interleaved multiplexed requests must
/// each land as a child span of **their own caller**, never of the
/// session opener or a sibling — the E12 guarantee extended to the
/// session layer, uniform across all six backends.
///
/// # Panics
///
/// When the backend breaks the per-request span-lineage guarantee.
pub fn assert_multiplexed_trace_propagation(sub: Box<dyn lateral_substrate::substrate::Substrate>) {
    use crate::manifest::{AppManifest, ComponentManifest};
    use lateral_substrate::component::Component;
    use lateral_substrate::testkit::Counter;

    let backend = sub.profile().name.clone();
    let mut factory = |_: &ComponentManifest| -> Option<Box<dyn Component>> {
        Some(Box::new(Counter::default()))
    };
    let manifest = AppManifest::new("mux-parity", vec![ComponentManifest::new("counter")]);
    let mut asm = crate::composer::compose(&manifest, vec![sub], &mut factory)
        .unwrap_or_else(|e| panic!("[{backend}] compose: {e}"));

    let mut net = Network::new(&format!("mux-{backend}"));
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("svc"),
        ServiceExport {
            component: "counter".into(),
            badge: Badge(0xB0B),
            identity: SigningKey::from_seed(b"mux parity server"),
            client_policy: ChannelPolicy::open(),
            attest: false,
        },
    );
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("client"),
        Addr::new("svc"),
        SigningKey::from_seed(b"mux parity client"),
        ChannelPolicy::open(),
        None,
    );
    establish(&mut net, &mut client, None, &mut server, &mut asm)
        .unwrap_or_else(|e| panic!("[{backend}] establish: {e}"));

    let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8]).collect();
    let mut ids = Vec::new();
    for p in &payloads {
        ids.push(
            client
                .submit(p)
                .unwrap_or_else(|e| panic!("[{backend}] submit: {e}")),
        );
    }
    assert_eq!(
        client.in_flight(),
        4,
        "[{backend}] all four requests in flight before the flush"
    );
    client
        .flush(&mut net)
        .unwrap_or_else(|e| panic!("[{backend}] flush: {e}"));
    server
        .pump(&mut net, &mut asm)
        .unwrap_or_else(|e| panic!("[{backend}] pump: {e}"));
    let replies = client
        .poll_group_replies(&mut net)
        .unwrap_or_else(|e| panic!("[{backend}] poll: {e}"));
    assert_eq!(replies.len(), 4, "[{backend}] every request answered");
    let reply_ids: Vec<u64> = replies.iter().map(|(id, _)| *id).collect();
    assert_eq!(reply_ids, ids, "[{backend}] deterministic ascending order");
    for (id, result) in &replies {
        result
            .as_ref()
            .unwrap_or_else(|e| panic!("[{backend}] request {id} failed: {e}"));
    }
    assert_eq!(client.in_flight(), 0, "[{backend}] window fully drained");

    // Client side: each request span is a *sibling* under the session
    // root, in the root trace.
    let t = client.telemetry();
    let root = client.session_span();
    let root_trace = t
        .open_spans()
        .find(|s| s.id == root)
        .unwrap_or_else(|| panic!("[{backend}] session root still open"))
        .trace_id;
    let request_spans: Vec<_> = t.spans().filter(|s| &*s.name == "request").collect();
    assert_eq!(request_spans.len(), 4, "[{backend}] four request spans");
    for s in &request_spans {
        assert_eq!(
            s.parent, root,
            "[{backend}] request span parents on the session root, not a sibling"
        );
        assert_eq!(s.trace_id, root_trace, "[{backend}] in the root trace");
        assert_eq!(s.outcome, span_outcome::OK, "[{backend}] ended OK");
    }
    // Server side: each serve span adopted its own caller's context —
    // same trace, parented on the matching request span, all distinct.
    let serves: Vec<_> = server
        .telemetry()
        .spans()
        .filter(|s| &*s.name == "serve counter")
        .cloned()
        .collect();
    assert_eq!(serves.len(), 4, "[{backend}] four serve spans");
    let mut serve_parents: Vec<SpanId> = serves.iter().map(|s| s.parent).collect();
    serve_parents.sort();
    serve_parents.dedup();
    assert_eq!(
        serve_parents.len(),
        4,
        "[{backend}] serve spans parent on four DISTINCT request spans"
    );
    let request_ids: std::collections::BTreeSet<SpanId> =
        request_spans.iter().map(|s| s.id).collect();
    for s in &serves {
        assert_eq!(s.trace_id, root_trace, "[{backend}] serve in caller trace");
        assert!(
            request_ids.contains(&s.parent),
            "[{backend}] serve span parents on a request span, not the session opener"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::compose;
    use crate::manifest::{AppManifest, ComponentManifest};
    use lateral_substrate::attest::TrustPolicy;
    use lateral_substrate::component::Component;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::Substrate;
    use lateral_substrate::testkit::{BadgeReporter, Counter, Echo};

    fn factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
        Some(match cm.name.as_str() {
            "counter" => Box::new(Counter::default()),
            "badge-reporter" => Box::new(BadgeReporter),
            _ => Box::new(Echo),
        })
    }

    fn assembly(components: Vec<ComponentManifest>) -> Assembly {
        let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("remote"))];
        compose(&AppManifest::new("remote", components), pool, &mut factory).unwrap()
    }

    fn export(component: &str) -> ServiceExport {
        ServiceExport {
            component: component.to_string(),
            badge: Badge(0x7E57),
            identity: SigningKey::from_seed(b"server identity"),
            client_policy: ChannelPolicy::open(),
            attest: false,
        }
    }

    #[test]
    fn remote_call_lands_in_the_callers_trace_with_sub_spans() {
        let mut net = Network::new("remote-trace");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        call(&mut net, &mut client, &mut server, &mut server_asm, b"x").unwrap();

        let t = client.telemetry();
        let span = |name: &str| {
            t.spans()
                .find(|s| &*s.name == name)
                .unwrap_or_else(|| panic!("client recorded a '{name}' span"))
                .clone()
        };
        let root = client.session_span();
        let root_trace = t.open_spans().find(|s| s.id == root).unwrap().trace_id;
        // connect (with attestation verification attached) and the
        // request (with seal/open attached) are children of the session
        // root — one connected tree.
        let connect = span("connect");
        assert_eq!(connect.parent, root);
        assert_eq!(span("attest.verify").parent, connect.id);
        let request = span("request");
        assert_eq!(request.parent, root);
        assert_eq!(span("channel.seal").parent, request.id);
        assert_eq!(span("channel.open").parent, request.id);
        assert!(t.spans().all(|s| s.trace_id == root_trace));
        // The server's serve span adopted the propagated context: same
        // trace id, parented on the client's request span.
        let serve = server
            .telemetry()
            .spans()
            .find(|s| &*s.name == "serve counter")
            .expect("server recorded the serve span")
            .clone();
        assert_eq!(serve.trace_id, root_trace);
        assert_eq!(serve.parent, request.id);
        assert_eq!(serve.outcome, span_outcome::OK);
        // And the rendered client tree nests request → seal/open.
        let tree = client.telemetry().render_tree();
        assert!(tree.contains("remote svc [remote]"));
        assert!(tree.contains("\n    channel.seal [channel]"));
    }

    #[test]
    fn end_to_end_remote_invocation() {
        let mut net = Network::new("remote-test");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc.example"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client.example"),
            Addr::new("svc.example"),
            SigningKey::from_seed(b"client identity"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        for expected in 1u64..=3 {
            let reply = call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
            assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), expected);
        }
    }

    #[test]
    fn exported_badge_identifies_remote_clients() {
        let mut net = Network::new("remote-badge");
        let mut server_asm = assembly(vec![ComponentManifest::new("badge-reporter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("badge-reporter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        let reply = call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 0x7E57);
    }

    #[test]
    fn pinned_client_rejects_imposter_server() {
        let mut net = Network::new("remote-pin");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut imposter = ServiceExport {
            identity: SigningKey::from_seed(b"imposter"),
            ..export("counter")
        };
        imposter.attest = false;
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), imposter);
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::pin(SigningKey::from_seed(b"server identity").verifying_key()),
            None,
        );
        let err = establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap_err();
        assert!(err.to_string().contains("handshake"));
    }

    #[test]
    fn requests_without_session_are_refused() {
        let mut net = Network::new("remote-nosess");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        assert!(client.send_request(&mut net, b"x").is_err());
        // Raw injected request without a handshake gets an error frame.
        net.inject(
            &Addr::new("client"),
            &Addr::new("svc"),
            &frame(MSG_REQUEST, b"junk"),
        )
        .unwrap();
        server.pump(&mut net, &mut server_asm).unwrap();
        assert!(client.poll_reply(&mut net).is_err());
    }

    #[test]
    fn replayed_request_records_are_rejected() {
        let mut net = Network::new("remote-replay");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
        // The adversary replays the recorded request (packet index 4 =
        // first MSG_REQUEST; compute it robustly instead).
        let idx = net
            .recorded()
            .iter()
            .position(|p| p.payload.first() == Some(&MSG_REQUEST))
            .unwrap();
        net.replay_recorded(idx).unwrap();
        server.pump(&mut net, &mut server_asm).unwrap();
        // The server answered with an error frame; the counter must not
        // have advanced twice: a fresh legitimate call returns 2.
        let _ = client.poll_reply(&mut net); // drain the error
                                             // Session was torn down server-side; reconnect and observe the
                                             // counter only advanced once for the replay attempt.
        let mut client2 = RemoteClient::new(
            &mut net,
            Addr::new("client2"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c2"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client2, None, &mut server, &mut server_asm).unwrap();
        let reply = call(&mut net, &mut client2, &mut server, &mut server_asm, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 2);
    }

    #[test]
    fn multiplexed_batch_round_trips_in_submission_order() {
        let mut net = Network::new("remote-mux");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        let payloads: Vec<Vec<u8>> = (0..5).map(|_| Vec::new()).collect();
        let replies = call_batch(
            &mut net,
            &mut client,
            &mut server,
            &mut server_asm,
            &payloads,
        )
        .unwrap();
        let counts: Vec<u64> = replies
            .into_iter()
            .map(|r| u64::from_le_bytes(r.unwrap().try_into().unwrap()))
            .collect();
        assert_eq!(counts, vec![1, 2, 3, 4, 5]);
        assert_eq!(client.in_flight(), 0);
        // One sealed record carried all five requests.
        assert_eq!(
            server.telemetry().metrics().counter("remote.requests"),
            5,
            "server served five multiplexed requests"
        );
    }

    #[test]
    fn over_window_submissions_are_refused_typed() {
        let mut net = Network::new("remote-window");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        server.set_window(2);
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        client.set_window(2);
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        client.submit(b"").unwrap();
        client.submit(b"").unwrap();
        // Client-side refusal: nothing hits the wire past the window.
        let err = client.submit(b"").unwrap_err();
        assert!(matches!(err, CoreError::Overloaded(_)), "{err}");
        // Server-side refusal: an oversized group (bypassing the client
        // bound) answers OVERLOADED for the excess entries.
        client.set_window(8);
        client.submit(b"").unwrap();
        client.flush(&mut net).unwrap();
        server.pump(&mut net, &mut server_asm).unwrap();
        let replies = client.poll_group_replies(&mut net).unwrap();
        assert_eq!(replies.len(), 3);
        assert!(replies[0].1.is_ok());
        assert!(replies[1].1.is_ok());
        assert!(
            matches!(replies[2].1, Err(CoreError::Overloaded(_))),
            "third entry refused by the server window"
        );
        assert_eq!(server.telemetry().metrics().counter("remote.overloads"), 1);
    }

    #[test]
    fn resumption_skips_the_handshake_and_rotates_the_ticket() {
        let mut net = Network::new("remote-resume");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        assert!(client.has_ticket(), "connect minted a resumption ticket");
        call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();

        client.disconnect();
        assert!(!client.connected());
        assert!(client.has_ticket(), "ticket survives the disconnect");
        let resumed =
            resume_or_establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        assert!(resumed, "ticket redeemed without a fresh handshake");
        assert!(client.has_ticket(), "a rotated successor ticket arrived");
        assert_eq!(client.telemetry().metrics().counter("remote.resumes"), 1);
        // The resumed channel carries traffic: counter continues at 2.
        let reply = call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 2);
    }

    #[test]
    fn epoch_change_forces_reattestation_on_resume() {
        let mut net = Network::new("remote-epoch");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        client.disconnect();
        // The world moved: revocation epoch advances, every outstanding
        // ticket is invalid at redemption time.
        server.set_epoch(lateral_net::session::SessionEpoch {
            revocation: 1,
            trust: 0,
            regrant: 0,
        });
        let resumed =
            resume_or_establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        assert!(!resumed, "stale-epoch ticket fell back to a full handshake");
        assert!(client.connected());
        assert_eq!(
            server
                .telemetry()
                .metrics()
                .counter("remote.resume_rejects"),
            1
        );
        assert_eq!(
            server.telemetry().metrics().counter("remote.sessions"),
            2,
            "two full handshakes total"
        );
    }

    #[test]
    fn multiplexed_parity_assertion_passes_on_software() {
        assert_multiplexed_trace_propagation(Box::new(SoftwareSubstrate::new("mux")));
    }

    #[test]
    fn attested_export_requires_capable_substrate() {
        // The software substrate cannot attest: exporting with attest =
        // true fails the handshake server-side and the client sees the
        // error frame.
        let mut net = Network::new("remote-attest");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut exp = export("counter");
        exp.attest = true;
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), exp);
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            {
                let mut trust = TrustPolicy::new();
                trust.trust_platform(SigningKey::from_seed(b"nobody").verifying_key());
                ChannelPolicy::open().with_attestation(trust)
            },
            None,
        );
        let err = establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap_err();
        assert!(err.to_string().contains("server error"), "{err}");
    }
}
