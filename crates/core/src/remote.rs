//! Cross-machine composition: exporting assembly components over the
//! network behind attested secure channels.
//!
//! §III-C: *"By using trust anchors provided by the hardware, our
//! envisioned architecture also extends across the network, allowing
//! trusted component interaction in distributed systems."* This module
//! generalizes the smart-meter pattern into reusable infrastructure:
//!
//! * a [`RemoteServer`] exports one component of an [`Assembly`] at a
//!   network address; every inbound invocation arrives through a secure
//!   channel whose handshake carried **channel-bound attestation
//!   evidence** for the exported component (produced by whatever
//!   substrate it runs on);
//! * a [`RemoteClient`] connects, verifies the evidence against its
//!   [`ChannelPolicy`], optionally attests its *own* local component in
//!   return (mutual attestation), and then issues request/reply calls
//!   that look just like local channel invocations;
//! * both sides only ever exchange bytes through the adversarial
//!   [`Network`], so every man-in-the-middle, relay, and replay test of
//!   `lateral-net` applies unchanged.
//!
//! The driving style is explicitly two-sided — the caller pumps the
//! server between client steps — so experiments can interpose the
//! network adversary at any point.

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_net::channel::{
    ChannelPolicy, ClientHandshake, PeerInfo, SecureChannel, ServerAwaitFinish, ServerHandshake,
};
use lateral_net::sim::Network;
use lateral_net::wire::Reader;
use lateral_net::Addr;
use lateral_substrate::cap::Badge;
use lateral_telemetry::{outcome as span_outcome, SpanId, Telemetry, TraceContext};

use crate::composer::Assembly;
use crate::CoreError;

const MSG_HELLO: u8 = 0;
const MSG_SERVER_HELLO: u8 = 1;
const MSG_FINISH: u8 = 2;
const MSG_REQUEST: u8 = 3;
const MSG_REPLY: u8 = 4;
const MSG_ERROR: u8 = 5;

fn frame(kind: u8, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(kind);
    out.extend_from_slice(body);
    out
}

fn unframe(packet: &[u8]) -> Result<(u8, &[u8]), CoreError> {
    packet
        .split_first()
        .map(|(k, body)| (*k, body))
        .ok_or_else(|| CoreError::Substrate("empty packet".into()))
}

/// Splits an opened record body into its propagated [`TraceContext`]
/// and payload, or `None` for a legacy untraced body. The context codec
/// itself is strict; only the *absence* of the envelope is tolerated.
fn split_traced(body: &[u8]) -> Option<(TraceContext, Vec<u8>)> {
    let mut r = Reader::new(body);
    let ctx = TraceContext::decode(r.field().ok()?).ok()?;
    let payload = r.field().ok()?.to_vec();
    r.finish().ok()?;
    Some((ctx, payload))
}

/// What a server exports.
pub struct ServiceExport {
    /// Assembly component that receives remote invocations.
    pub component: String,
    /// Badge remote clients carry when invoking the component.
    pub badge: Badge,
    /// The server's channel identity key.
    pub identity: SigningKey,
    /// Requirements on connecting clients (pinning / attestation).
    pub client_policy: ChannelPolicy,
    /// Attach channel-bound attestation evidence for `component` to the
    /// handshake (requires the component's substrate to support it).
    pub attest: bool,
}

impl std::fmt::Debug for ServiceExport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServiceExport({})", self.component)
    }
}

enum ServerSession {
    AwaitingFinish(ServerAwaitFinish),
    Established(Box<SecureChannel>, PeerInfo),
}

/// The server side of one exported service.
pub struct RemoteServer {
    addr: Addr,
    export: ServiceExport,
    sessions: std::collections::BTreeMap<Addr, ServerSession>,
    rng: Drbg,
    telemetry: Telemetry,
}

impl std::fmt::Debug for RemoteServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RemoteServer({} at {}, {} sessions)",
            self.export.component,
            self.addr,
            self.sessions.len()
        )
    }
}

impl RemoteServer {
    /// Creates a server for `export`, registering `addr` on `net`.
    pub fn bind(net: &mut Network, addr: Addr, export: ServiceExport) -> RemoteServer {
        net.register(addr.clone());
        let rng = Drbg::from_seed(&[b"lateral.remote.server.", addr.0.as_bytes()].concat());
        RemoteServer {
            addr,
            export,
            sessions: std::collections::BTreeMap::new(),
            rng,
            telemetry: Telemetry::new(),
        }
    }

    /// The bound address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The server's telemetry: accept/serve spans (serve spans adopt
    /// the caller's propagated trace) and remote-layer metrics.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The server's telemetry, writable.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The verified identity of an established client, if any.
    pub fn peer(&self, client: &Addr) -> Option<&PeerInfo> {
        match self.sessions.get(client) {
            Some(ServerSession::Established(_, info)) => Some(info),
            _ => None,
        }
    }

    /// Processes every pending inbound packet, advancing handshakes and
    /// serving requests against `assembly`. Returns the number of
    /// packets handled.
    ///
    /// # Errors
    ///
    /// Only infrastructure failures (unknown own address) error; per
    /// -session protocol failures tear down that session and answer the
    /// peer with an error frame, as a real server would.
    pub fn pump(&mut self, net: &mut Network, assembly: &mut Assembly) -> Result<usize, CoreError> {
        let mut handled = 0;
        while let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        {
            handled += 1;
            let reply = self.handle(&packet.from, &packet.payload, assembly);
            let (kind, body) = match reply {
                Ok((kind, body)) => (kind, body),
                Err(e) => {
                    self.sessions.remove(&packet.from);
                    (MSG_ERROR, e.to_string().into_bytes())
                }
            };
            // Losing the reply is the adversary's prerogative.
            let _ = net.send(&self.addr.clone(), &packet.from, &frame(kind, &body));
        }
        Ok(handled)
    }

    fn handle(
        &mut self,
        from: &Addr,
        payload: &[u8],
        assembly: &mut Assembly,
    ) -> Result<(u8, Vec<u8>), CoreError> {
        let (kind, body) = unframe(payload)?;
        match kind {
            MSG_HELLO => {
                let at = self.telemetry.tick();
                let accept = self
                    .telemetry
                    .begin_span(&format!("accept {from}"), "remote", at);
                let pending =
                    match ServerHandshake::accept(&self.export.identity, &mut self.rng, body) {
                        Ok(p) => p,
                        Err(e) => {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(accept, at, span_outcome::FAILED);
                            return Err(CoreError::Substrate(format!("accept: {e}")));
                        }
                    };
                let evidence = if self.export.attest {
                    let at = self.telemetry.tick();
                    let span = self.telemetry.begin_span("attest.evidence", "remote", at);
                    let ev =
                        assembly.attest(&self.export.component, pending.transcript().as_bytes());
                    let at = self.telemetry.tick();
                    match ev {
                        Ok(ev) => {
                            self.telemetry.end_span(span, at, span_outcome::OK);
                            Some(ev)
                        }
                        Err(e) => {
                            self.telemetry.end_span(span, at, span_outcome::FAILED);
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(accept, at, span_outcome::FAILED);
                            return Err(e);
                        }
                    }
                } else {
                    None
                };
                let (awaiting, server_hello) = pending.respond(evidence, body);
                self.sessions
                    .insert(from.clone(), ServerSession::AwaitingFinish(awaiting));
                let at = self.telemetry.tick();
                self.telemetry.end_span(accept, at, span_outcome::OK);
                Ok((MSG_SERVER_HELLO, server_hello))
            }
            MSG_FINISH => {
                let state = match self.sessions.remove(from) {
                    Some(ServerSession::AwaitingFinish(s)) => s,
                    _ => return Err(CoreError::Substrate("no handshake in progress".into())),
                };
                let (channel, info) = state
                    .complete(body, &self.export.client_policy)
                    .map_err(|e| CoreError::Substrate(format!("finish: {e}")))?;
                self.sessions.insert(
                    from.clone(),
                    ServerSession::Established(Box::new(channel), info),
                );
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("session.established", "remote", at, span_outcome::OK);
                self.telemetry.metrics_mut().incr("remote.sessions", 1);
                Ok((MSG_REPLY, b"connected".to_vec()))
            }
            MSG_REQUEST => {
                let (component, badge) = (self.export.component.clone(), self.export.badge);
                let session = self
                    .sessions
                    .get_mut(from)
                    .ok_or_else(|| CoreError::Substrate("no session".into()))?;
                let ServerSession::Established(channel, _) = session else {
                    return Err(CoreError::Substrate("handshake incomplete".into()));
                };
                let body_plain = match channel.open(body) {
                    Ok(b) => b,
                    Err(e) => {
                        let at = self.telemetry.tick();
                        self.telemetry
                            .instant("channel.open", "channel", at, span_outcome::FAILED);
                        return Err(CoreError::Substrate(format!("record: {e}")));
                    }
                };
                // A traced record lands the serve span in the *caller's*
                // trace; untraced (legacy) requests start a local one.
                let (ctx, request) = match split_traced(&body_plain) {
                    Some((ctx, payload)) => (Some(ctx), payload),
                    None => (None, body_plain),
                };
                let at = self.telemetry.tick();
                let serve = match ctx {
                    Some(ctx) => self.telemetry.begin_span_in(
                        ctx,
                        &format!("serve {component}"),
                        "remote",
                        at,
                    ),
                    None => self
                        .telemetry
                        .begin_span(&format!("serve {component}"), "remote", at),
                };
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.open", "channel", at, span_outcome::OK);
                let reply = match assembly.call_component_badged(&component, badge, &request) {
                    Ok(r) => r,
                    Err(e) => {
                        let at = self.telemetry.tick();
                        self.telemetry.end_span(serve, at, span_outcome::FAILED);
                        self.telemetry
                            .metrics_mut()
                            .incr("remote.serve.failures", 1);
                        return Err(e);
                    }
                };
                let ServerSession::Established(channel, _) =
                    self.sessions.get_mut(from).expect("session checked above")
                else {
                    unreachable!("session type checked above");
                };
                let record = match ctx {
                    Some(ctx) => {
                        // The reply continues the caller's trace, with
                        // the serve span as its causal parent.
                        let reply_ctx = TraceContext {
                            trace_id: ctx.trace_id,
                            parent: serve,
                        };
                        channel.seal_traced(reply_ctx, &reply)
                    }
                    None => channel.seal(&reply),
                };
                let at = self.telemetry.tick();
                self.telemetry
                    .instant("channel.seal", "channel", at, span_outcome::OK);
                let at = self.telemetry.tick();
                self.telemetry.end_span(serve, at, span_outcome::OK);
                self.telemetry.metrics_mut().incr("remote.requests", 1);
                Ok((MSG_REPLY, record))
            }
            other => Err(CoreError::Substrate(format!("unexpected frame {other}"))),
        }
    }
}

enum ClientSession {
    Idle,
    HelloSent(ClientHandshake),
    FinishSent(Box<SecureChannel>, PeerInfo),
    Established(Box<SecureChannel>, PeerInfo),
}

/// The client side: connects to a [`RemoteServer`] and issues calls.
pub struct RemoteClient {
    addr: Addr,
    server: Addr,
    identity: SigningKey,
    policy: ChannelPolicy,
    /// Locally composed component whose evidence is attached to the
    /// handshake (mutual attestation), if any.
    attest_component: Option<String>,
    state: ClientSession,
    rng: Drbg,
    telemetry: Telemetry,
    /// One open session-root span; connects and requests nest under it
    /// so the whole client lifetime is a single causal tree.
    session_span: SpanId,
    connect_span: Option<SpanId>,
    /// In-flight request: its span and the context it propagated.
    request: Option<(SpanId, TraceContext)>,
}

impl std::fmt::Debug for RemoteClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RemoteClient({} → {})", self.addr, self.server)
    }
}

impl RemoteClient {
    /// Creates a client at `addr` targeting `server`.
    pub fn new(
        net: &mut Network,
        addr: Addr,
        server: Addr,
        identity: SigningKey,
        policy: ChannelPolicy,
        attest_component: Option<&str>,
    ) -> RemoteClient {
        net.register(addr.clone());
        let rng = Drbg::from_seed(&[b"lateral.remote.client.", addr.0.as_bytes()].concat());
        let mut telemetry = Telemetry::new();
        let at = telemetry.tick();
        let session_span = telemetry.begin_span(&format!("remote {server}"), "remote", at);
        RemoteClient {
            addr,
            server,
            identity,
            policy,
            attest_component: attest_component.map(|s| s.to_string()),
            state: ClientSession::Idle,
            rng,
            telemetry,
            session_span,
            connect_span: None,
            request: None,
        }
    }

    /// The client's telemetry: one session-root span with `connect`
    /// (attestation verification attached) and `request`
    /// (seal/open attached) child spans, plus remote-layer metrics.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The client's telemetry, writable.
    pub fn telemetry_mut(&mut self) -> &mut Telemetry {
        &mut self.telemetry
    }

    /// The always-open session-root span every connect and request
    /// nests under.
    pub fn session_span(&self) -> SpanId {
        self.session_span
    }

    /// Installs a revocation list into the client's channel policy —
    /// `Registry::revoked_digests()` from `lateral-registry` is the
    /// canonical source. Handshakes from then on reject peer evidence
    /// whose measurement is on the list, so a revoked component cannot
    /// re-authenticate across the network even if its platform and
    /// measurement would otherwise satisfy the trust policy.
    pub fn set_revocations(&mut self, revoked: Vec<[u8; 32]>) {
        self.policy.revoked_measurements = Some(revoked);
    }

    /// Whether the secure session is established.
    pub fn connected(&self) -> bool {
        matches!(self.state, ClientSession::Established(..))
    }

    /// The server's verified identity, once connected.
    pub fn peer(&self) -> Option<&PeerInfo> {
        match &self.state {
            ClientSession::Established(_, info) | ClientSession::FinishSent(_, info) => Some(info),
            _ => None,
        }
    }

    /// Step 1: send the ClientHello.
    ///
    /// # Errors
    ///
    /// Network registration failures.
    pub fn start(&mut self, net: &mut Network) -> Result<(), CoreError> {
        if let Some(old) = self.connect_span.take() {
            // A previous connect attempt never completed.
            let at = self.telemetry.tick();
            self.telemetry.end_span(old, at, span_outcome::FAILED);
        }
        let at = self.telemetry.tick();
        self.connect_span = Some(self.telemetry.begin_span("connect", "remote", at));
        let (state, hello) = ClientHandshake::start(self.identity.clone(), &mut self.rng);
        self.state = ClientSession::HelloSent(state);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_HELLO, &hello),
        )
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Processes one pending inbound packet (ServerHello or connect
    /// acknowledgment), advancing the handshake. `assembly` is consulted
    /// for mutual-attestation evidence when configured.
    ///
    /// Returns `true` when a packet was consumed.
    ///
    /// # Errors
    ///
    /// Handshake verification failures (the connection is then dead;
    /// call [`RemoteClient::start`] to retry).
    pub fn poll_handshake(
        &mut self,
        net: &mut Network,
        assembly: Option<&mut Assembly>,
    ) -> Result<bool, CoreError> {
        let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Ok(false);
        };
        let (kind, body) = unframe(&packet.payload)?;
        match (
            kind,
            std::mem::replace(&mut self.state, ClientSession::Idle),
        ) {
            (MSG_SERVER_HELLO, ClientSession::HelloSent(state)) => {
                // `finish` verifies the server's channel binding and —
                // under an attesting policy — its attestation evidence,
                // so the verification lands in the connect span's tree.
                let at = self.telemetry.tick();
                let verify = self.telemetry.begin_span("attest.verify", "remote", at);
                let policy = std::mem::take(&mut self.policy);
                let result = state.finish(body, &policy, |transcript| {
                    match (&self.attest_component, assembly) {
                        (Some(name), Some(asm)) => asm.attest(name, transcript.as_bytes()).ok(),
                        _ => None,
                    }
                });
                self.policy = policy;
                let at = self.telemetry.tick();
                let (channel, finish, info) = match result {
                    Ok(parts) => {
                        self.telemetry.end_span(verify, at, span_outcome::OK);
                        parts
                    }
                    Err(e) => {
                        self.telemetry.end_span(verify, at, span_outcome::FAILED);
                        if let Some(c) = self.connect_span.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(c, at, span_outcome::FAILED);
                        }
                        return Err(CoreError::Substrate(format!("handshake: {e}")));
                    }
                };
                self.state = ClientSession::FinishSent(Box::new(channel), info);
                net.send(
                    &self.addr.clone(),
                    &self.server.clone(),
                    &frame(MSG_FINISH, &finish),
                )
                .map_err(|e| CoreError::Substrate(e.to_string()))?;
                Ok(true)
            }
            (MSG_REPLY, ClientSession::FinishSent(channel, info)) if body == b"connected" => {
                self.state = ClientSession::Established(channel, info);
                if let Some(c) = self.connect_span.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(c, at, span_outcome::OK);
                }
                self.telemetry.metrics_mut().incr("remote.connects", 1);
                Ok(true)
            }
            (MSG_ERROR, _) => {
                if let Some(c) = self.connect_span.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(c, at, span_outcome::FAILED);
                }
                Err(CoreError::Substrate(format!(
                    "server error: {}",
                    String::from_utf8_lossy(body)
                )))
            }
            (k, state) => {
                self.state = state;
                Err(CoreError::Substrate(format!("unexpected frame {k}")))
            }
        }
    }

    /// Sends one request over the established channel.
    ///
    /// # Errors
    ///
    /// [`CoreError::Substrate`] when not connected.
    pub fn send_request(&mut self, net: &mut Network, payload: &[u8]) -> Result<(), CoreError> {
        let ClientSession::Established(channel, _) = &mut self.state else {
            return Err(CoreError::Substrate("not connected".into()));
        };
        if let Some((old, _)) = self.request.take() {
            // The previous request's reply never arrived.
            let at = self.telemetry.tick();
            self.telemetry.end_span(old, at, span_outcome::FAILED);
        }
        let at = self.telemetry.tick();
        let span = self.telemetry.begin_span("request", "remote", at);
        let ctx = self.telemetry.context().expect("request span is open");
        let at = self.telemetry.tick();
        let seal_span = self.telemetry.begin_span("channel.seal", "channel", at);
        let record = channel.seal_traced(ctx, payload);
        let at = self.telemetry.tick();
        self.telemetry.end_span(seal_span, at, span_outcome::OK);
        self.request = Some((span, ctx));
        self.telemetry.metrics_mut().incr("remote.requests", 1);
        net.send(
            &self.addr.clone(),
            &self.server.clone(),
            &frame(MSG_REQUEST, &record),
        )
        .map_err(|e| CoreError::Substrate(e.to_string()))
    }

    /// Receives one pending reply, if any.
    ///
    /// # Errors
    ///
    /// Record verification failures or server-reported errors.
    pub fn poll_reply(&mut self, net: &mut Network) -> Result<Option<Vec<u8>>, CoreError> {
        let Some(packet) = net
            .recv(&self.addr)
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Ok(None);
        };
        let (kind, body) = unframe(&packet.payload)?;
        match kind {
            MSG_REPLY => {
                let ClientSession::Established(channel, _) = &mut self.state else {
                    return Err(CoreError::Substrate("not connected".into()));
                };
                let at = self.telemetry.tick();
                let open_span = self.telemetry.begin_span("channel.open", "channel", at);
                let opened = channel.open_traced(body);
                let at = self.telemetry.tick();
                match opened {
                    Ok((ctx, payload)) => {
                        self.telemetry.end_span(open_span, at, span_outcome::OK);
                        if let Some((span, sent)) = self.request.take() {
                            let echoed = ctx.trace_id == sent.trace_id;
                            let outcome = if echoed {
                                span_outcome::OK
                            } else {
                                span_outcome::FAILED
                            };
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(span, at, outcome);
                            if !echoed {
                                return Err(CoreError::Substrate(
                                    "reply landed in a foreign trace".into(),
                                ));
                            }
                        }
                        Ok(Some(payload))
                    }
                    Err(e) => {
                        self.telemetry.end_span(open_span, at, span_outcome::FAILED);
                        if let Some((span, _)) = self.request.take() {
                            let at = self.telemetry.tick();
                            self.telemetry.end_span(span, at, span_outcome::FAILED);
                        }
                        Err(CoreError::Substrate(format!("record: {e}")))
                    }
                }
            }
            MSG_ERROR => {
                if let Some((span, _)) = self.request.take() {
                    let at = self.telemetry.tick();
                    self.telemetry.end_span(span, at, span_outcome::FAILED);
                }
                Err(CoreError::Substrate(format!(
                    "server error: {}",
                    String::from_utf8_lossy(body)
                )))
            }
            k => Err(CoreError::Substrate(format!("unexpected frame {k}"))),
        }
    }
}

/// Convenience driver: completes the handshake by alternating client and
/// server steps (for tests and examples; experiments interpose the
/// adversary by driving the steps themselves).
///
/// # Errors
///
/// The first handshake failure from either side.
pub fn establish(
    net: &mut Network,
    client: &mut RemoteClient,
    client_assembly: Option<&mut Assembly>,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
) -> Result<(), CoreError> {
    client.start(net)?;
    server.pump(net, server_assembly)?;
    client.poll_handshake(net, client_assembly)?; // consumes ServerHello
    server.pump(net, server_assembly)?;
    client.poll_handshake(net, None)?; // consumes "connected"
    if client.connected() {
        Ok(())
    } else {
        Err(CoreError::Substrate("handshake did not complete".into()))
    }
}

/// Convenience driver for one request/reply round trip.
///
/// # Errors
///
/// Propagates request, service, and record failures.
pub fn call(
    net: &mut Network,
    client: &mut RemoteClient,
    server: &mut RemoteServer,
    server_assembly: &mut Assembly,
    payload: &[u8],
) -> Result<Vec<u8>, CoreError> {
    client.send_request(net, payload)?;
    server.pump(net, server_assembly)?;
    client
        .poll_reply(net)?
        .ok_or_else(|| CoreError::Substrate("reply lost in transit".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composer::compose;
    use crate::manifest::{AppManifest, ComponentManifest};
    use lateral_substrate::attest::TrustPolicy;
    use lateral_substrate::component::Component;
    use lateral_substrate::software::SoftwareSubstrate;
    use lateral_substrate::substrate::Substrate;
    use lateral_substrate::testkit::{BadgeReporter, Counter, Echo};

    fn factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
        Some(match cm.name.as_str() {
            "counter" => Box::new(Counter::default()),
            "badge-reporter" => Box::new(BadgeReporter),
            _ => Box::new(Echo),
        })
    }

    fn assembly(components: Vec<ComponentManifest>) -> Assembly {
        let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("remote"))];
        compose(&AppManifest::new("remote", components), pool, &mut factory).unwrap()
    }

    fn export(component: &str) -> ServiceExport {
        ServiceExport {
            component: component.to_string(),
            badge: Badge(0x7E57),
            identity: SigningKey::from_seed(b"server identity"),
            client_policy: ChannelPolicy::open(),
            attest: false,
        }
    }

    #[test]
    fn remote_call_lands_in_the_callers_trace_with_sub_spans() {
        let mut net = Network::new("remote-trace");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        call(&mut net, &mut client, &mut server, &mut server_asm, b"x").unwrap();

        let t = client.telemetry();
        let span = |name: &str| {
            t.spans()
                .find(|s| &*s.name == name)
                .unwrap_or_else(|| panic!("client recorded a '{name}' span"))
                .clone()
        };
        let root = client.session_span();
        let root_trace = t.open_spans().find(|s| s.id == root).unwrap().trace_id;
        // connect (with attestation verification attached) and the
        // request (with seal/open attached) are children of the session
        // root — one connected tree.
        let connect = span("connect");
        assert_eq!(connect.parent, root);
        assert_eq!(span("attest.verify").parent, connect.id);
        let request = span("request");
        assert_eq!(request.parent, root);
        assert_eq!(span("channel.seal").parent, request.id);
        assert_eq!(span("channel.open").parent, request.id);
        assert!(t.spans().all(|s| s.trace_id == root_trace));
        // The server's serve span adopted the propagated context: same
        // trace id, parented on the client's request span.
        let serve = server
            .telemetry()
            .spans()
            .find(|s| &*s.name == "serve counter")
            .expect("server recorded the serve span")
            .clone();
        assert_eq!(serve.trace_id, root_trace);
        assert_eq!(serve.parent, request.id);
        assert_eq!(serve.outcome, span_outcome::OK);
        // And the rendered client tree nests request → seal/open.
        let tree = client.telemetry().render_tree();
        assert!(tree.contains("remote svc [remote]"));
        assert!(tree.contains("\n    channel.seal [channel]"));
    }

    #[test]
    fn end_to_end_remote_invocation() {
        let mut net = Network::new("remote-test");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc.example"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client.example"),
            Addr::new("svc.example"),
            SigningKey::from_seed(b"client identity"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        for expected in 1u64..=3 {
            let reply = call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
            assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), expected);
        }
    }

    #[test]
    fn exported_badge_identifies_remote_clients() {
        let mut net = Network::new("remote-badge");
        let mut server_asm = assembly(vec![ComponentManifest::new("badge-reporter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("badge-reporter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        let reply = call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 0x7E57);
    }

    #[test]
    fn pinned_client_rejects_imposter_server() {
        let mut net = Network::new("remote-pin");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut imposter = ServiceExport {
            identity: SigningKey::from_seed(b"imposter"),
            ..export("counter")
        };
        imposter.attest = false;
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), imposter);
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::pin(SigningKey::from_seed(b"server identity").verifying_key()),
            None,
        );
        let err = establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap_err();
        assert!(err.to_string().contains("handshake"));
    }

    #[test]
    fn requests_without_session_are_refused() {
        let mut net = Network::new("remote-nosess");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        assert!(client.send_request(&mut net, b"x").is_err());
        // Raw injected request without a handshake gets an error frame.
        net.inject(
            &Addr::new("client"),
            &Addr::new("svc"),
            &frame(MSG_REQUEST, b"junk"),
        )
        .unwrap();
        server.pump(&mut net, &mut server_asm).unwrap();
        assert!(client.poll_reply(&mut net).is_err());
    }

    #[test]
    fn replayed_request_records_are_rejected() {
        let mut net = Network::new("remote-replay");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), export("counter"));
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap();
        call(&mut net, &mut client, &mut server, &mut server_asm, b"").unwrap();
        // The adversary replays the recorded request (packet index 4 =
        // first MSG_REQUEST; compute it robustly instead).
        let idx = net
            .recorded()
            .iter()
            .position(|p| p.payload.first() == Some(&MSG_REQUEST))
            .unwrap();
        net.replay_recorded(idx).unwrap();
        server.pump(&mut net, &mut server_asm).unwrap();
        // The server answered with an error frame; the counter must not
        // have advanced twice: a fresh legitimate call returns 2.
        let _ = client.poll_reply(&mut net); // drain the error
                                             // Session was torn down server-side; reconnect and observe the
                                             // counter only advanced once for the replay attempt.
        let mut client2 = RemoteClient::new(
            &mut net,
            Addr::new("client2"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c2"),
            ChannelPolicy::open(),
            None,
        );
        establish(&mut net, &mut client2, None, &mut server, &mut server_asm).unwrap();
        let reply = call(&mut net, &mut client2, &mut server, &mut server_asm, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply.try_into().unwrap()), 2);
    }

    #[test]
    fn attested_export_requires_capable_substrate() {
        // The software substrate cannot attest: exporting with attest =
        // true fails the handshake server-side and the client sees the
        // error frame.
        let mut net = Network::new("remote-attest");
        let mut server_asm = assembly(vec![ComponentManifest::new("counter")]);
        let mut exp = export("counter");
        exp.attest = true;
        let mut server = RemoteServer::bind(&mut net, Addr::new("svc"), exp);
        let mut client = RemoteClient::new(
            &mut net,
            Addr::new("client"),
            Addr::new("svc"),
            SigningKey::from_seed(b"c"),
            {
                let mut trust = TrustPolicy::new();
                trust.trust_platform(SigningKey::from_seed(b"nobody").verifying_key());
                ChannelPolicy::open().with_attestation(trust)
            },
            None,
        );
        let err = establish(&mut net, &mut client, None, &mut server, &mut server_asm).unwrap_err();
        assert!(err.to_string().contains("server error"), "{err}");
    }
}
