//! A Flicker-style late-launch isolation substrate.
//!
//! §II-B: *"The Flicker project has demonstrated that late launch can be
//! used as an isolation mechanism to execute trusted components from
//! within legacy code. Flicker even allows multiple trusted components
//! that are mutually isolated by way of the TPM assigning them different
//! cryptographic identities, but they cannot run concurrently."*
//!
//! This backend implements the unified interface on top of
//! [`lateral_tpm`]'s dynamic root of trust:
//!
//! * every invocation of a domain **is** a late-launch session: the
//!   dynamic PCR is reset, the component image is measured, the handler
//!   runs with the machine to itself, and the PCR is capped on exit;
//! * **no concurrency**: a component that tries to call another domain
//!   mid-session hits the single-session limit of the TPM and receives
//!   [`SubstrateError::Reentrancy`] — Flicker PALs cannot nest;
//! * sealing and unsealing bind to the dynamic-PCR identity of the
//!   launched image, so state persists between sessions only through the
//!   TPM, exactly as in Flicker;
//! * attestation evidence is signed by the TPM's attestation identity
//!   and carries the payload measurement from the dynamic PCR.
//!
//! Each invocation pays the late-launch overhead (the paper's implicit
//! cost of this design: DRTM entry is *expensive*), which makes Flicker
//! the natural ablation point between "TPM only" and "SGX" in the E4
//! cost ladder.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::VerifyingKey;
use lateral_crypto::Digest;
use lateral_substrate::attacker::{models, AttackerModel, Features, SubstrateProfile};
use lateral_substrate::attest::AttestationEvidence;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::Component;
use lateral_substrate::fabric::{self, BackendPolicy, CrossingKind, DomainKind, Fabric};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};
use lateral_tpm::Tpm;

/// Cycles one DRTM entry/exit pair costs (SKINIT/SENTER-class overhead —
/// orders of magnitude above an enclave transition).
pub const LATE_LAUNCH_COST: u64 = 60_000;

/// The Flicker substrate.
pub struct Flicker {
    tpm: Tpm,
    fabric: Fabric,
    memories: Vec<Vec<u8>>,
    session_active: bool,
    clock: u64,
    rng: Drbg,
    profile: SubstrateProfile,
}

impl std::fmt::Debug for Flicker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Flicker({} PALs)", self.fabric.table().len())
    }
}

const PAGE: usize = 4096;

impl Flicker {
    /// Initializes the substrate on a board identified by `seed` (the
    /// TPM identity derives from it).
    pub fn new(seed: &str) -> Flicker {
        Flicker {
            tpm: Tpm::new(seed.as_bytes()),
            fabric: Fabric::new(),
            memories: Vec::new(),
            session_active: false,
            clock: 0,
            rng: Drbg::from_seed(&[b"lateral.flicker.", seed.as_bytes()].concat()),
            profile: SubstrateProfile {
                name: "flicker".to_string(),
                defends: models(&[
                    AttackerModel::RemoteSoftware,
                    // The kernel is *stopped* during a session.
                    AttackerModel::CompromisedOs,
                    // DRTM engages DMA protection over the PAL region.
                    AttackerModel::MaliciousDevice,
                    // The launch instruction is the trust anchor.
                    AttackerModel::PhysicalBoot,
                ]),
                features: Features {
                    spatial_isolation: true,
                    // Everything else is stopped — trivially interference
                    // free *during* a session; the flag is still false
                    // because between sessions the legacy OS owns the
                    // machine and all caches.
                    temporal_isolation: false,
                    memory_encryption: false,
                    trust_anchor: true,
                    attestation: true,
                    sealed_storage: true,
                    // One PAL at a time.
                    max_trusted_domains: Some(1),
                    hosts_legacy_os: true,
                },
                // The Flicker kernel module + PAL shim are tiny.
                tcb_loc: 5_000,
            },
        }
    }

    /// Access to the underlying TPM (verifiers fetch the AIK, tests
    /// inspect the event log).
    pub fn tpm(&self) -> &Tpm {
        &self.tpm
    }
}

impl BackendPolicy for Flicker {
    fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    fn place(&mut self, id: DomainId, _kind: DomainKind) -> Result<(), SubstrateError> {
        let pages = self.fabric.table().get(id)?.spec.mem_pages.max(1);
        debug_assert_eq!(id.0 as usize, self.memories.len());
        self.memories.push(vec![0u8; pages * PAGE]);
        Ok(())
    }

    fn unplace(&mut self, id: DomainId) {
        if let Some(mem) = self.memories.get_mut(id.0 as usize) {
            mem.fill(0);
        }
    }

    fn charge_spawn(&mut self, id: DomainId) -> Result<(), SubstrateError> {
        // Registering a PAL costs one identity-recording launch; the
        // session is over before on_start runs.
        let image = self.fabric.table().get(id)?.spec.image.clone();
        let session = self
            .tpm
            .late_launch(&image)
            .map_err(|e| SubstrateError::Platform(e.to_string()))?;
        drop(session);
        self.session_active = false;
        self.clock += LATE_LAUNCH_COST;
        Ok(())
    }

    fn begin_invoke(&mut self, _caller: DomainId, target: DomainId) -> Result<(), SubstrateError> {
        // One session at a time: a PAL calling another PAL would need a
        // second concurrent late launch — Flicker cannot do that.
        if self.session_active {
            return Err(SubstrateError::Reentrancy(target));
        }
        let image = self.fabric.table().get(target)?.spec.image.clone();
        // Enter the session: reset + measure + run.
        {
            let session = self
                .tpm
                .late_launch(&image)
                .map_err(|_| SubstrateError::Reentrancy(target))?;
            drop(session); // identity recorded; handler runs "inside"
        }
        self.session_active = true;
        Ok(())
    }

    fn end_invoke(&mut self, _caller: DomainId, _target: DomainId) {
        self.session_active = false;
    }

    fn crossing(
        &self,
        _caller: DomainId,
        _target: DomainId,
    ) -> Result<CrossingKind, SubstrateError> {
        // Every invocation is a DRTM entry/exit pair.
        Ok(CrossingKind::LateLaunch)
    }

    fn crossing_cost(&self, _kind: CrossingKind, bytes: usize) -> u64 {
        LATE_LAUNCH_COST + bytes as u64 / 8
    }

    fn cost_model(&self) -> fabric::CrossingCostModel {
        // Every invocation is a DRTM entry/exit pair.
        fabric::CrossingCostModel::uniform(
            &self.profile.name,
            LATE_LAUNCH_COST,
            1,
            8,
            fabric::InvokeKindRule::Always(CrossingKind::LateLaunch),
        )
    }

    fn advance_clock(&mut self, cycles: u64) {
        self.clock += cycles;
    }

    fn seal_blob(
        &mut self,
        domain: DomainId,
        _measurement: &Digest,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        // Seal under the domain's dynamic-PCR identity: launch, seal, cap.
        let image = self.fabric.table().get(domain)?.spec.image.clone();
        let was_active = std::mem::replace(&mut self.session_active, false);
        let session = self
            .tpm
            .late_launch(&image)
            .map_err(|e| SubstrateError::Platform(e.to_string()))?;
        let blob = session.seal(data);
        drop(session);
        self.session_active = was_active;
        self.clock += LATE_LAUNCH_COST;
        // Serialize: selection is implicit (dynamic PCR); ship ciphertext.
        Ok(blob.ciphertext)
    }

    fn unseal_blob(
        &mut self,
        domain: DomainId,
        _measurement: &Digest,
        sealed: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        let image = self.fabric.table().get(domain)?.spec.image.clone();
        let was_active = std::mem::replace(&mut self.session_active, false);
        let session = self
            .tpm
            .late_launch(&image)
            .map_err(|e| SubstrateError::Platform(e.to_string()))?;
        let blob = lateral_tpm::SealedBlob {
            selection: vec![lateral_tpm::PCR_DYNAMIC],
            ciphertext: sealed.to_vec(),
        };
        let out = session
            .unseal(&blob)
            .map_err(|_| SubstrateError::CryptoFailure("unseal failed: wrong PAL identity".into()));
        drop(session);
        self.session_active = was_active;
        self.clock += LATE_LAUNCH_COST;
        out
    }

    fn attest_evidence(
        &mut self,
        _domain: DomainId,
        measurement: Digest,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        Ok(AttestationEvidence::sign(
            "flicker",
            self.tpm.platform_signing_key(),
            measurement,
            Digest::ZERO,
            report_data,
        ))
    }
}

impl Substrate for Flicker {
    fn profile(&self) -> &SubstrateProfile {
        &self.profile
    }

    fn spawn(
        &mut self,
        spec: DomainSpec,
        component: Box<dyn Component>,
    ) -> Result<DomainId, SubstrateError> {
        fabric::spawn(self, spec, component, DomainKind::Trusted)
    }

    fn destroy(&mut self, domain: DomainId) -> Result<(), SubstrateError> {
        fabric::destroy(self, domain)
    }

    fn grant_channel(
        &mut self,
        from: DomainId,
        to: DomainId,
        badge: Badge,
    ) -> Result<ChannelCap, SubstrateError> {
        fabric::grant_channel(self, from, to, badge)
    }

    fn revoke_channel(&mut self, cap: &ChannelCap) -> Result<(), SubstrateError> {
        fabric::revoke_channel(self, cap)
    }

    fn invoke(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        data: &[u8],
    ) -> Result<Vec<u8>, SubstrateError> {
        fabric::invoke(self, caller, cap, data)
    }

    fn invoke_batch(
        &mut self,
        caller: DomainId,
        cap: &ChannelCap,
        payloads: &[&[u8]],
    ) -> Result<Vec<Vec<u8>>, SubstrateError> {
        fabric::invoke_batch(self, caller, cap, payloads)
    }

    fn measurement(&self, domain: DomainId) -> Result<Digest, SubstrateError> {
        fabric::measurement(self, domain)
    }

    fn domain_name(&self, domain: DomainId) -> Result<String, SubstrateError> {
        fabric::domain_name(self, domain)
    }

    fn seal(&mut self, domain: DomainId, data: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::seal(self, domain, data)
    }

    fn unseal(&mut self, domain: DomainId, sealed: &[u8]) -> Result<Vec<u8>, SubstrateError> {
        fabric::unseal(self, domain, sealed)
    }

    fn attest(
        &mut self,
        domain: DomainId,
        report_data: &[u8],
    ) -> Result<AttestationEvidence, SubstrateError> {
        fabric::attest(self, domain, report_data)
    }

    fn platform_verifying_key(&self) -> Result<VerifyingKey, SubstrateError> {
        Ok(self.tpm.attestation_key())
    }

    fn mem_read(
        &mut self,
        domain: DomainId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, SubstrateError> {
        self.fabric.table().get(domain)?;
        let mem = &self.memories[domain.0 as usize];
        let end = offset
            .checked_add(len)
            .filter(|e| *e <= mem.len())
            .ok_or_else(|| SubstrateError::AccessDenied("PAL memory out of range".into()))?;
        Ok(mem[offset..end].to_vec())
    }

    fn mem_write(
        &mut self,
        domain: DomainId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), SubstrateError> {
        self.fabric.table().get(domain)?;
        let mem = &mut self.memories[domain.0 as usize];
        let end = offset
            .checked_add(data.len())
            .filter(|e| *e <= mem.len())
            .ok_or_else(|| SubstrateError::AccessDenied("PAL memory out of range".into()))?;
        mem[offset..end].copy_from_slice(data);
        Ok(())
    }

    fn rng_u64(&mut self, domain: DomainId) -> u64 {
        let mut child = self.rng.fork(&format!("pal-{}", domain.0));
        child.next_u64()
    }

    fn now(&self) -> u64 {
        self.clock
    }

    fn charge_cycles(&mut self, cycles: u64) {
        BackendPolicy::advance_clock(self, cycles);
    }

    fn list_caps(&self, domain: DomainId) -> Result<Vec<ChannelCap>, SubstrateError> {
        fabric::list_caps(self, domain)
    }

    fn fabric_ref(&self) -> Option<&Fabric> {
        Some(&self.fabric)
    }

    fn fabric_mut_ref(&mut self) -> Option<&mut Fabric> {
        Some(&mut self.fabric)
    }

    fn cost_model(&self) -> Option<fabric::CrossingCostModel> {
        Some(BackendPolicy::cost_model(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_substrate::attest::TrustPolicy;
    use lateral_substrate::conformance;
    use lateral_substrate::testkit::{Echo, Forwarder};

    #[test]
    fn conformance_suite_passes() {
        let mut f = Flicker::new("conf");
        let report = conformance::run(&mut f);
        for c in &report.checks {
            assert!(
                c.outcome.acceptable(),
                "feature {} failed: {}",
                c.feature,
                c.outcome
            );
        }
        assert_eq!(
            report.outcome("attestation"),
            Some(&conformance::Outcome::Pass)
        );
    }

    #[test]
    fn pals_cannot_nest() {
        // A→B works on every other substrate (microkernel test proves
        // it); on Flicker the nested session is refused.
        let mut f = Flicker::new("nest");
        let b = f.spawn(DomainSpec::named("pal-b"), Box::new(Echo)).unwrap();
        let a = f
            .spawn(DomainSpec::named("pal-a"), Box::new(Forwarder))
            .unwrap();
        f.grant_channel(a, b, Badge(1)).unwrap();
        let driver = f
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = f.grant_channel(driver, a, Badge(2)).unwrap();
        let err = f.invoke(driver, &cap, b"chain").unwrap_err();
        assert!(
            matches!(err, SubstrateError::ComponentFailure(ref m) if m.contains("forward")),
            "nested PAL call must fail: {err}"
        );
    }

    #[test]
    fn sealed_state_survives_reboot_same_pal_only() {
        let blob = {
            let mut f = Flicker::new("board-9");
            let pal = f
                .spawn(
                    DomainSpec::named("pw-checker").with_image(b"pal v1"),
                    Box::new(Echo),
                )
                .unwrap();
            f.seal(pal, b"password digest").unwrap()
        };
        // "Reboot": a fresh Flicker on the same board/TPM.
        let mut f = Flicker::new("board-9");
        let same = f
            .spawn(
                DomainSpec::named("pw-checker").with_image(b"pal v1"),
                Box::new(Echo),
            )
            .unwrap();
        assert_eq!(f.unseal(same, &blob).unwrap(), b"password digest");
        let other = f
            .spawn(
                DomainSpec::named("evil").with_image(b"pal v2"),
                Box::new(Echo),
            )
            .unwrap();
        assert!(f.unseal(other, &blob).is_err());
    }

    #[test]
    fn attestation_verifies_through_standard_policy() {
        let mut f = Flicker::new("attest");
        let pal = f
            .spawn(
                DomainSpec::named("pal").with_image(b"pal v1"),
                Box::new(Echo),
            )
            .unwrap();
        let ev = f.attest(pal, b"bind").unwrap();
        let mut policy = TrustPolicy::new();
        policy.trust_platform(f.platform_verifying_key().unwrap());
        policy.expect_measurement(f.measurement(pal).unwrap());
        assert!(policy.verify(&ev).is_ok());
        assert_eq!(ev.substrate, "flicker");
    }

    #[test]
    fn every_invoke_pays_the_drtm_price() {
        let mut f = Flicker::new("cost");
        let pal = f.spawn(DomainSpec::named("pal"), Box::new(Echo)).unwrap();
        let driver = f
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = f.grant_channel(driver, pal, Badge(1)).unwrap();
        let t0 = f.now();
        f.invoke(driver, &cap, b"x").unwrap();
        assert!(f.now() - t0 >= LATE_LAUNCH_COST);
    }

    #[test]
    fn tpm_event_log_records_every_launch() {
        let mut f = Flicker::new("log");
        let pal = f.spawn(DomainSpec::named("pal"), Box::new(Echo)).unwrap();
        let driver = f
            .spawn(DomainSpec::named("driver"), Box::new(Echo))
            .unwrap();
        let cap = f.grant_channel(driver, pal, Badge(1)).unwrap();
        let before = f.tpm().event_log().len();
        f.invoke(driver, &cap, b"x").unwrap();
        assert!(f.tpm().event_log().len() > before);
        assert!(f.tpm().event_log().iter().any(|e| e.event == "late-launch"));
    }
}
