//! A Trusted Platform Module (TPM) model.
//!
//! §II-B of the paper describes the TPM's three purposes — hardware key
//! storage, key release gated on the measured software stack, and signed
//! attestation of that stack — plus the *late launch* extension
//! demonstrated by Flicker. This crate models all of them:
//!
//! * [`pcr`] — the Platform Configuration Register bank and event log;
//!   the [`Tpm`] implements [`lateral_hw::bootrom::Measurer`], so a boot
//!   ROM configured for authenticated boot acts as the CRTM.
//! * [`quote`] — signed attestation of selected PCRs with a verifier
//!   nonce.
//! * [`seal`] — data sealed to a PCR policy ("BitLocker releases the
//!   full-disk-encryption key … only to a correct version of Windows").
//! * [`late_launch`] — the Flicker-style dynamic root of trust: stop
//!   everything, reset the dynamic PCR, measure a small payload, run it
//!   isolated; mutually isolated sessions cannot run concurrently.
//!
//! # Example
//!
//! ```
//! use lateral_tpm::Tpm;
//!
//! let mut tpm = Tpm::new(b"device 7");
//! tpm.extend(0, b"bootloader v1");
//! tpm.extend(0, b"kernel v1");
//! let quote = tpm.quote(&[0], b"verifier nonce");
//! assert!(quote.verify(&tpm.attestation_key(), b"verifier nonce").is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod late_launch;
pub mod pcr;
pub mod quote;
pub mod seal;

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::{SigningKey, VerifyingKey};
use lateral_crypto::Digest;
use lateral_hw::bootrom::Measurer;

use std::error::Error;
use std::fmt;

pub use pcr::{EventLogEntry, PcrBank, PCR_COUNT, PCR_DYNAMIC};
pub use quote::Quote;
pub use seal::SealedBlob;

/// Errors raised by TPM operations.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum TpmError {
    /// PCR index out of range.
    BadPcrIndex(usize),
    /// Unsealing failed: PCR policy not satisfied or blob tampered.
    UnsealDenied(String),
    /// A late-launch session is already active (they cannot run
    /// concurrently, as in Flicker).
    LateLaunchBusy,
    /// Quote verification failed.
    BadQuote(String),
}

impl fmt::Display for TpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpmError::BadPcrIndex(i) => write!(f, "PCR index {i} out of range"),
            TpmError::UnsealDenied(r) => write!(f, "unseal denied: {r}"),
            TpmError::LateLaunchBusy => write!(f, "a late-launch session is already active"),
            TpmError::BadQuote(r) => write!(f, "bad quote: {r}"),
        }
    }
}

impl Error for TpmError {}

/// The TPM chip: PCR bank, event log, keys, seal/unseal, quote.
pub struct Tpm {
    pcrs: PcrBank,
    event_log: Vec<EventLogEntry>,
    /// Attestation identity key; its public half is endorsed (signed) by
    /// the manufacturer in real deployments. We expose it directly.
    aik: SigningKey,
    /// Storage root secret for sealing.
    srk: [u8; 32],
    late_launch_active: bool,
}

impl fmt::Debug for Tpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tpm(events={})", self.event_log.len())
    }
}

impl Tpm {
    /// Manufactures a TPM with identity derived from `seed` (the same
    /// seed always yields the same chip, modeling fused identity).
    pub fn new(seed: &[u8]) -> Tpm {
        let mut rng = Drbg::from_seed(&[b"lateral.tpm.", seed].concat());
        Tpm {
            pcrs: PcrBank::new(),
            event_log: Vec::new(),
            aik: SigningKey::generate(&mut rng),
            srk: rng.gen_key(),
            late_launch_active: false,
        }
    }

    /// The public attestation key (what the manufacturer endorses).
    pub fn attestation_key(&self) -> VerifyingKey {
        self.aik.verifying_key()
    }

    /// Model-internal: the attestation identity key itself, exposed so
    /// platform-model crates (e.g. the Flicker substrate) can translate
    /// TPM-rooted identity into unified attestation evidence. A real TPM
    /// never exports this key; do not use it outside platform models.
    #[doc(hidden)]
    pub fn platform_signing_key(&self) -> &SigningKey {
        &self.aik
    }

    /// Extends PCR `index` with the digest of `data` and logs the event.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (program error; runtime paths use
    /// checked variants).
    pub fn extend(&mut self, index: usize, data: &[u8]) {
        let digest = Digest::of(data);
        self.extend_digest(index, "extend", digest);
    }

    /// Extends PCR `index` with a precomputed digest.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn extend_digest(&mut self, index: usize, event: &str, digest: Digest) {
        self.pcrs.extend(index, digest).expect("PCR index in range");
        self.event_log.push(EventLogEntry {
            pcr: index,
            event: event.to_string(),
            digest,
        });
    }

    /// Reads PCR `index`.
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::BadPcrIndex`] when out of range.
    pub fn read_pcr(&self, index: usize) -> Result<Digest, TpmError> {
        self.pcrs.read(index).ok_or(TpmError::BadPcrIndex(index))
    }

    /// The event log recorded so far (the "cryptographic boot log").
    pub fn event_log(&self) -> &[EventLogEntry] {
        &self.event_log
    }

    /// The composite digest over a PCR selection (what quotes sign and
    /// seals bind to).
    pub fn composite(&self, selection: &[usize]) -> Digest {
        self.pcrs.composite(selection)
    }

    /// Produces a signed quote over `selection`, bound to `nonce`.
    pub fn quote(&self, selection: &[usize], nonce: &[u8]) -> Quote {
        Quote::sign(&self.aik, &self.pcrs, selection, nonce)
    }

    /// Seals `data` so it can only be unsealed while the selected PCRs
    /// hold their current values.
    pub fn seal(&self, selection: &[usize], data: &[u8]) -> SealedBlob {
        SealedBlob::seal(&self.srk, &self.pcrs, selection, data)
    }

    /// Unseals a blob if the current PCR values satisfy its policy.
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::UnsealDenied`] if the platform state changed or
    /// the blob was tampered with.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, TpmError> {
        blob.unseal(&self.srk, &self.pcrs)
    }

    /// Starts a late-launch session (see [`late_launch`]).
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::LateLaunchBusy`] if a session is active.
    pub fn late_launch(
        &mut self,
        payload_image: &[u8],
    ) -> Result<late_launch::LateLaunchSession<'_>, TpmError> {
        late_launch::LateLaunchSession::start(self, payload_image)
    }

    pub(crate) fn pcrs_mut(&mut self) -> &mut PcrBank {
        &mut self.pcrs
    }

    pub(crate) fn late_launch_flag(&mut self) -> &mut bool {
        &mut self.late_launch_active
    }
}

impl Measurer for Tpm {
    /// The CRTM path: authenticated boot extends PCR 0 with every stage.
    fn measure(&mut self, name: &str, digest: Digest) {
        self.pcrs.extend(0, digest).expect("PCR 0 exists");
        self.event_log.push(EventLogEntry {
            pcr: 0,
            event: format!("boot:{name}"),
            digest,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::bootrom::{BootRom, BootStage, LaunchPolicy};

    #[test]
    fn same_seed_same_identity() {
        let a = Tpm::new(b"chip 1");
        let b = Tpm::new(b"chip 1");
        let c = Tpm::new(b"chip 2");
        assert_eq!(a.attestation_key(), b.attestation_key());
        assert_ne!(a.attestation_key(), c.attestation_key());
    }

    #[test]
    fn authenticated_boot_fills_pcr0_and_log() {
        let mut tpm = Tpm::new(b"boot test");
        let rom = BootRom::new(LaunchPolicy::authenticated_boot());
        let chain = vec![
            BootStage::new("bootloader", b"bl"),
            BootStage::new("kernel", b"k"),
        ];
        rom.boot(&chain, &mut tpm).unwrap();
        assert_ne!(tpm.read_pcr(0).unwrap(), Digest::ZERO);
        assert_eq!(tpm.event_log().len(), 2);
        assert!(tpm.event_log()[0].event.starts_with("boot:"));
    }

    #[test]
    fn boot_log_can_be_replayed_to_verify_pcr() {
        // A verifier replays the event log and checks it matches PCR 0 —
        // the standard TPM verification flow.
        let mut tpm = Tpm::new(b"replay");
        tpm.extend(0, b"stage a");
        tpm.extend(0, b"stage b");
        let mut replay = Digest::ZERO;
        for e in tpm.event_log() {
            assert_eq!(e.pcr, 0);
            replay = replay.extend(e.digest.as_bytes());
        }
        assert_eq!(replay, tpm.read_pcr(0).unwrap());
    }

    #[test]
    fn different_boot_orders_differ() {
        let mut t1 = Tpm::new(b"x");
        let mut t2 = Tpm::new(b"x");
        t1.extend(0, b"a");
        t1.extend(0, b"b");
        t2.extend(0, b"b");
        t2.extend(0, b"a");
        assert_ne!(t1.read_pcr(0).unwrap(), t2.read_pcr(0).unwrap());
    }

    #[test]
    fn bad_pcr_index_is_reported() {
        let tpm = Tpm::new(b"range");
        assert_eq!(
            tpm.read_pcr(PCR_COUNT),
            Err(TpmError::BadPcrIndex(PCR_COUNT))
        );
    }
}
