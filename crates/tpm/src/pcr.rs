//! Platform Configuration Registers.
//!
//! A PCR can only be *extended* — `new = H(old ‖ measurement)` — never
//! written, so the register value commits to the entire ordered history of
//! measurements. Static PCRs reset only at power-on; the dynamic PCR
//! ([`PCR_DYNAMIC`]) additionally resets when a late launch begins.

use lateral_crypto::Digest;

/// Number of PCRs in the bank (TPM 1.2 ships 24).
pub const PCR_COUNT: usize = 24;

/// The dynamic PCR reset by late launch (PCR 17 on real hardware).
pub const PCR_DYNAMIC: usize = 17;

/// One entry of the measurement event log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventLogEntry {
    /// PCR the event extended.
    pub pcr: usize,
    /// Event description ("boot:kernel", "extend", "late-launch").
    pub event: String,
    /// The measurement extended into the PCR.
    pub digest: Digest,
}

/// The PCR bank.
#[derive(Clone, Debug)]
pub struct PcrBank {
    pcrs: [Digest; PCR_COUNT],
}

impl Default for PcrBank {
    fn default() -> Self {
        Self::new()
    }
}

impl PcrBank {
    /// All PCRs zeroed (power-on state).
    pub fn new() -> PcrBank {
        PcrBank {
            pcrs: [Digest::ZERO; PCR_COUNT],
        }
    }

    /// Extends `index` with `measurement`. Returns `None` when the index
    /// is out of range.
    pub fn extend(&mut self, index: usize, measurement: Digest) -> Option<()> {
        let pcr = self.pcrs.get_mut(index)?;
        *pcr = pcr.extend(measurement.as_bytes());
        Some(())
    }

    /// Reads `index`. Returns `None` when out of range.
    pub fn read(&self, index: usize) -> Option<Digest> {
        self.pcrs.get(index).copied()
    }

    /// Resets the dynamic PCR (late-launch entry).
    pub fn reset_dynamic(&mut self) {
        self.pcrs[PCR_DYNAMIC] = Digest::ZERO;
    }

    /// Composite digest over a PCR selection: the value quotes sign and
    /// seals bind to. Includes the indices so different selections with
    /// equal values remain distinguishable.
    pub fn composite(&self, selection: &[usize]) -> Digest {
        let mut acc = Digest::of(b"lateral.tpm.composite");
        for &i in selection {
            let v = self.read(i).unwrap_or(Digest::ZERO);
            acc = acc.extend(&(i as u64).to_le_bytes());
            acc = acc.extend(v.as_bytes());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_changes_value_irreversibly() {
        let mut b = PcrBank::new();
        let before = b.read(3).unwrap();
        b.extend(3, Digest::of(b"m1")).unwrap();
        let after = b.read(3).unwrap();
        assert_ne!(before, after);
        // Extending with the same measurement again changes it further
        // (no way back to a previous value).
        b.extend(3, Digest::of(b"m1")).unwrap();
        assert_ne!(b.read(3).unwrap(), after);
    }

    #[test]
    fn out_of_range_is_none() {
        let mut b = PcrBank::new();
        assert!(b.extend(PCR_COUNT, Digest::ZERO).is_none());
        assert!(b.read(PCR_COUNT).is_none());
    }

    #[test]
    fn composite_covers_selection_and_indices() {
        let mut b = PcrBank::new();
        b.extend(1, Digest::of(b"x")).unwrap();
        let c_01 = b.composite(&[0, 1]);
        let c_10 = b.composite(&[1, 0]);
        let c_0 = b.composite(&[0]);
        assert_ne!(c_01, c_10, "selection order matters");
        assert_ne!(c_01, c_0, "selection size matters");
    }

    #[test]
    fn reset_dynamic_only_touches_pcr17() {
        let mut b = PcrBank::new();
        b.extend(0, Digest::of(b"boot")).unwrap();
        b.extend(PCR_DYNAMIC, Digest::of(b"old session")).unwrap();
        b.reset_dynamic();
        assert_eq!(b.read(PCR_DYNAMIC).unwrap(), Digest::ZERO);
        assert_ne!(b.read(0).unwrap(), Digest::ZERO);
    }
}
