//! TPM quotes: signed attestation of PCR state.
//!
//! "The TPM registers … form a cryptographic boot log that can later be
//! verified to reliably know what software is running" (§II-B). A quote
//! binds the composite PCR digest to a verifier-chosen nonce (freshness)
//! under the attestation identity key.

use lateral_crypto::sign::{Signature, SigningKey, VerifyingKey};
use lateral_crypto::Digest;

use crate::pcr::PcrBank;
use crate::TpmError;

/// A signed statement about PCR contents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Quote {
    /// The PCR indices covered.
    pub selection: Vec<usize>,
    /// Composite digest over the selection at signing time.
    pub composite: Digest,
    /// The verifier's anti-replay nonce.
    pub nonce: Vec<u8>,
    /// AIK signature over (selection, composite, nonce).
    pub signature: [u8; 64],
}

fn payload(selection: &[usize], composite: &Digest, nonce: &[u8]) -> Digest {
    let sel_bytes: Vec<u8> = selection
        .iter()
        .flat_map(|i| (*i as u64).to_le_bytes())
        .collect();
    Digest::of_parts(&[
        b"lateral.tpm.quote",
        &sel_bytes,
        composite.as_bytes(),
        nonce,
    ])
}

impl Quote {
    /// Signs a quote over `selection` with `aik`.
    pub(crate) fn sign(
        aik: &SigningKey,
        pcrs: &PcrBank,
        selection: &[usize],
        nonce: &[u8],
    ) -> Quote {
        let composite = pcrs.composite(selection);
        let p = payload(selection, &composite, nonce);
        Quote {
            selection: selection.to_vec(),
            composite,
            nonce: nonce.to_vec(),
            signature: aik.sign(p.as_bytes()).to_bytes(),
        }
    }

    /// Verifies the quote against a trusted AIK and the expected nonce.
    ///
    /// # Errors
    ///
    /// Returns [`TpmError::BadQuote`] on any mismatch: wrong key, replayed
    /// nonce, or tampered fields.
    pub fn verify(&self, aik: &VerifyingKey, expected_nonce: &[u8]) -> Result<(), TpmError> {
        if self.nonce != expected_nonce {
            return Err(TpmError::BadQuote("nonce mismatch (replay?)".into()));
        }
        let p = payload(&self.selection, &self.composite, &self.nonce);
        let sig = Signature::from_bytes(&self.signature)
            .map_err(|e| TpmError::BadQuote(format!("malformed signature: {e}")))?;
        aik.verify(p.as_bytes(), &sig)
            .map_err(|_| TpmError::BadQuote("signature invalid".into()))
    }

    /// Convenience: verify and additionally require the composite to
    /// equal `expected` (the verifier's known-good platform state).
    ///
    /// # Errors
    ///
    /// [`TpmError::BadQuote`] when verification fails or the state is not
    /// the expected one.
    pub fn verify_state(
        &self,
        aik: &VerifyingKey,
        expected_nonce: &[u8],
        expected: &Digest,
    ) -> Result<(), TpmError> {
        self.verify(aik, expected_nonce)?;
        if &self.composite != expected {
            return Err(TpmError::BadQuote(
                "platform state differs from the expected composite".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tpm;

    fn tpm() -> Tpm {
        let mut t = Tpm::new(b"quote tests");
        t.extend(0, b"bootloader");
        t.extend(0, b"kernel");
        t
    }

    #[test]
    fn quote_verifies_with_right_nonce() {
        let t = tpm();
        let q = t.quote(&[0], b"nonce-1");
        assert!(q.verify(&t.attestation_key(), b"nonce-1").is_ok());
    }

    #[test]
    fn replayed_nonce_rejected() {
        let t = tpm();
        let q = t.quote(&[0], b"nonce-1");
        assert!(q.verify(&t.attestation_key(), b"nonce-2").is_err());
    }

    #[test]
    fn emulated_tpm_cannot_quote() {
        // §II-D: emulation fails for lack of the restricted secret.
        let t = tpm();
        let fake = Tpm::new(b"emulator");
        let q = fake.quote(&[0], b"nonce");
        assert!(q.verify(&t.attestation_key(), b"nonce").is_err());
    }

    #[test]
    fn tampered_composite_rejected() {
        let t = tpm();
        let mut q = t.quote(&[0], b"n");
        q.composite = Digest::of(b"pretend clean state");
        assert!(q.verify(&t.attestation_key(), b"n").is_err());
    }

    #[test]
    fn verify_state_pins_expected_platform() {
        let t = tpm();
        let good = t.composite(&[0]);
        let q = t.quote(&[0], b"n");
        assert!(q.verify_state(&t.attestation_key(), b"n", &good).is_ok());
        // A platform that booted something else produces a different
        // composite and is caught.
        let mut other = Tpm::new(b"quote tests");
        other.extend(0, b"bootloader");
        other.extend(0, b"rootkit kernel");
        let q2 = other.quote(&[0], b"n");
        assert!(q2
            .verify_state(&other.attestation_key(), b"n", &good)
            .is_err());
    }

    #[test]
    fn selection_is_bound() {
        let t = tpm();
        let mut q = t.quote(&[0], b"n");
        q.selection = vec![1];
        assert!(q.verify(&t.attestation_key(), b"n").is_err());
    }
}
