//! Sealing: data bound to a PCR policy.
//!
//! "The TPM provides means to restrict access to these keys to specific
//! software stacks, namely those whose overall code base match a
//! predetermined cryptographic checksum" (§II-B). A sealed blob can be
//! unsealed only while the selected PCRs hold the values they had at seal
//! time — Microsoft BitLocker's disk-key release is the canonical use.

use lateral_crypto::aead::Aead;
use lateral_crypto::hmac::hkdf;

use crate::pcr::PcrBank;
use crate::TpmError;

/// A blob sealed to a PCR policy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBlob {
    /// PCR indices the policy covers.
    pub selection: Vec<usize>,
    /// AEAD ciphertext + tag.
    pub ciphertext: Vec<u8>,
}

fn policy_key(srk: &[u8; 32], pcrs: &PcrBank, selection: &[usize]) -> [u8; 32] {
    let composite = pcrs.composite(selection);
    hkdf(b"lateral.tpm.seal", srk, composite.as_bytes())
}

impl SealedBlob {
    /// Seals `data` under the current values of `selection`.
    pub(crate) fn seal(
        srk: &[u8; 32],
        pcrs: &PcrBank,
        selection: &[usize],
        data: &[u8],
    ) -> SealedBlob {
        let key = policy_key(srk, pcrs, selection);
        SealedBlob {
            selection: selection.to_vec(),
            ciphertext: Aead::new(&key).seal(0, b"tpm.seal", data),
        }
    }

    /// Unseals if the current PCR values match the seal-time policy.
    ///
    /// # Errors
    ///
    /// [`TpmError::UnsealDenied`] when the platform state changed, the
    /// blob was tampered with, or a different TPM is asked.
    pub(crate) fn unseal(&self, srk: &[u8; 32], pcrs: &PcrBank) -> Result<Vec<u8>, TpmError> {
        let key = policy_key(srk, pcrs, &self.selection);
        Aead::new(&key)
            .open(0, b"tpm.seal", &self.ciphertext)
            .map_err(|_| {
                TpmError::UnsealDenied(
                    "PCR policy not satisfied, foreign TPM, or tampered blob".into(),
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use crate::Tpm;

    #[test]
    fn seal_unseal_roundtrip_on_same_state() {
        let mut tpm = Tpm::new(b"seal");
        tpm.extend(0, b"good kernel");
        let blob = tpm.seal(&[0], b"disk encryption key");
        assert_eq!(tpm.unseal(&blob).unwrap(), b"disk encryption key");
        // Unsealing twice works as long as state is unchanged.
        assert!(tpm.unseal(&blob).is_ok());
    }

    #[test]
    fn unseal_fails_after_state_change() {
        // The BitLocker property: boot something else → the key stays
        // locked.
        let mut tpm = Tpm::new(b"seal2");
        tpm.extend(0, b"good kernel");
        let blob = tpm.seal(&[0], b"disk key");
        tpm.extend(0, b"rootkit module");
        assert!(tpm.unseal(&blob).is_err());
    }

    #[test]
    fn unseal_fails_on_other_tpm() {
        let mut a = Tpm::new(b"chip a");
        let mut b = Tpm::new(b"chip b");
        a.extend(0, b"same kernel");
        b.extend(0, b"same kernel");
        let blob = a.seal(&[0], b"secret");
        // Same software stack, different chip → different SRK → denied.
        assert!(b.unseal(&blob).is_err());
    }

    #[test]
    fn tampered_blob_rejected() {
        let mut tpm = Tpm::new(b"seal3");
        tpm.extend(0, b"k");
        let mut blob = tpm.seal(&[0], b"secret");
        blob.ciphertext[0] ^= 1;
        assert!(tpm.unseal(&blob).is_err());
    }

    #[test]
    fn policy_over_unrelated_pcr_is_unaffected() {
        let mut tpm = Tpm::new(b"seal4");
        tpm.extend(0, b"k");
        let blob = tpm.seal(&[0], b"secret");
        // Extending a PCR outside the policy does not lock the blob.
        tpm.extend(5, b"app event");
        assert!(tpm.unseal(&blob).is_ok());
    }
}
