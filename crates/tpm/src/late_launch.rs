//! Late launch: the dynamic root of trust (Flicker, §II-B).
//!
//! "This instruction causes all currently running software including the
//! kernel to be stopped, before a small piece of code is given full
//! control over the machine" — and the TPM records its identity in the
//! dynamic PCR, so it can be attested *without* trusting BIOS, boot
//! loader, or legacy kernel. Flicker additionally showed that multiple
//! trusted components are mutually isolated via distinct cryptographic
//! identities, but "they cannot run concurrently" — which the session
//! guard enforces here.

use lateral_crypto::Digest;

use crate::pcr::PCR_DYNAMIC;
use crate::{Quote, SealedBlob, Tpm, TpmError};

/// An active late-launch session: the measured payload has exclusive
/// control until [`LateLaunchSession::end`].
pub struct LateLaunchSession<'a> {
    tpm: &'a mut Tpm,
    payload_measurement: Digest,
    ended: bool,
}

impl std::fmt::Debug for LateLaunchSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LateLaunchSession({})",
            self.payload_measurement.short_hex()
        )
    }
}

impl<'a> LateLaunchSession<'a> {
    pub(crate) fn start(
        tpm: &'a mut Tpm,
        payload_image: &[u8],
    ) -> Result<LateLaunchSession<'a>, TpmError> {
        if *tpm.late_launch_flag() {
            return Err(TpmError::LateLaunchBusy);
        }
        *tpm.late_launch_flag() = true;
        // The CPU resets the dynamic PCR and reports the payload hash —
        // untampered by any software that ran before.
        tpm.pcrs_mut().reset_dynamic();
        let measurement = Digest::of(payload_image);
        tpm.extend_digest(PCR_DYNAMIC, "late-launch", measurement);
        Ok(LateLaunchSession {
            tpm,
            payload_measurement: measurement,
            ended: false,
        })
    }

    /// The measured identity of the launched payload.
    pub fn payload_measurement(&self) -> Digest {
        self.payload_measurement
    }

    /// Quotes the dynamic PCR, attesting the payload without the boot
    /// chain.
    pub fn quote(&self, nonce: &[u8]) -> Quote {
        self.tpm.quote(&[PCR_DYNAMIC], nonce)
    }

    /// Seals data so only this payload identity (re-launched later) can
    /// unseal it.
    pub fn seal(&self, data: &[u8]) -> SealedBlob {
        self.tpm.seal(&[PCR_DYNAMIC], data)
    }

    /// Unseals data sealed by a previous launch of the same payload.
    ///
    /// # Errors
    ///
    /// [`TpmError::UnsealDenied`] when the blob belongs to a different
    /// payload identity.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, TpmError> {
        self.tpm.unseal(blob)
    }

    /// Ends the session: the dynamic PCR is capped (extended with a
    /// terminator) so nothing after the session can impersonate it.
    pub fn end(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if !self.ended {
            self.tpm
                .extend_digest(PCR_DYNAMIC, "late-launch-end", Digest::of(b"cap"));
            *self.tpm.late_launch_flag() = false;
            self.ended = true;
        }
    }
}

impl Drop for LateLaunchSession<'_> {
    fn drop(&mut self) {
        // Never leave the machine in "late launch active" state; Drop is
        // infallible by design (C-DTOR-FAIL).
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_identity_is_in_dynamic_pcr() {
        let mut tpm = Tpm::new(b"ll");
        // Dirty boot chain doesn't matter:
        tpm.extend(0, b"sketchy bios");
        let session = tpm.late_launch(b"piece of trusted code").unwrap();
        let m = session.payload_measurement();
        let q = session.quote(b"nonce");
        session.end();
        assert_eq!(m, Digest::of(b"piece of trusted code"));
        assert!(q.verify(&tpm.attestation_key(), b"nonce").is_ok());
    }

    #[test]
    fn sessions_cannot_run_concurrently() {
        let mut tpm = Tpm::new(b"ll2");
        let _s = tpm.late_launch(b"payload a");
        // Borrow rules already prevent a second call while `_s` lives;
        // end the first and observe the flag-based guard with an
        // explicitly leaked session state instead: start, drop, restart.
        drop(_s);
        assert!(tpm.late_launch(b"payload b").is_ok());
    }

    #[test]
    fn seal_to_payload_identity_survives_relaunch() {
        let mut tpm = Tpm::new(b"ll3");
        let blob = {
            let s = tpm.late_launch(b"flicker piece").unwrap();
            s.seal(b"session secret")
        };
        // Relaunch the same payload: same dynamic PCR → unseals.
        let s2 = tpm.late_launch(b"flicker piece").unwrap();
        assert_eq!(s2.unseal(&blob).unwrap(), b"session secret");
        s2.end();
    }

    #[test]
    fn different_payload_cannot_steal_sealed_state() {
        let mut tpm = Tpm::new(b"ll4");
        let blob = {
            let s = tpm.late_launch(b"honest payload").unwrap();
            s.seal(b"secret")
        };
        let evil = tpm.late_launch(b"evil payload").unwrap();
        assert!(evil.unseal(&blob).is_err());
    }

    #[test]
    fn capped_pcr_prevents_post_session_impersonation() {
        let mut tpm = Tpm::new(b"ll5");
        let during = {
            let s = tpm.late_launch(b"payload").unwrap();
            s.quote(b"n").composite
        };
        // After end(), the dynamic PCR no longer matches the in-session
        // composite, so legacy code cannot produce an equivalent quote.
        let after = tpm.quote(&[PCR_DYNAMIC], b"n").composite;
        assert_ne!(during, after);
    }
}
