//! Self-contained microbenchmarks (`cargo bench -p lateral-bench`).
//!
//! A dependency-free harness: each case is warmed up, then timed over a
//! fixed iteration count with `std::time::Instant`. Numbers are
//! wall-clock ns/op on the simulator — useful for spotting regressions
//! in the hot invoke path, not as absolute hardware costs (the logical
//! crossing-cost model lives in E4).

use std::hint::black_box;
use std::time::Instant;

use lateral_crypto::Digest;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_sgx::Sgx;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;

const ITERS: u32 = 2_000;
const WARMUP: u32 = 200;

fn time<F: FnMut()>(name: &str, mut f: F) {
    for _ in 0..WARMUP {
        f();
    }
    let start = Instant::now();
    for _ in 0..ITERS {
        f();
    }
    let ns = start.elapsed().as_nanos() / u128::from(ITERS);
    println!("{name:<40} {ns:>10} ns/op");
}

fn invoke_pair(sub: &mut dyn Substrate) -> impl FnMut() + '_ {
    let callee = sub
        .spawn(DomainSpec::named("callee"), Box::new(Echo))
        .expect("spawn callee");
    let caller = sub
        .spawn(DomainSpec::named("caller"), Box::new(Echo))
        .expect("spawn caller");
    let cap = sub.grant_channel(caller, callee, Badge(7)).expect("grant");
    move || {
        let reply = sub.invoke(caller, &cap, b"ping").expect("invoke");
        black_box(reply);
    }
}

fn main() {
    println!("lateral microbench — {ITERS} iters per case\n");

    let mut sw = SoftwareSubstrate::new("bench");
    time("software invoke (4B echo)", invoke_pair(&mut sw));

    let mut mk = Microkernel::new(
        MachineBuilder::new().name("bench-mk").frames(256).build(),
        "bench",
    );
    time("microkernel invoke (4B echo)", invoke_pair(&mut mk));

    let mut sgx = Sgx::new(
        MachineBuilder::new().name("bench-sgx").frames(256).build(),
        "bench",
    );
    time("sgx invoke (4B echo)", invoke_pair(&mut sgx));

    time("digest of 1 KiB", {
        let buf = vec![0xa5u8; 1024];
        move || {
            black_box(Digest::of(&buf));
        }
    });
}
