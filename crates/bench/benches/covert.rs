//! Covert-channel transmission cost under each scheduling policy (E6's
//! real-time companion) — shows what the mitigation costs the system.

use criterion::{criterion_group, criterion_main, Criterion};
use lateral_bench::e6_covert::transmit;
use lateral_microkernel::SchedPolicy;

fn bench_covert(c: &mut Criterion) {
    let mut g = c.benchmark_group("covert-64bit-message");
    g.sample_size(20);
    g.bench_function("round-robin", |b| {
        b.iter(|| transmit(SchedPolicy::RoundRobin, "rr"))
    });
    g.bench_function("partitioned-no-flush", |b| {
        b.iter(|| transmit(SchedPolicy::TimePartitioned { flush_cache: false }, "tp"))
    });
    g.bench_function("partitioned-flush", |b| {
        b.iter(|| transmit(SchedPolicy::TimePartitioned { flush_cache: true }, "tpf"))
    });
    g.finish();
}

criterion_group!(benches, bench_covert);
criterion_main!(benches);
