//! Wall-clock benchmarks for the crypto substrate: every attestation,
//! sealing, and channel operation in the system bottoms out here.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lateral_crypto::aead::Aead;
use lateral_crypto::dh::EphemeralSecret;
use lateral_crypto::hmac::HmacSha256;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sha256::sha256;
use lateral_crypto::sign::SigningKey;
use std::hint::black_box;

fn bench_hash(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("sha256/{size}"), |b| {
            b.iter(|| sha256(black_box(&data)))
        });
        g.bench_function(format!("hmac/{size}"), |b| {
            b.iter(|| HmacSha256::mac(b"key", black_box(&data)))
        });
    }
    g.finish();
}

fn bench_aead(c: &mut Criterion) {
    let mut g = c.benchmark_group("aead");
    let aead = Aead::new(&[7u8; 32]);
    for size in [256usize, 4096] {
        let data = vec![0x11u8; size];
        let boxed = aead.seal(0, b"aad", &data);
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("seal/{size}"), |b| {
            b.iter(|| aead.seal(black_box(1), b"aad", black_box(&data)))
        });
        g.bench_function(format!("open/{size}"), |b| {
            b.iter(|| aead.open(black_box(0), b"aad", black_box(&boxed)).unwrap())
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut g = c.benchmark_group("schnorr");
    let key = SigningKey::from_seed(b"bench");
    let sig = key.sign(b"attestation evidence payload");
    g.bench_function("sign", |b| {
        b.iter(|| key.sign(black_box(b"attestation evidence payload")))
    });
    g.bench_function("verify", |b| {
        b.iter(|| {
            key.verifying_key()
                .verify(black_box(b"attestation evidence payload"), &sig)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_dh(c: &mut Criterion) {
    c.bench_function("dh/generate+agree", |b| {
        b.iter(|| {
            let mut rng = Drbg::from_seed(b"dh bench");
            let a = EphemeralSecret::generate(&mut rng);
            let bb = EphemeralSecret::generate(&mut rng);
            let pub_b = bb.public_share();
            a.agree(&pub_b, b"transcript").unwrap()
        })
    });
}

criterion_group!(benches, bench_hash, bench_aead, bench_signatures, bench_dh);
criterion_main!(benches);
