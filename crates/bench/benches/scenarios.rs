//! Wall-clock cost of the full paper scenarios: a complete smart-meter
//! billing round (Figure 3) and a complete mail fetch through the
//! decomposed client — the end-to-end price of the architecture.

use criterion::{criterion_group, criterion_main, Criterion};
use lateral_apps::mail_world::{MailWorld, ServerBehavior};
use lateral_apps::smart_meter::{BillingOutcome, SmartMeterWorld, WorldConfig};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;

fn bench_smart_meter(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("smart-meter/world-setup", |b| {
        b.iter(|| SmartMeterWorld::new(WorldConfig::default()))
    });
    g.bench_function("smart-meter/billing-round", |b| {
        b.iter_batched(
            || SmartMeterWorld::new(WorldConfig::default()),
            |mut world| {
                assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));
                world
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("mail/fetch-inbox", |b| {
        b.iter_batched(
            || {
                let pool: Vec<Box<dyn Substrate>> =
                    vec![Box::new(SoftwareSubstrate::new("bench"))];
                let mut world = MailWorld::build(pool, ServerBehavior::Honest).unwrap();
                world.connect().unwrap();
                world
            },
            |mut world| {
                assert_eq!(world.fetch_inbox().unwrap().len(), 2);
                world
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_smart_meter);
criterion_main!(benches);
