//! Secure-channel costs: full handshake (with and without attestation
//! binding) and record throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_net::channel::{ChannelPolicy, ClientHandshake, ServerHandshake};
use lateral_substrate::attest::{AttestationEvidence, TrustPolicy};
use std::hint::black_box;

fn handshake(attested: bool) {
    let client_id = SigningKey::from_seed(b"bench client");
    let server_id = SigningKey::from_seed(b"bench server");
    let platform = SigningKey::from_seed(b"bench platform");
    let measurement = Digest::of(b"bench service");
    let mut crng = Drbg::from_seed(b"c");
    let mut srng = Drbg::from_seed(b"s");
    let policy = if attested {
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(measurement);
        ChannelPolicy::open().with_attestation(trust)
    } else {
        ChannelPolicy::open()
    };
    let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
    let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
    let evidence = attested.then(|| {
        AttestationEvidence::sign(
            "sgx",
            &platform,
            measurement,
            Digest::ZERO,
            pending.transcript().as_bytes(),
        )
    });
    let (awaiting, server_hello) = pending.respond(evidence, &hello);
    let (_c, finish, _info) = cstate
        .finish(&server_hello, &policy, |_| None)
        .unwrap();
    awaiting.complete(&finish, &ChannelPolicy::open()).unwrap();
}

fn bench_handshake(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake");
    g.sample_size(20);
    g.bench_function("plain", |b| b.iter(|| handshake(black_box(false))));
    g.bench_function("attested", |b| b.iter(|| handshake(black_box(true))));
    g.finish();
}

fn bench_records(c: &mut Criterion) {
    let client_id = SigningKey::from_seed(b"bench client");
    let server_id = SigningKey::from_seed(b"bench server");
    let mut crng = Drbg::from_seed(b"c");
    let mut srng = Drbg::from_seed(b"s");
    let (cstate, hello) = ClientHandshake::start(client_id, &mut crng);
    let pending = ServerHandshake::accept(&server_id, &mut srng, &hello).unwrap();
    let (awaiting, server_hello) = pending.respond(None, &hello);
    let (mut cchan, finish, _) = cstate
        .finish(&server_hello, &ChannelPolicy::open(), |_| None)
        .unwrap();
    let (mut schan, _) = awaiting.complete(&finish, &ChannelPolicy::open()).unwrap();

    let payload = vec![0u8; 1024];
    let mut g = c.benchmark_group("records");
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("seal+open/1KiB", |b| {
        b.iter(|| {
            let rec = cchan.seal(black_box(&payload));
            schan.open(&rec).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_handshake, bench_records);
criterion_main!(benches);
