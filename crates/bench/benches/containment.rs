//! Cost of the E1 analyses and of composing the email client — the
//! price of the tooling §IV asks for.

use criterion::{criterion_group, criterion_main, Criterion};
use lateral_apps::email::{horizontal_manifest, HorizontalEmail};
use lateral_core::analysis::{blast_radius, containment_table};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let app = horizontal_manifest();
    c.bench_function("analysis/blast-radius", |b| {
        b.iter(|| blast_radius(black_box(&app), "imap-engine"))
    });
    c.bench_function("analysis/containment-table", |b| {
        b.iter(|| containment_table(black_box(&app)))
    });
}

fn bench_compose(c: &mut Criterion) {
    c.bench_function("compose/email-horizontal", |b| {
        b.iter(|| {
            let pool: Vec<Box<dyn Substrate>> =
                vec![Box::new(SoftwareSubstrate::new("bench"))];
            HorizontalEmail::build(pool).unwrap()
        })
    });
}

criterion_group!(benches, bench_analysis, bench_compose);
criterion_main!(benches);
