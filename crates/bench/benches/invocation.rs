//! Wall-clock cost of one invocation per substrate (E4's real-time
//! companion; logical-cycle numbers come from `repro -- e4`).

use criterion::{criterion_group, criterion_main, Criterion};
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_sgx::Sgx;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_trustzone::TrustZone;
use std::hint::black_box;

fn pair(sub: &mut dyn Substrate) -> (lateral_substrate::DomainId, lateral_substrate::cap::ChannelCap) {
    let callee = sub
        .spawn(DomainSpec::named("callee"), Box::new(Echo))
        .unwrap();
    let caller = sub
        .spawn(DomainSpec::named("caller"), Box::new(Echo))
        .unwrap();
    let cap = sub.grant_channel(caller, callee, Badge(0)).unwrap();
    (caller, cap)
}

fn bench_invoke(c: &mut Criterion) {
    let payload = vec![0u8; 256];
    let mut g = c.benchmark_group("invoke-256B");

    let mut sw = SoftwareSubstrate::new("bench");
    let (caller, cap) = pair(&mut sw);
    g.bench_function("software", |b| {
        b.iter(|| sw.invoke(caller, &cap, black_box(&payload)).unwrap())
    });

    let mut mk = Microkernel::new(MachineBuilder::new().frames(64).build(), "bench");
    let (caller, cap) = pair(&mut mk);
    g.bench_function("microkernel", |b| {
        b.iter(|| mk.invoke(caller, &cap, black_box(&payload)).unwrap())
    });

    let mut tz = TrustZone::new(MachineBuilder::new().frames(64).build(), "bench");
    let (caller, cap) = pair(&mut tz);
    g.bench_function("trustzone", |b| {
        b.iter(|| tz.invoke(caller, &cap, black_box(&payload)).unwrap())
    });

    let mut sgx = Sgx::new(MachineBuilder::new().frames(64).build(), "bench");
    let (caller, cap) = pair(&mut sgx);
    g.bench_function("sgx", |b| {
        b.iter(|| sgx.invoke(caller, &cap, black_box(&payload)).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_invoke);
criterion_main!(benches);
