//! VPFS vs. raw legacy file system, wall clock (E5's real-time
//! companion).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lateral_vpfs::{LegacyFs, MemBlockDevice, Vpfs};
use std::hint::black_box;

fn bench_fs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fs-4KiB");
    let data = vec![0x42u8; 4096];
    g.throughput(Throughput::Bytes(4096));

    let mut raw = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
    g.bench_function("raw/write+read", |b| {
        b.iter(|| {
            raw.write("bench", black_box(&data)).unwrap();
            raw.read("bench").unwrap()
        })
    });

    let legacy = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
    let mut vpfs = Vpfs::format(legacy, &[0x5A; 32]).unwrap();
    g.bench_function("vpfs/write+read", |b| {
        b.iter(|| {
            vpfs.write("bench", black_box(&data)).unwrap();
            vpfs.read("bench").unwrap()
        })
    });

    let legacy = LegacyFs::format(MemBlockDevice::new(512)).unwrap();
    let mut vpfs_ro = Vpfs::format(legacy, &[0x5A; 32]).unwrap();
    vpfs_ro.write("bench", &data).unwrap();
    g.bench_function("vpfs/read-only", |b| {
        b.iter(|| vpfs_ro.read(black_box("bench")).unwrap())
    });

    g.finish();
}

criterion_group!(benches, bench_fs);
criterion_main!(benches);
