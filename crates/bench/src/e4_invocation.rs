//! E4 — the cost of decomposition (§III-E "Potential Roadblocks").
//!
//! Measures the logical-cycle cost of one request/reply across each
//! isolation boundary, over payload sizes. Expected shape (the cost
//! ladder the systems literature reports): function call ≪ microkernel
//! IPC < TrustZone SMC ≈ SGX enclave transition < SEP mailbox < Flicker
//! late launch ≪ network round trip — decomposition costs constant small
//! factors, far from the interactive-budget ceiling. The Flicker point
//! also explains *why* SGX exists: "a more refined implementation of the
//! late-launch approach" (§II-B) is ~20× cheaper per call.

use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_flicker::Flicker;
use lateral_hw::clock::CostModel;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_sep::Sep;
use lateral_sgx::Sgx;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_substrate::DomainId;
use lateral_trustzone::TrustZone;

use crate::table::render;

/// Payload sizes measured.
pub const SIZES: [usize; 4] = [16, 256, 4096, 16384];

/// Cycles per invocation for one mechanism across [`SIZES`].
#[derive(Clone, Debug)]
pub struct Mechanism {
    /// Mechanism name.
    pub name: String,
    /// Cycles per call, aligned with [`SIZES`].
    pub cycles: Vec<u64>,
}

/// One row of fabric counters for a measured mechanism: what the engine
/// itself accounted while the ladder ran — crossing counts and bytes
/// moved, per crossing kind.
#[derive(Clone, Debug)]
pub struct CrossingFacts {
    /// Mechanism name (matches [`Mechanism::name`]).
    pub mechanism: String,
    /// Crossing kind name as the engine classified it.
    pub crossing: String,
    /// Invocations charged with this crossing kind.
    pub count: u64,
    /// Payload bytes moved across this crossing kind.
    pub bytes: u64,
}

/// Reads the charged cost of the invocation from the fabric trace —
/// the engine records what it charged, so E4 no longer differences the
/// clock around the call.
fn charged_cost(sub: &mut dyn Substrate, caller: DomainId, cap: &ChannelCap, size: usize) -> u64 {
    let payload = vec![0xAAu8; size];
    let t0 = sub.now();
    sub.invoke(caller, cap, &payload).expect("invoke");
    sub.fabric_ref()
        .and_then(|f| f.trace().last().map(|ev| ev.cost))
        .unwrap_or_else(|| sub.now() - t0)
}

/// Harvests the engine's crossing counters accumulated on `sub`.
fn crossing_facts(sub: &dyn Substrate, mechanism: &str) -> Vec<CrossingFacts> {
    let Some(fabric) = sub.fabric_ref() else {
        return Vec::new();
    };
    fabric
        .stats()
        .crossings()
        .map(|(kind, c)| CrossingFacts {
            mechanism: mechanism.to_string(),
            crossing: kind.name().to_string(),
            count: c.count,
            bytes: c.bytes,
        })
        .collect()
}

fn measure(sub: &mut dyn Substrate) -> Vec<u64> {
    // Caller and callee are both plain domains; substrates whose
    // interesting crossing involves a host/legacy side are measured by
    // the dedicated blocks below.
    let callee = sub
        .spawn(DomainSpec::named("callee"), Box::new(Echo))
        .expect("spawn callee");
    let caller = sub
        .spawn(DomainSpec::named("caller"), Box::new(Echo))
        .expect("spawn caller");
    let cap = sub.grant_channel(caller, callee, Badge(0)).expect("grant");
    SIZES
        .iter()
        .map(|size| charged_cost(sub, caller, &cap, *size))
        .collect()
}

/// Runs all mechanisms.
pub fn run() -> Vec<Mechanism> {
    run_with_facts().0
}

/// Runs all mechanisms and additionally returns the fabric counters each
/// substrate's engine accumulated during the measurement.
pub fn run_with_facts() -> (Vec<Mechanism>, Vec<CrossingFacts>) {
    let costs = CostModel::default();
    let mut out = Vec::new();
    let mut facts = Vec::new();

    // Baseline: a plain function call inside one component.
    out.push(Mechanism {
        name: "function call (vertical baseline)".into(),
        cycles: SIZES.iter().map(|_| costs.function_call).collect(),
    });

    let mut sw = SoftwareSubstrate::new("e4");
    out.push(Mechanism {
        name: "software substrate dispatch".into(),
        cycles: measure(&mut sw),
    });
    facts.extend(crossing_facts(&sw, "software substrate dispatch"));

    let mut mk = Microkernel::new(
        MachineBuilder::new().name("e4-mk").frames(256).build(),
        "e4",
    )
    .with_attestation(SigningKey::from_seed(b"e4"), Digest::ZERO);
    out.push(Mechanism {
        name: "microkernel sync IPC".into(),
        cycles: measure(&mut mk),
    });
    facts.extend(crossing_facts(&mk, "microkernel sync IPC"));

    // TrustZone: legacy normal world calling into the secure world (SMC).
    let mut tz = TrustZone::new(
        MachineBuilder::new().name("e4-tz").frames(256).build(),
        "e4",
    );
    {
        let callee = tz
            .spawn(DomainSpec::named("callee"), Box::new(Echo))
            .expect("spawn");
        let caller = tz
            .spawn_normal(DomainSpec::named("legacy"), Box::new(Echo))
            .expect("spawn");
        let cap = tz.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| charged_cost(&mut tz, caller, &cap, *size))
            .collect();
        out.push(Mechanism {
            name: "TrustZone SMC (world switch)".into(),
            cycles,
        });
    }
    facts.extend(crossing_facts(&tz, "TrustZone SMC (world switch)"));

    // SGX: host calling into an enclave (EENTER/EEXIT pair).
    let mut sgx = Sgx::new(
        MachineBuilder::new().name("e4-sgx").frames(256).build(),
        "e4",
    );
    {
        let callee = sgx
            .spawn(DomainSpec::named("enclave"), Box::new(Echo))
            .expect("spawn");
        let caller = sgx
            .spawn_host(DomainSpec::named("host"), Box::new(Echo))
            .expect("spawn");
        let cap = sgx.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| charged_cost(&mut sgx, caller, &cap, *size))
            .collect();
        out.push(Mechanism {
            name: "SGX enclave transition".into(),
            cycles,
        });
    }
    facts.extend(crossing_facts(&sgx, "SGX enclave transition"));

    // SEP: application CPU calling the coprocessor (mailbox).
    let mut sep = Sep::new(
        MachineBuilder::new().name("e4-sep").frames(256).build(),
        "e4",
    );
    {
        let callee = sep
            .spawn(DomainSpec::named("sep-svc"), Box::new(Echo))
            .expect("spawn");
        let caller = sep
            .spawn_host(DomainSpec::named("app"), Box::new(Echo))
            .expect("spawn");
        let cap = sep.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| charged_cost(&mut sep, caller, &cap, *size))
            .collect();
        out.push(Mechanism {
            name: "SEP mailbox round trip".into(),
            cycles,
        });
    }
    facts.extend(crossing_facts(&sep, "SEP mailbox round trip"));

    // Flicker: every call is a DRTM late-launch session.
    let mut flicker = Flicker::new("e4");
    out.push(Mechanism {
        name: "Flicker late launch per call".into(),
        cycles: measure(&mut flicker),
    });
    facts.extend(crossing_facts(&flicker, "Flicker late launch per call"));

    // Network round trip (per the cost model: two packets + copies).
    out.push(Mechanism {
        name: "cross-machine round trip".into(),
        cycles: SIZES
            .iter()
            .map(|size| 2 * costs.network_packet + 2 * costs.copy_cost(*size))
            .collect(),
    });

    (out, facts)
}

/// Renders the report.
pub fn report() -> String {
    let (mechanisms, facts) = run_with_facts();
    let mut header = vec!["mechanism".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{s} B")));
    let mut rows = vec![header];
    for m in &mechanisms {
        let mut r = vec![m.name.clone()];
        r.extend(m.cycles.iter().map(|c| format!("{c}")));
        rows.push(r);
    }
    let mut fact_rows = vec![vec![
        "mechanism".to_string(),
        "crossing".to_string(),
        "crossings".to_string(),
        "bytes moved".to_string(),
    ]];
    for f in &facts {
        fact_rows.push(vec![
            f.mechanism.clone(),
            f.crossing.clone(),
            f.count.to_string(),
            f.bytes.to_string(),
        ]);
    }
    format!(
        "E4 — invocation cost ladder (logical cycles per request/reply)\n\n{}\n\
         shape check: function < IPC < SMC ≈ enclave < mailbox < late-launch < network\n\n\
         fabric counters (engine-accounted crossings during the run)\n\n{}\n",
        render(&rows),
        render(&fact_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles_at_16(mechanisms: &[Mechanism], name_contains: &str) -> u64 {
        mechanisms
            .iter()
            .find(|m| m.name.contains(name_contains))
            .unwrap_or_else(|| panic!("mechanism {name_contains}"))
            .cycles[0]
    }

    #[test]
    fn ladder_shape_holds() {
        let m = run();
        let func = cycles_at_16(&m, "function");
        let ipc = cycles_at_16(&m, "microkernel");
        let smc = cycles_at_16(&m, "TrustZone");
        let enclave = cycles_at_16(&m, "SGX");
        let mailbox = cycles_at_16(&m, "SEP");
        let drtm = cycles_at_16(&m, "Flicker");
        let net = cycles_at_16(&m, "cross-machine");
        assert!(func < ipc, "{func} < {ipc}");
        assert!(ipc < smc, "{ipc} < {smc}");
        assert!(
            smc <= enclave + enclave / 2,
            "SMC ≈ enclave: {smc} vs {enclave}"
        );
        assert!(enclave < mailbox, "{enclave} < {mailbox}");
        assert!(mailbox < drtm, "{mailbox} < {drtm}");
        assert!(drtm < net, "{drtm} < {net}");
    }

    #[test]
    fn larger_payloads_cost_more() {
        for m in run() {
            if m.name.contains("function") {
                continue; // flat baseline
            }
            assert!(m.cycles[3] > m.cycles[0], "{}: {:?}", m.name, m.cycles);
        }
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("16384 B"));
        assert!(r.contains("fabric counters"));
        assert!(r.contains("bytes moved"));
    }

    #[test]
    fn fabric_counters_account_every_measured_byte() {
        let (_, facts) = run_with_facts();
        let total: u64 = SIZES.iter().map(|s| *s as u64).sum();
        for mech in [
            "software substrate dispatch",
            "microkernel sync IPC",
            "TrustZone SMC (world switch)",
            "SGX enclave transition",
            "SEP mailbox round trip",
            "Flicker late launch per call",
        ] {
            let rows: Vec<_> = facts.iter().filter(|f| f.mechanism == mech).collect();
            assert_eq!(
                rows.iter().map(|f| f.count).sum::<u64>(),
                SIZES.len() as u64,
                "{mech}: one crossing per measured size"
            );
            assert_eq!(
                rows.iter().map(|f| f.bytes).sum::<u64>(),
                total,
                "{mech}: engine accounted all payload bytes"
            );
        }
    }

    #[test]
    fn boundary_mechanisms_report_their_crossing_kind() {
        let (_, facts) = run_with_facts();
        let kind_of = |mech: &str| {
            facts
                .iter()
                .filter(|f| f.mechanism == mech)
                .max_by_key(|f| f.count)
                .map(|f| f.crossing.clone())
                .unwrap_or_else(|| panic!("no facts for {mech}"))
        };
        assert_eq!(kind_of("TrustZone SMC (world switch)"), "smc");
        assert_eq!(kind_of("SGX enclave transition"), "enclave");
        assert_eq!(kind_of("SEP mailbox round trip"), "mailbox");
        assert_eq!(kind_of("Flicker late launch per call"), "late-launch");
    }
}
