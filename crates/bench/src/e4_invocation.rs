//! E4 — the cost of decomposition (§III-E "Potential Roadblocks").
//!
//! Measures the logical-cycle cost of one request/reply across each
//! isolation boundary, over payload sizes. Expected shape (the cost
//! ladder the systems literature reports): function call ≪ microkernel
//! IPC < TrustZone SMC ≈ SGX enclave transition < SEP mailbox < Flicker
//! late launch ≪ network round trip — decomposition costs constant small
//! factors, far from the interactive-budget ceiling. The Flicker point
//! also explains *why* SGX exists: "a more refined implementation of the
//! late-launch approach" (§II-B) is ~20× cheaper per call.

use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_flicker::Flicker;
use lateral_hw::clock::CostModel;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_sep::Sep;
use lateral_sgx::Sgx;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_trustzone::TrustZone;

use crate::table::render;

/// Payload sizes measured.
pub const SIZES: [usize; 4] = [16, 256, 4096, 16384];

/// Cycles per invocation for one mechanism across [`SIZES`].
#[derive(Clone, Debug)]
pub struct Mechanism {
    /// Mechanism name.
    pub name: String,
    /// Cycles per call, aligned with [`SIZES`].
    pub cycles: Vec<u64>,
}

fn measure(sub: &mut dyn Substrate) -> Vec<u64> {
    // Caller and callee are both plain domains; substrates whose
    // interesting crossing involves a host/legacy side are measured by
    // the dedicated blocks below.
    let callee = sub
        .spawn(DomainSpec::named("callee"), Box::new(Echo))
        .expect("spawn callee");
    let caller = sub
        .spawn(DomainSpec::named("caller"), Box::new(Echo))
        .expect("spawn caller");
    let cap = sub.grant_channel(caller, callee, Badge(0)).expect("grant");
    SIZES
        .iter()
        .map(|size| {
            let payload = vec![0xAAu8; *size];
            let t0 = sub.now();
            sub.invoke(caller, &cap, &payload).expect("invoke");
            sub.now() - t0
        })
        .collect()
}

/// Runs all mechanisms.
pub fn run() -> Vec<Mechanism> {
    let costs = CostModel::default();
    let mut out = Vec::new();

    // Baseline: a plain function call inside one component.
    out.push(Mechanism {
        name: "function call (vertical baseline)".into(),
        cycles: SIZES.iter().map(|_| costs.function_call).collect(),
    });

    let mut sw = SoftwareSubstrate::new("e4");
    out.push(Mechanism {
        name: "software substrate dispatch".into(),
        cycles: measure(&mut sw),
    });

    let mut mk = Microkernel::new(
        MachineBuilder::new().name("e4-mk").frames(256).build(),
        "e4",
    )
    .with_attestation(SigningKey::from_seed(b"e4"), Digest::ZERO);
    out.push(Mechanism {
        name: "microkernel sync IPC".into(),
        cycles: measure(&mut mk),
    });

    // TrustZone: legacy normal world calling into the secure world (SMC).
    let mut tz = TrustZone::new(
        MachineBuilder::new().name("e4-tz").frames(256).build(),
        "e4",
    );
    {
        let callee = tz
            .spawn(DomainSpec::named("callee"), Box::new(Echo))
            .expect("spawn");
        let caller = tz
            .spawn_normal(DomainSpec::named("legacy"), Box::new(Echo))
            .expect("spawn");
        let cap = tz.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| {
                let payload = vec![0u8; *size];
                let t0 = tz.now();
                tz.invoke(caller, &cap, &payload).expect("invoke");
                tz.now() - t0
            })
            .collect();
        out.push(Mechanism {
            name: "TrustZone SMC (world switch)".into(),
            cycles,
        });
    }

    // SGX: host calling into an enclave (EENTER/EEXIT pair).
    let mut sgx = Sgx::new(
        MachineBuilder::new().name("e4-sgx").frames(256).build(),
        "e4",
    );
    {
        let callee = sgx
            .spawn(DomainSpec::named("enclave"), Box::new(Echo))
            .expect("spawn");
        let caller = sgx
            .spawn_host(DomainSpec::named("host"), Box::new(Echo))
            .expect("spawn");
        let cap = sgx.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| {
                let payload = vec![0u8; *size];
                let t0 = sgx.now();
                sgx.invoke(caller, &cap, &payload).expect("invoke");
                sgx.now() - t0
            })
            .collect();
        out.push(Mechanism {
            name: "SGX enclave transition".into(),
            cycles,
        });
    }

    // SEP: application CPU calling the coprocessor (mailbox).
    let mut sep = Sep::new(
        MachineBuilder::new().name("e4-sep").frames(256).build(),
        "e4",
    );
    {
        let callee = sep
            .spawn(DomainSpec::named("sep-svc"), Box::new(Echo))
            .expect("spawn");
        let caller = sep
            .spawn_host(DomainSpec::named("app"), Box::new(Echo))
            .expect("spawn");
        let cap = sep.grant_channel(caller, callee, Badge(0)).expect("grant");
        let cycles = SIZES
            .iter()
            .map(|size| {
                let payload = vec![0u8; *size];
                let t0 = sep.now();
                sep.invoke(caller, &cap, &payload).expect("invoke");
                sep.now() - t0
            })
            .collect();
        out.push(Mechanism {
            name: "SEP mailbox round trip".into(),
            cycles,
        });
    }

    // Flicker: every call is a DRTM late-launch session.
    let mut flicker = Flicker::new("e4");
    out.push(Mechanism {
        name: "Flicker late launch per call".into(),
        cycles: measure(&mut flicker),
    });

    // Network round trip (per the cost model: two packets + copies).
    out.push(Mechanism {
        name: "cross-machine round trip".into(),
        cycles: SIZES
            .iter()
            .map(|size| 2 * costs.network_packet + 2 * costs.copy_cost(*size))
            .collect(),
    });

    out
}

/// Renders the report.
pub fn report() -> String {
    let mechanisms = run();
    let mut header = vec!["mechanism".to_string()];
    header.extend(SIZES.iter().map(|s| format!("{s} B")));
    let mut rows = vec![header];
    for m in &mechanisms {
        let mut r = vec![m.name.clone()];
        r.extend(m.cycles.iter().map(|c| format!("{c}")));
        rows.push(r);
    }
    format!(
        "E4 — invocation cost ladder (logical cycles per request/reply)\n\n{}\n\
         shape check: function < IPC < SMC ≈ enclave < mailbox < late-launch < network\n",
        render(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycles_at_16(mechanisms: &[Mechanism], name_contains: &str) -> u64 {
        mechanisms
            .iter()
            .find(|m| m.name.contains(name_contains))
            .unwrap_or_else(|| panic!("mechanism {name_contains}"))
            .cycles[0]
    }

    #[test]
    fn ladder_shape_holds() {
        let m = run();
        let func = cycles_at_16(&m, "function");
        let ipc = cycles_at_16(&m, "microkernel");
        let smc = cycles_at_16(&m, "TrustZone");
        let enclave = cycles_at_16(&m, "SGX");
        let mailbox = cycles_at_16(&m, "SEP");
        let drtm = cycles_at_16(&m, "Flicker");
        let net = cycles_at_16(&m, "cross-machine");
        assert!(func < ipc, "{func} < {ipc}");
        assert!(ipc < smc, "{ipc} < {smc}");
        assert!(smc <= enclave + enclave / 2, "SMC ≈ enclave: {smc} vs {enclave}");
        assert!(enclave < mailbox, "{enclave} < {mailbox}");
        assert!(mailbox < drtm, "{mailbox} < {drtm}");
        assert!(drtm < net, "{drtm} < {net}");
    }

    #[test]
    fn larger_payloads_cost_more() {
        for m in run() {
            if m.name.contains("function") {
                continue; // flat baseline
            }
            assert!(
                m.cycles[3] > m.cycles[0],
                "{}: {:?}",
                m.name,
                m.cycles
            );
        }
    }

    #[test]
    fn report_renders() {
        assert!(report().contains("16384 B"));
    }
}
