//! E9 — the attack × substrate matrix (§II-D).
//!
//! §II-D derives four incremental hardware requirements from an attacker
//! ladder. This experiment runs a concrete attack for every rung against
//! every substrate and records the verdict:
//!
//! * `blocked`  — the operation was denied outright;
//! * `detected` — the operation happened but the victim notices before
//!   consuming corrupted state (integrity MAC, attestation mismatch);
//! * `VULNERABLE` — the attack succeeded silently.
//!
//! Expected shape (the paper's matrix): every substrate blocks software
//! attacks; only memory-encrypting substrates (SGX, SEP) survive bus
//! probing; TrustZone and the plain microkernel leak under physical
//! attack exactly as §II-B/§II-D state; trust anchors turn boot
//! tampering into blocked (secure boot) or detected (authenticated
//! boot); software isolation relies entirely on the compiler.

use lateral_components::compromise::{AttackReport, Subverted, REPORT_QUERY};
use lateral_crypto::sign::SigningKey;
use lateral_hw::bootrom::{BootLog, BootRom, BootStage, LaunchPolicy};
use lateral_hw::device::DeviceKind;
use lateral_hw::machine::MachineBuilder;
use lateral_hw::{HwError, Initiator, World};
use lateral_microkernel::Microkernel;
use lateral_sep::Sep;
use lateral_sgx::Sgx;
use lateral_substrate::attest::TrustPolicy;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_tpm::Tpm;
use lateral_trustzone::TrustZone;

use crate::table::render;

/// Verdict of one attack against one substrate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Denied outright.
    Blocked,
    /// Happened but noticed before damage.
    Detected,
    /// Succeeded silently.
    Vulnerable,
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Blocked => write!(f, "blocked"),
            Verdict::Detected => write!(f, "detected"),
            Verdict::Vulnerable => write!(f, "VULNERABLE"),
        }
    }
}

/// The attacks, in §II-D ladder order.
pub const ATTACKS: [&str; 5] = [
    "peer exploit (forged caps, OOB)",
    "compromised OS reads victim",
    "malicious DMA into victim",
    "bus probe reads secret",
    "bus probe tampers memory",
];

const SECRET: &[u8] = b"asset-0xSECRET42";

/// One substrate's verdicts, aligned with [`ATTACKS`], plus boot.
#[derive(Clone, Debug)]
pub struct MatrixRow {
    /// Substrate name.
    pub substrate: &'static str,
    /// Verdicts for [`ATTACKS`].
    pub verdicts: Vec<Verdict>,
    /// Verdict for boot-chain tampering.
    pub boot: Verdict,
}

/// Runs the "peer exploit" attack on any substrate: a subverted component
/// rampages; blocked iff fully contained.
fn peer_exploit(sub: &mut dyn Substrate) -> Verdict {
    let victim = sub
        .spawn(DomainSpec::named("victim"), Box::new(Echo))
        .expect("spawn");
    let attacker = sub
        .spawn(
            DomainSpec::named("attacker"),
            Box::new(Subverted::new(Echo, b"GO")),
        )
        .expect("spawn");
    let driver = sub
        .spawn(DomainSpec::named("driver"), Box::new(Echo))
        .expect("spawn");
    let cap = sub
        .grant_channel(driver, attacker, Badge(0))
        .expect("grant");
    sub.invoke(driver, &cap, b"GO").expect("exploit");
    let report = AttackReport::decode(&sub.invoke(driver, &cap, REPORT_QUERY).expect("report"))
        .expect("decode");
    let _ = victim;
    if report.contained() {
        Verdict::Blocked
    } else {
        Verdict::Vulnerable
    }
}

fn probe_read_verdict(leaked: Result<Vec<u8>, HwError>) -> Verdict {
    match leaked {
        Ok(bytes) if bytes == SECRET => Verdict::Vulnerable,
        Ok(_) => Verdict::Blocked, // ciphertext only
        Err(_) => Verdict::Blocked,
    }
}

/// Microkernel row.
pub fn microkernel_row() -> MatrixRow {
    let mut mk = Microkernel::new(
        MachineBuilder::new().name("e9-mk").frames(128).build(),
        "e9",
    );
    let peer = peer_exploit(&mut mk);
    let victim = mk
        .spawn(DomainSpec::named("asset-holder"), Box::new(Echo))
        .expect("spawn");
    mk.mem_write(victim, 0, SECRET).expect("write");
    let frame = mk.domain_frames(victim).expect("frames")[0];

    // Compromised hosted OS: a deprivileged legacy domain tries to reach
    // the victim — OOB reads fault, forged caps fail (same mechanics as
    // the peer exploit, exercised through the MMU here).
    let legacy = mk
        .spawn(DomainSpec::named("hosted-os"), Box::new(Echo))
        .expect("spawn");
    let os_read = match mk.mem_read(legacy, 1 << 24, 16) {
        Err(_) => Verdict::Blocked,
        Ok(_) => Verdict::Vulnerable,
    };

    // Malicious DMA: unassigned device aims at the victim.
    let dev = mk.machine().register_device(DeviceKind::Nic, "rogue");
    let dma = match mk.device_dma(dev, victim, 0, b"overwrite") {
        Err(_) => Verdict::Blocked,
        Ok(()) => Verdict::Vulnerable,
    };

    // Physical probe.
    let read = probe_read_verdict(mk.machine().bus_read(
        Initiator::Probe,
        frame.base(),
        SECRET.len(),
    ));
    mk.machine()
        .bus_write(Initiator::Probe, frame.base(), b"corrupted!")
        .expect("probe write");
    let tamper = match mk.mem_read(victim, 0, 10) {
        Ok(bytes) if bytes == b"corrupted!" => Verdict::Vulnerable,
        Ok(_) => Verdict::Blocked,
        Err(_) => Verdict::Detected,
    };

    // Boot: no trust anchor on the plain microkernel machine — tampering
    // the chain goes unnoticed. With a TPM (authenticated boot) it is
    // detected; we report the *plain* microkernel here and give the
    // TPM-anchored variant its own treatment in the report text.
    MatrixRow {
        substrate: "microkernel",
        verdicts: vec![peer, os_read, dma, read, tamper],
        boot: Verdict::Vulnerable,
    }
}

/// TrustZone row.
pub fn trustzone_row() -> MatrixRow {
    let mut tz = TrustZone::new(
        MachineBuilder::new().name("e9-tz").frames(128).build(),
        "e9",
    );
    let peer = peer_exploit(&mut tz);
    let victim = tz
        .spawn(DomainSpec::named("asset-holder"), Box::new(Echo))
        .expect("spawn");
    tz.mem_write(victim, 0, SECRET).expect("write");
    let frame = tz.domain_frames(victim).expect("frames")[0];

    let os_read =
        match tz
            .machine()
            .bus_read(Initiator::cpu(World::Normal), frame.base(), SECRET.len())
        {
            Err(_) => Verdict::Blocked,
            Ok(_) => Verdict::Vulnerable,
        };
    let dev = tz.machine().register_device(DeviceKind::Nic, "rogue");
    let dma = match tz.machine().dma_write(dev, frame.base(), b"overwrite") {
        Err(_) => Verdict::Blocked,
        Ok(()) => Verdict::Vulnerable,
    };
    let read = probe_read_verdict(tz.machine().bus_read(
        Initiator::Probe,
        frame.base(),
        SECRET.len(),
    ));
    tz.machine()
        .bus_write(Initiator::Probe, frame.base(), b"corrupted!")
        .expect("probe write");
    let tamper = match tz.mem_read(victim, 0, 10) {
        Ok(bytes) if bytes == b"corrupted!" => Verdict::Vulnerable,
        Ok(_) => Verdict::Blocked,
        Err(_) => Verdict::Detected,
    };

    // Boot: secure boot ROM rejects a tampered stage.
    let vendor = SigningKey::from_seed(b"e9 vendor");
    let rom = BootRom::new(LaunchPolicy::secure_boot(vendor.verifying_key()));
    let mut chain = vec![BootStage::signed("tz-firmware", b"fw v1", &vendor)];
    chain.push(BootStage::new("implant", b"evil"));
    let mut log = BootLog::default();
    let boot = match rom.boot(&chain, &mut log) {
        Err(_) => Verdict::Blocked,
        Ok(_) => Verdict::Vulnerable,
    };

    MatrixRow {
        substrate: "trustzone",
        verdicts: vec![peer, os_read, dma, read, tamper],
        boot,
    }
}

/// SGX row.
pub fn sgx_row() -> MatrixRow {
    let mut sgx = Sgx::new(
        MachineBuilder::new().name("e9-sgx").frames(128).build(),
        "e9",
    );
    let peer = peer_exploit(&mut sgx);
    let victim = sgx
        .spawn(DomainSpec::named("asset-holder"), Box::new(Echo))
        .expect("spawn");
    sgx.mem_write(victim, 0, SECRET).expect("write");
    let frame = sgx.domain_frames(victim).expect("frames")[0];

    let os_read = match sgx.os_probe_read(frame.base(), SECRET.len()) {
        Err(_) => Verdict::Blocked,
        Ok(_) => Verdict::Vulnerable,
    };
    let dev = sgx.machine().register_device(DeviceKind::Nic, "rogue");
    let dma = match sgx.machine().dma_write(dev, frame.base(), b"overwrite") {
        Err(_) => Verdict::Blocked,
        Ok(()) => Verdict::Vulnerable,
    };
    let read = probe_read_verdict(sgx.machine().bus_read(
        Initiator::Probe,
        frame.base(),
        SECRET.len(),
    ));
    sgx.machine()
        .bus_write(Initiator::Probe, frame.base(), b"corrupted!")
        .expect("probe write");
    let tamper = match sgx.mem_read(victim, 0, 10) {
        Ok(bytes) if bytes == b"corrupted!" => Verdict::Vulnerable,
        Ok(_) => Verdict::Blocked,
        Err(_) => Verdict::Detected,
    };

    // Boot/launch tamper: substituting the enclave image changes the
    // measurement; a verifier expecting the genuine build rejects it.
    let mut policy = TrustPolicy::new();
    policy.trust_platform(sgx.platform_verifying_key().expect("qk"));
    policy.expect_measurement(
        DomainSpec::named("svc")
            .with_image(b"genuine")
            .measurement(),
    );
    let tampered = sgx
        .spawn(
            DomainSpec::named("svc").with_image(b"trojaned"),
            Box::new(Echo),
        )
        .expect("spawn");
    let evidence = sgx.attest(tampered, b"").expect("attest");
    let boot = match policy.verify(&evidence) {
        Err(_) => Verdict::Detected,
        Ok(_) => Verdict::Vulnerable,
    };

    MatrixRow {
        substrate: "sgx",
        verdicts: vec![peer, os_read, dma, read, tamper],
        boot,
    }
}

/// SEP row.
pub fn sep_row() -> MatrixRow {
    let mut sep = Sep::new(
        MachineBuilder::new().name("e9-sep").frames(128).build(),
        "e9",
    );
    let peer = peer_exploit(&mut sep);
    let victim = sep
        .spawn(DomainSpec::named("asset-holder"), Box::new(Echo))
        .expect("spawn");
    sep.mem_write(victim, 0, SECRET).expect("write");
    let frame = sep.domain_frames(victim).expect("frames")[0];

    let os_read =
        match sep
            .machine()
            .bus_read(Initiator::cpu(World::Normal), frame.base(), SECRET.len())
        {
            Err(_) => Verdict::Blocked,
            Ok(_) => Verdict::Vulnerable,
        };
    let dev = sep.machine().register_device(DeviceKind::Nic, "rogue");
    let dma = match sep.machine().dma_write(dev, frame.base(), b"overwrite") {
        Err(_) => Verdict::Blocked,
        Ok(()) => Verdict::Vulnerable,
    };
    let read = probe_read_verdict(sep.machine().bus_read(
        Initiator::Probe,
        frame.base(),
        SECRET.len(),
    ));
    sep.machine()
        .bus_write(Initiator::Probe, frame.base(), b"corrupted!")
        .expect("probe write");
    let tamper = match sep.mem_read(victim, 0, 10) {
        Ok(bytes) if bytes == b"corrupted!" => Verdict::Vulnerable,
        Ok(_) => Verdict::Blocked,
        Err(_) => Verdict::Detected,
    };

    // SEP boots from its own ROM with vendor-signed firmware.
    let vendor = SigningKey::from_seed(b"e9 sep vendor");
    let rom = BootRom::new(LaunchPolicy::secure_boot(vendor.verifying_key()));
    let mut log = BootLog::default();
    let boot = match rom.boot(&[BootStage::new("sep-fw", b"unsigned")], &mut log) {
        Err(_) => Verdict::Blocked,
        Ok(_) => Verdict::Vulnerable,
    };

    MatrixRow {
        substrate: "sep",
        verdicts: vec![peer, os_read, dma, read, tamper],
        boot,
    }
}

/// Software-substrate row. Attacks below the language level cannot even
/// be *expressed* against it in-process, which is precisely its model:
/// the compiler blocks software attacks, and physical attacks win by
/// default (profile-derived verdicts, marked in the report).
pub fn software_row() -> MatrixRow {
    let mut sw = SoftwareSubstrate::new("e9");
    let peer = peer_exploit(&mut sw);
    MatrixRow {
        substrate: "software",
        verdicts: vec![
            peer,
            Verdict::Blocked, // other-domain reads are unrepresentable (type system)
            Verdict::Vulnerable, // no IOMMU defense
            Verdict::Vulnerable, // no memory encryption
            Verdict::Vulnerable, // no integrity protection
        ],
        boot: Verdict::Vulnerable, // no trust anchor
    }
}

/// Demonstrates the TPM upgrade path: the same boot-chain tamper is
/// *detected* (not blocked) under authenticated boot, because the quote
/// no longer matches the known-good composite.
pub fn tpm_authenticated_boot_detects() -> Verdict {
    let rom = BootRom::new(LaunchPolicy::authenticated_boot());
    // Known-good reference boot.
    let mut good_tpm = Tpm::new(b"e9 board");
    rom.boot(
        &[
            BootStage::new("bootloader", b"bl v1"),
            BootStage::new("kernel", b"kernel v1"),
        ],
        &mut good_tpm,
    )
    .expect("boot");
    let known_good = good_tpm.composite(&[0]);
    // Tampered boot on the same board model.
    let mut tpm = Tpm::new(b"e9 board");
    rom.boot(
        &[
            BootStage::new("bootloader", b"bl v1"),
            BootStage::new("kernel", b"kernel v1 + rootkit"),
        ],
        &mut tpm,
    )
    .expect("authenticated boot never refuses");
    let quote = tpm.quote(&[0], b"verifier nonce");
    match quote.verify_state(&tpm.attestation_key(), b"verifier nonce", &known_good) {
        Err(_) => Verdict::Detected,
        Ok(()) => Verdict::Vulnerable,
    }
}

/// Runs the full matrix.
pub fn run() -> Vec<MatrixRow> {
    vec![
        software_row(),
        microkernel_row(),
        trustzone_row(),
        sgx_row(),
        sep_row(),
    ]
}

/// Renders the report.
pub fn report() -> String {
    let matrix = run();
    let mut header = vec!["attack".to_string()];
    header.extend(matrix.iter().map(|r| r.substrate.to_string()));
    let mut rows = vec![header];
    for (i, attack) in ATTACKS.iter().enumerate() {
        let mut r = vec![attack.to_string()];
        r.extend(matrix.iter().map(|m| m.verdicts[i].to_string()));
        rows.push(r);
    }
    let mut boot_row = vec!["boot-chain tamper".to_string()];
    boot_row.extend(matrix.iter().map(|m| m.boot.to_string()));
    rows.push(boot_row);
    format!(
        "E9 — attack × substrate matrix (§II-D)\n\n{}\n\
         TPM upgrade path: the same boot tamper under authenticated boot \
         is '{}'\n\
         (software-substrate physical rows are profile-derived: the model \
         has no bus to probe)\n",
        render(&rows),
        tpm_authenticated_boot_detects()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(matrix: &[MatrixRow], substrate: &str, attack_idx: usize) -> Verdict {
        matrix
            .iter()
            .find(|r| r.substrate == substrate)
            .unwrap()
            .verdicts[attack_idx]
    }

    #[test]
    fn everyone_blocks_software_attacks() {
        let m = run();
        for row in &m {
            assert_eq!(row.verdicts[0], Verdict::Blocked, "{}", row.substrate);
            assert_eq!(row.verdicts[1], Verdict::Blocked, "{}", row.substrate);
        }
    }

    #[test]
    fn trustzone_leaks_under_bus_probe_but_sgx_sep_do_not() {
        let m = run();
        assert_eq!(verdict(&m, "trustzone", 3), Verdict::Vulnerable);
        assert_eq!(verdict(&m, "microkernel", 3), Verdict::Vulnerable);
        assert_eq!(verdict(&m, "sgx", 3), Verdict::Blocked);
        assert_eq!(verdict(&m, "sep", 3), Verdict::Blocked);
    }

    #[test]
    fn memory_encryption_detects_tampering() {
        let m = run();
        assert_eq!(verdict(&m, "sgx", 4), Verdict::Detected);
        assert_eq!(verdict(&m, "sep", 4), Verdict::Detected);
        assert_eq!(verdict(&m, "trustzone", 4), Verdict::Vulnerable);
    }

    #[test]
    fn dma_is_blocked_on_all_hardware_substrates() {
        let m = run();
        for s in ["microkernel", "trustzone", "sgx", "sep"] {
            assert_eq!(verdict(&m, s, 2), Verdict::Blocked, "{s}");
        }
    }

    #[test]
    fn boot_anchors_work_and_tpm_detects() {
        let m = run();
        let boot = |s: &str| m.iter().find(|r| r.substrate == s).unwrap().boot;
        assert_eq!(boot("trustzone"), Verdict::Blocked);
        assert_eq!(boot("sep"), Verdict::Blocked);
        assert_eq!(boot("sgx"), Verdict::Detected);
        assert_eq!(boot("microkernel"), Verdict::Vulnerable);
        assert_eq!(tpm_authenticated_boot_detects(), Verdict::Detected);
    }

    #[test]
    fn report_renders_full_matrix() {
        let r = report();
        assert!(r.contains("bus probe"));
        assert!(r.contains("VULNERABLE"));
    }
}
