//! The reproduction harness: every experiment from `DESIGN.md` §5.
//!
//! The paper ("Lateral Thinking for Trustworthy Apps", ICDCS 2017) is a
//! vision paper without data tables; its three figures are architecture
//! diagrams. This crate regenerates those figures as *executable*
//! artifacts and quantifies the paper's qualitative claims:
//!
//! | id | reproduces | module |
//! |----|-----------|--------|
//! | E1 | Fig. 1 — containment under compromise | [`e1_containment`] |
//! | E2 | Fig. 2 — one component suite on every substrate | [`e2_conformance`] |
//! | E3 | Fig. 3 — smart meter ↔ utility with mutual attestation | [`e3_smart_meter`] |
//! | E4 | §III-E — the cost of decomposition | [`e4_invocation`] |
//! | E5 | §III-D — VPFS overhead and tamper detection | [`e5_vpfs`] |
//! | E6 | §II-C — cache covert channel vs. time partitioning | [`e6_covert`] |
//! | E7 | §I/III-B — per-asset TCB accounting | [`e7_tcb`] |
//! | E8 | §III-C — confused deputy with/without badges | [`e8_deputy`] |
//! | E9 | §II-D — attack × substrate matrix | [`e9_matrix`] |
//! | E10 | §III-A — recovery under fault injection | [`e10_recovery`] |
//! | E11 | §III-B — registry admission and revocation | [`e11_registry`] |
//! | E12 | §II-D/III-C — unified causal telemetry | [`e12_telemetry`] |
//! | E13 | §III-A — invocation throughput, batched crossings | [`e13_throughput`] |
//! | E14 | §III-A — shard scaling, cross-shard crossings | [`e14_scaling`] |
//! | E15 | §III-A/B — fleet robustness: churn, backpressure, recall | [`e15_fleet`] |
//! | E16 | §III-B — web-of-trust certification, incremental EigenTrust | [`e16_wot`] |
//! | E17 | §III-A — telemetry-driven placement, live migration | [`e17_placement`] |
//! | E18 | §III-C — multiplexed remote sessions, resumption, mirrors | [`e18_session`] |
//!
//! Every experiment is deterministic (seeded DRBGs, logical clocks);
//! `cargo run -p lateral-bench --bin repro -- all` prints the full set.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod e10_recovery;
pub mod e11_registry;
pub mod e12_telemetry;
pub mod e13_throughput;
pub mod e14_scaling;
pub mod e15_fleet;
pub mod e16_wot;
pub mod e17_placement;
pub mod e18_session;
pub mod e1_containment;
pub mod e2_conformance;
pub mod e3_smart_meter;
pub mod e4_invocation;
pub mod e5_vpfs;
pub mod e6_covert;
pub mod e7_tcb;
pub mod e8_deputy;
pub mod e9_matrix;
pub mod table;

/// All experiment ids, in order.
pub const EXPERIMENTS: [&str; 18] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18",
];

/// Runs one experiment by id, returning its printed report.
///
/// # Errors
///
/// Returns an error string for unknown ids.
pub fn run(id: &str) -> Result<String, String> {
    match id {
        "e1" => Ok(e1_containment::report()),
        "e2" => Ok(e2_conformance::report()),
        "e3" => Ok(e3_smart_meter::report()),
        "e4" => Ok(e4_invocation::report()),
        "e5" => Ok(e5_vpfs::report()),
        "e6" => Ok(e6_covert::report()),
        "e7" => Ok(e7_tcb::report()),
        "e8" => Ok(e8_deputy::report()),
        "e9" => Ok(e9_matrix::report()),
        "e10" => Ok(e10_recovery::report()),
        "e11" => Ok(e11_registry::report()),
        "e12" => Ok(e12_telemetry::report()),
        "e13" => Ok(e13_throughput::report()),
        "e14" => Ok(e14_scaling::report()),
        "e15" => Ok(e15_fleet::report()),
        "e16" => Ok(e16_wot::report()),
        "e17" => Ok(e17_placement::report()),
        "e18" => Ok(e18_session::report()),
        other => Err(format!(
            "unknown experiment '{other}' (available: {})",
            EXPERIMENTS.join(", ")
        )),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unknown_experiment_is_reported() {
        assert!(super::run("e99").is_err());
    }
}
