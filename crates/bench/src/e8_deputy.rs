//! E8 — the confused deputy, with and without capability badges
//! (§III-C).
//!
//! A multi-client mail store serves Alice and an adversary (Mallory) who
//! runs many sessions, each claiming an identity of her choosing inside
//! the message. In `KernelBadge` mode the store demultiplexes by the
//! substrate-delivered badge; in `MessageField` mode it believes the
//! claim. We count how many of Mallory's theft attempts land, and also
//! run the static detector over a manifest with colliding badges.
//! Expected shape: 0 % success with badges, ~100 % without; the static
//! tool flags the collision.

use lateral_components::mailstore::{ClientIdSource, MailStore};
use lateral_core::analysis::{confused_deputy_candidates, DeputyRisk};
use lateral_core::manifest::{AppManifest, ComponentManifest, Sensitivity};
use lateral_crypto::rng::Drbg;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;

use crate::row;
use crate::table::render;

/// Adversarial sessions per mode.
pub const SESSIONS: usize = 1_000;

/// Result of one mode's trial.
#[derive(Clone, Debug)]
pub struct DeputyTrial {
    /// Identification mode.
    pub mode: &'static str,
    /// Sessions in which Mallory extracted Alice's mail.
    pub thefts: usize,
    /// Total adversarial sessions.
    pub sessions: usize,
}

fn trial(mode: ClientIdSource, name: &'static str) -> DeputyTrial {
    let mut sub = SoftwareSubstrate::new("e8");
    let store = sub
        .spawn(
            DomainSpec::named("mail-store"),
            Box::new(MailStore::new(mode, &[(1, "alice"), (2, "mallory")])),
        )
        .expect("spawn");
    let alice = sub
        .spawn(DomainSpec::named("alice"), Box::new(Echo))
        .expect("spawn");
    let mallory = sub
        .spawn(DomainSpec::named("mallory"), Box::new(Echo))
        .expect("spawn");
    let alice_cap = sub.grant_channel(alice, store, Badge(1)).expect("grant");
    let mallory_cap = sub.grant_channel(mallory, store, Badge(2)).expect("grant");

    // Alice stores her private mail.
    sub.invoke(alice, &alice_cap, b"put:user=alice;the private letter")
        .expect("put");

    let mut rng = Drbg::from_seed(b"e8 adversary");
    let mut thefts = 0;
    for _ in 0..SESSIONS {
        // Mallory varies her lie a little each session.
        let claimed = if rng.gen_bool(9, 10) {
            "alice"
        } else {
            "alice "
        };
        let req = format!("get:user={claimed};0");
        if let Ok(data) = sub.invoke(mallory, &mallory_cap, req.as_bytes()) {
            if data == b"the private letter" {
                thefts += 1;
            }
        }
    }
    DeputyTrial {
        mode: name,
        thefts,
        sessions: SESSIONS,
    }
}

/// Runs both modes.
pub fn run() -> Vec<DeputyTrial> {
    vec![
        trial(ClientIdSource::KernelBadge, "kernel badge (capability)"),
        trial(ClientIdSource::MessageField, "message field (vulnerable)"),
    ]
}

/// A manifest the static detector should flag (two clients, one badge).
pub fn colliding_manifest() -> AppManifest {
    AppManifest::new(
        "deputy-demo",
        vec![
            ComponentManifest::new("alice-ui").channel("mail", "mail-store", 7),
            ComponentManifest::new("mallory-app")
                .legacy()
                .channel("mail", "mail-store", 7),
            ComponentManifest::new("mail-store").asset("mailboxes", Sensitivity::Personal),
        ],
    )
}

/// Renders the report.
pub fn report() -> String {
    let trials = run();
    let mut rows = vec![row!["client identification", "thefts", "sessions", "rate"]];
    for t in &trials {
        rows.push(row![
            t.mode,
            t.thefts,
            t.sessions,
            format!("{:.1}%", 100.0 * t.thefts as f64 / t.sessions as f64)
        ]);
    }
    let warnings = confused_deputy_candidates(&colliding_manifest());
    let mut wrows = vec![row!["component", "finding"]];
    for w in &warnings {
        let finding = match &w.risk {
            DeputyRisk::CollidingBadges { badge, clients } => {
                format!("badge {badge} shared by {}", clients.join(", "))
            }
            DeputyRisk::MixedTrustClients { trusted, legacy } => format!(
                "serves trusted [{}] and legacy [{}]",
                trusted.join(","),
                legacy.join(",")
            ),
        };
        wrows.push(row![w.component, finding]);
    }
    format!(
        "E8 — confused deputy (§III-C)\n\nruntime attack:\n{}\n\
         static detector on a badge-colliding manifest:\n{}\n",
        render(&rows),
        render(&wrows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn badges_stop_every_theft() {
        let trials = run();
        let badge = trials.iter().find(|t| t.mode.contains("badge")).unwrap();
        assert_eq!(badge.thefts, 0);
    }

    #[test]
    fn message_identity_leaks_massively() {
        let trials = run();
        let field = trials.iter().find(|t| t.mode.contains("message")).unwrap();
        // ~90 % of sessions claim exactly "alice" and all of those land.
        assert!(
            field.thefts as f64 / field.sessions as f64 > 0.8,
            "{}/{}",
            field.thefts,
            field.sessions
        );
    }

    #[test]
    fn static_detector_flags_the_collision() {
        let warnings = confused_deputy_candidates(&colliding_manifest());
        assert!(warnings
            .iter()
            .any(|w| matches!(w.risk, DeputyRisk::CollidingBadges { badge: 7, .. })));
        assert!(warnings
            .iter()
            .any(|w| matches!(w.risk, DeputyRisk::MixedTrustClients { .. })));
    }

    #[test]
    fn report_renders() {
        assert!(report().contains("confused deputy"));
    }
}
