//! The reproduction driver: prints the experiment reports of
//! `DESIGN.md` §5.
//!
//! ```text
//! cargo run -p lateral-bench --bin repro -- all     # everything
//! cargo run -p lateral-bench --bin repro -- e1 e6   # a selection
//! cargo run -p lateral-bench --bin repro            # usage + list
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment>... | all");
        eprintln!("experiments: {}", lateral_bench::EXPERIMENTS.join(", "));
        return ExitCode::FAILURE;
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        lateral_bench::EXPERIMENTS.to_vec()
    } else {
        args.iter().map(|s| s.as_str()).collect()
    };
    // Experiments are independent and deterministic: run them in
    // parallel, print in order.
    let mut results: Vec<Option<Result<String, String>>> = ids.iter().map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for id in &ids {
            handles.push(scope.spawn(move || {
                // E14 through E18 also emit machine-readable
                // benchmark records; share one measurement run with
                // the report.
                if *id == "e14" {
                    let (report, json) = lateral_bench::e14_scaling::report_and_json();
                    match std::fs::write("BENCH_E14.json", &json) {
                        Ok(()) => eprintln!("note: wrote BENCH_E14.json"),
                        Err(e) => eprintln!("note: could not write BENCH_E14.json: {e}"),
                    }
                    Ok(report)
                } else if *id == "e15" {
                    let (report, json) = lateral_bench::e15_fleet::report_and_json();
                    match std::fs::write("BENCH_E15.json", &json) {
                        Ok(()) => eprintln!("note: wrote BENCH_E15.json"),
                        Err(e) => eprintln!("note: could not write BENCH_E15.json: {e}"),
                    }
                    Ok(report)
                } else if *id == "e16" {
                    let (report, json) = lateral_bench::e16_wot::report_and_json();
                    match std::fs::write("BENCH_E16.json", &json) {
                        Ok(()) => eprintln!("note: wrote BENCH_E16.json"),
                        Err(e) => eprintln!("note: could not write BENCH_E16.json: {e}"),
                    }
                    Ok(report)
                } else if *id == "e17" {
                    let (report, json) = lateral_bench::e17_placement::report_and_json();
                    match std::fs::write("BENCH_E17.json", &json) {
                        Ok(()) => eprintln!("note: wrote BENCH_E17.json"),
                        Err(e) => eprintln!("note: could not write BENCH_E17.json: {e}"),
                    }
                    Ok(report)
                } else if *id == "e18" {
                    let (report, json) = lateral_bench::e18_session::report_and_json();
                    match std::fs::write("BENCH_E18.json", &json) {
                        Ok(()) => eprintln!("note: wrote BENCH_E18.json"),
                        Err(e) => eprintln!("note: could not write BENCH_E18.json: {e}"),
                    }
                    Ok(report)
                } else {
                    lateral_bench::run(id)
                }
            }));
        }
        for (slot, handle) in results.iter_mut().zip(handles) {
            *slot = Some(handle.join().expect("experiment thread panicked"));
        }
    });
    for result in results.into_iter().flatten() {
        match result {
            Ok(report) => {
                println!("{report}");
                println!("{}", "=".repeat(72));
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
