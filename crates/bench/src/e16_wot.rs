//! E16 — web-of-trust certification: distributed review proofs and
//! incremental EigenTrust scoring at registry scale.
//!
//! E11 gates the registry's single-authority passes (POLA lint, TCB
//! budget, publisher chain). This experiment gates the *distributed*
//! fourth pass ([`lateral_wot`] + the registry's `wot-threshold`): many
//! mutually suspicious reviewers exchange signed review/trust proofs,
//! and a digest is admitted only while its aggregated EigenTrust-
//! weighted review score clears the assembly's threshold. Three legs:
//!
//! * **Backend sweep** (all six backends): the full wot parity case
//!   (spawn, wot-gated resolve, distrust-wave demotion, same-tick
//!   quarantine) followed by a [`SWEEP_REVIEWERS`]-reviewer cohort
//!   scoring [`SWEEP_SUBJECTS`] images through the registry. The gate:
//!   the Q32.32 score-matrix digest and the demotion split are
//!   identical on every backend and across runs — no floats anywhere,
//!   so there is nothing for a backend or host to perturb.
//! * **Incremental audit**: [`MIXED_DELTAS`] review-heavy mixed deltas
//!   (re-reviews, trust-edge changes, revocations) replayed against a
//!   converged graph in rounds; after every round the warm (drift-
//!   bounded incremental) re-convergence must be **byte-identical** to
//!   a forced cold recompute of the same state, and never iterate more
//!   than cold plus its one probe. A final review-only distrust wave
//!   re-certifies with *zero* matrix work ([`ConvergeMode::Clean`]) —
//!   the quarantine path costs no EigenTrust iterations at all.
//! * **Wall-clock measurement** (software registry only): ≥100k
//!   component images and ≥1M signed proofs (release; debug builds
//!   shrink the population) ingested through the registry with every
//!   signature verified, then the cold fixed point and a one-delta
//!   warm re-convergence are timed. Written to `BENCH_E16.json`; lines
//!   are prefixed `wall-clock` so the run-twice determinism gate in
//!   `scripts/check.sh` can filter them.

use std::time::{Duration, Instant};

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_registry::Registry;
use lateral_substrate::testkit::parity;
use lateral_wot::{ConvergeMode, Proof, Rating, ReviewProof, Revocation, TrustGraph, TrustProof};

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Reviewer cohort of the per-backend certification sweep.
pub const SWEEP_REVIEWERS: usize = 60;

/// Component images scored in the per-backend sweep; every third one
/// takes a full distrust wave.
pub const SWEEP_SUBJECTS: usize = 40;

/// Reviewer web of the incremental-identity audit (debug scale).
#[cfg(debug_assertions)]
pub const AUDIT_REVIEWERS: usize = 80;
/// Reviewer web of the incremental-identity audit.
#[cfg(not(debug_assertions))]
pub const AUDIT_REVIEWERS: usize = 2_000;

/// Reviewed images in the audit graph (debug scale).
#[cfg(debug_assertions)]
pub const AUDIT_SUBJECTS: usize = 200;
/// Reviewed images in the audit graph.
#[cfg(not(debug_assertions))]
pub const AUDIT_SUBJECTS: usize = 10_000;

/// Mixed deltas replayed against the audit graph (debug scale).
#[cfg(debug_assertions)]
pub const MIXED_DELTAS: usize = 400;
/// Mixed deltas replayed against the audit graph.
#[cfg(not(debug_assertions))]
pub const MIXED_DELTAS: usize = 10_000;

/// Deltas per audit round; each round gates warm == cold (debug scale).
#[cfg(debug_assertions)]
pub const DELTAS_PER_ROUND: usize = 40;
/// Deltas per audit round; each round gates warm == cold.
#[cfg(not(debug_assertions))]
pub const DELTAS_PER_ROUND: usize = 100;

/// Reviewer population of the wall-clock scale run (debug scale).
#[cfg(debug_assertions)]
pub const SCALE_REVIEWERS: usize = 240;
/// Reviewer population of the wall-clock scale run.
#[cfg(not(debug_assertions))]
pub const SCALE_REVIEWERS: usize = 20_000;

/// Component images of the scale run (release: the ≥100k claim,
/// debug scale).
#[cfg(debug_assertions)]
pub const SCALE_SUBJECTS: usize = 600;
/// Component images of the scale run (the ≥100k-component claim).
#[cfg(not(debug_assertions))]
pub const SCALE_SUBJECTS: usize = 100_000;

/// Signed reviews per image in the scale run (debug scale).
#[cfg(debug_assertions)]
pub const SCALE_REVIEWS_PER_SUBJECT: usize = 7;
/// Signed reviews per image in the scale run (with the vouch tree this
/// puts the proof count past one million).
#[cfg(not(debug_assertions))]
pub const SCALE_REVIEWS_PER_SUBJECT: usize = 10;

/// Proofs issued per batch in the scale run, so issuance (signing)
/// stays out of the ingest clock without holding a million proofs in
/// memory at once.
const SCALE_CHUNK: usize = 20_000;

/// One backend's certification sweep outcome.
#[derive(Clone, Debug)]
pub struct BackendWot {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Reviewer nodes in the trust graph after the sweep.
    pub nodes: u64,
    /// Positive trust edges in the matrix.
    pub edges: u64,
    /// Proofs the registry ingested (every signature verified).
    pub proofs: u64,
    /// Images below the admission threshold after the distrust waves.
    pub demoted: usize,
    /// Canonical Q32.32 score-matrix digest — must match on every
    /// backend and across runs.
    pub scores_digest: String,
}

fn sweep_subject(s: usize) -> Digest {
    Digest::of(format!("e16 sweep image {s}").as_bytes())
}

/// Runs the certification sweep on the backend at `idx` in the
/// conformance pool.
fn run_backend(idx: usize) -> BackendWot {
    let mut sub = all_substrates().remove(idx);
    let backend = sub.profile().name.clone();
    let mut registry = Registry::new(&format!("e16-wot-{backend}"));
    // The full parity case first: wot-gated resolve, spawn, distrust
    // demotion — on *this* backend.
    parity::assert_wot_demotion_quarantined(sub.as_mut(), &mut registry);

    // Grow the parity world into a reviewer cohort: a seeded root, a
    // vouch web, and five reviews per image. Every third image takes a
    // full distrust wave.
    let reviewers: Vec<SigningKey> = (0..SWEEP_REVIEWERS)
        .map(|i| SigningKey::from_seed(format!("e16 sweep reviewer {i}").as_bytes()))
        .collect();
    registry
        .wot_graph_mut()
        .expect("the parity case attaches a trust graph")
        .seed_root(&reviewers[0].verifying_key().to_bytes());
    registry.set_wot_threshold(Some(1));
    let mut rng = Drbg::from_seed(b"e16 sweep");
    for i in 1..SWEEP_REVIEWERS {
        let voucher = rng.gen_range(i as u64) as usize;
        let vouch = TrustProof::issue(
            &reviewers[voucher],
            &reviewers[i].verifying_key(),
            Rating::High,
            1,
        );
        registry
            .ingest_proof(&Proof::Trust(vouch))
            .expect("vouch verifies");
    }
    for _ in 0..SWEEP_REVIEWERS {
        let a = rng.gen_range(SWEEP_REVIEWERS as u64) as usize;
        let mut b = rng.gen_range(SWEEP_REVIEWERS as u64) as usize;
        if a == b {
            b = (b + 1) % SWEEP_REVIEWERS;
        }
        let r = *rng
            .choose(&[Rating::Neutral, Rating::Trust, Rating::High])
            .expect("nonempty");
        let cross = TrustProof::issue(&reviewers[a], &reviewers[b].verifying_key(), r, 2);
        registry
            .ingest_proof(&Proof::Trust(cross))
            .expect("cross edge verifies");
    }
    for s in 0..SWEEP_SUBJECTS {
        for _ in 0..5 {
            let reviewer = &reviewers[rng.gen_range(SWEEP_REVIEWERS as u64) as usize];
            let rating = if s % 3 == 0 {
                Rating::Distrust
            } else {
                *rng.choose(&[Rating::Trust, Rating::High])
                    .expect("nonempty")
            };
            let review = ReviewProof::issue(reviewer, sweep_subject(s), rating, 3);
            registry
                .ingest_proof(&Proof::Review(review))
                .expect("review verifies");
        }
    }
    let demoted = (0..SWEEP_SUBJECTS)
        .filter(|&s| registry.wot_demoted(sweep_subject(s)))
        .count();
    assert!(
        demoted >= SWEEP_SUBJECTS.div_ceil(3),
        "{backend}: every distrust-waved image must demote ({demoted})"
    );
    assert!(
        demoted < SWEEP_SUBJECTS,
        "{backend}: endorsed images must clear the threshold"
    );
    let proofs = registry.stats().wot_proofs;
    let graph = registry.wot_graph_mut().expect("graph attached");
    let scores_digest = graph.scores_digest().short_hex();
    BackendWot {
        backend,
        nodes: graph.node_count() as u64,
        edges: graph.edge_count() as u64,
        proofs,
        demoted,
        scores_digest,
    }
}

/// Runs the certification sweep on all six backends.
#[must_use]
pub fn run() -> Vec<BackendWot> {
    (0..all_substrates().len()).map(run_backend).collect()
}

/// The incremental-identity audit outcome.
#[derive(Clone, Copy, Debug)]
pub struct DeltaAudit {
    /// Mixed deltas replayed.
    pub deltas: u64,
    /// Gate rounds (each checks warm == cold byte-identity).
    pub rounds: u64,
    /// Warm (incremental) iterations across all rounds, probes
    /// included.
    pub warm_iterations: u64,
    /// Cold (forced full) iterations across all rounds.
    pub cold_iterations: u64,
    /// Matrix rows re-normalized by warm runs — only the dirty ones.
    pub rows_rebuilt: u64,
    /// Rounds whose warm converge was matrix-clean (review-only).
    pub clean_rounds: u64,
    /// Rounds whose warm converge ran incrementally.
    pub incremental_rounds: u64,
    /// Every round's warm digest matched its forced cold recompute.
    pub identical: bool,
    /// The final review-only distrust wave re-certified in zero
    /// iterations.
    pub wave_was_free: bool,
}

fn audit_subject(s: usize) -> Digest {
    Digest::of(format!("e16 audit image {s}").as_bytes())
}

/// Replays [`MIXED_DELTAS`] review-heavy mixed deltas (re-reviews,
/// trust edges, revocations) in rounds of [`DELTAS_PER_ROUND`]; after
/// every round the warm re-convergence is checked byte-for-byte
/// against a forced cold recompute of the same state.
#[must_use]
pub fn delta_audit() -> DeltaAudit {
    let reviewers: Vec<SigningKey> = (0..AUDIT_REVIEWERS)
        .map(|i| SigningKey::from_seed(format!("e16 audit reviewer {i}").as_bytes()))
        .collect();
    let mut g = TrustGraph::new();
    g.seed_root(&reviewers[0].verifying_key().to_bytes());
    g.seed_root(&reviewers[1].verifying_key().to_bytes());
    // Binary vouch tree: every reviewer reachable from the roots.
    let mut issued: Vec<(usize, TrustProof)> = Vec::new();
    for i in 1..AUDIT_REVIEWERS {
        let voucher = (i - 1) / 2;
        let p = TrustProof::issue(
            &reviewers[voucher],
            &reviewers[i].verifying_key(),
            Rating::High,
            1,
        );
        g.ingest_trust(&p).expect("vouch verifies");
        issued.push((voucher, p));
    }
    for s in 0..AUDIT_SUBJECTS {
        for k in 0..3 {
            let r = (s + k * 97) % AUDIT_REVIEWERS;
            g.ingest_review(&ReviewProof::issue(
                &reviewers[r],
                audit_subject(s),
                Rating::Trust,
                1,
            ))
            .expect("base review verifies");
        }
    }
    // Cold baseline, so every audited round starts from a fixed point.
    g.converge();

    let rounds = MIXED_DELTAS / DELTAS_PER_ROUND;
    let mut audit = DeltaAudit {
        deltas: 0,
        rounds: rounds as u64,
        warm_iterations: 0,
        cold_iterations: 0,
        rows_rebuilt: 0,
        clean_rounds: 0,
        incremental_rounds: 0,
        identical: true,
        wave_was_free: false,
    };
    let mut rng = Drbg::from_seed(b"e16 audit deltas");
    for round in 0..rounds {
        let epoch = 10 + round as u64;
        for i in 0..DELTAS_PER_ROUND {
            if i % 50 == 49 && !issued.is_empty() {
                // Revocation: the issuer withdraws one of its proofs.
                let victim = rng.gen_range(issued.len() as u64) as usize;
                let (issuer, p) = issued.swap_remove(victim);
                g.ingest_revocation(&Revocation::issue(&reviewers[issuer], p.id(), epoch))
                    .expect("revocation verifies");
            } else if i % 12 == 11 {
                // Trust-edge change: dirties one matrix row.
                let a = rng.gen_range(AUDIT_REVIEWERS as u64) as usize;
                let mut b = rng.gen_range(AUDIT_REVIEWERS as u64) as usize;
                if a == b {
                    b = (b + 1) % AUDIT_REVIEWERS;
                }
                let r = *rng.choose(&Rating::ALL).expect("nonempty");
                let p = TrustProof::issue(&reviewers[a], &reviewers[b].verifying_key(), r, epoch);
                let _ = g.ingest_trust(&p).expect("trust delta verifies");
                issued.push((a, p));
            } else {
                // The common case: a re-review (the distrust-wave shape).
                let s = rng.gen_range(AUDIT_SUBJECTS as u64) as usize;
                let r = rng.gen_range(AUDIT_REVIEWERS as u64) as usize;
                let rating = *rng.choose(&Rating::ALL).expect("nonempty");
                let _ = g
                    .ingest_review(&ReviewProof::issue(
                        &reviewers[r],
                        audit_subject(s),
                        rating,
                        epoch,
                    ))
                    .expect("review delta verifies");
            }
            audit.deltas += 1;
        }
        let warm_digest = g.scores_digest();
        let warm = g.last_report().expect("warm run reported");
        g.force_full();
        let cold_digest = g.scores_digest();
        let cold = g.last_report().expect("cold run reported");
        assert!(
            warm.converged && cold.converged,
            "round {round}: both chains within the iteration budget"
        );
        assert!(
            warm.iterations <= cold.iterations + 1,
            "round {round}: warm must not beat cold by losing ({warm:?} vs {cold:?})"
        );
        if warm_digest != cold_digest {
            audit.identical = false;
        }
        audit.warm_iterations += warm.iterations;
        audit.cold_iterations += cold.iterations;
        audit.rows_rebuilt += warm.rows_rebuilt;
        match warm.mode {
            ConvergeMode::Clean => audit.clean_rounds += 1,
            ConvergeMode::Incremental => audit.incremental_rounds += 1,
            ConvergeMode::Full => {}
        }
    }

    // The flagship saving: a distrust wave is review-only, so
    // re-certification after it needs zero matrix work.
    let wave_subject = audit_subject(AUDIT_SUBJECTS);
    for reviewer in reviewers.iter().take(3) {
        g.ingest_review(&ReviewProof::issue(
            reviewer,
            wave_subject,
            Rating::Distrust,
            1_000,
        ))
        .expect("wave review verifies");
    }
    let wave = g.converge();
    audit.wave_was_free = wave.mode == ConvergeMode::Clean && wave.iterations == 0;
    assert!(
        g.subject_score_fx(wave_subject) < 0,
        "a root-led distrust wave drags the subject negative"
    );
    audit
}

/// The wall-clock scale run outcome.
#[derive(Clone, Copy, Debug)]
pub struct ScaleRun {
    /// Reviewer population.
    pub reviewers: u64,
    /// Component images reviewed.
    pub subjects: u64,
    /// Proofs ingested through the registry (signatures verified).
    pub proofs: u64,
    /// Ingest throughput, proofs per second.
    pub proofs_per_sec: u64,
    /// Cold EigenTrust fixed point latency, milliseconds.
    pub full_converge_ms: u64,
    /// Iterations the cold fixed point took.
    pub full_iterations: u64,
    /// Warm re-convergence latency after one trust-edge delta,
    /// milliseconds.
    pub incremental_reconverge_ms: u64,
    /// Iterations the warm re-convergence took (probe included).
    pub incremental_iterations: u64,
}

fn scale_subject(s: usize) -> Digest {
    Digest::of(format!("e16 scale image {s}").as_bytes())
}

fn millis(d: Duration) -> u64 {
    u64::try_from(d.as_millis()).unwrap_or(u64::MAX)
}

/// Ingests the full-scale proof population through a software
/// registry, timing ingest (signature verification included), the
/// cold fixed point, and a one-delta warm re-convergence.
#[must_use]
pub fn run_wall_clock() -> ScaleRun {
    let reviewers: Vec<SigningKey> = (0..SCALE_REVIEWERS)
        .map(|i| SigningKey::from_seed(format!("e16 scale reviewer {i}").as_bytes()))
        .collect();
    let mut registry = Registry::new("e16-wot-scale");
    let mut graph = TrustGraph::new();
    graph.seed_root(&reviewers[0].verifying_key().to_bytes());
    registry.attach_wot(graph, 0);

    let mut ingest = Duration::ZERO;
    let mut chunk: Vec<Proof> = Vec::with_capacity(SCALE_CHUNK);
    // Binary vouch tree, batched so issuance (signing) stays out of
    // the ingest clock.
    let mut i = 1;
    while i < SCALE_REVIEWERS {
        chunk.clear();
        while i < SCALE_REVIEWERS && chunk.len() < SCALE_CHUNK {
            let vouch = TrustProof::issue(
                &reviewers[(i - 1) / 2],
                &reviewers[i].verifying_key(),
                Rating::High,
                1,
            );
            chunk.push(Proof::Trust(vouch));
            i += 1;
        }
        let t = Instant::now();
        for p in &chunk {
            registry.ingest_proof(p).expect("vouch verifies");
        }
        ingest += t.elapsed();
    }
    let mut s = 0;
    while s < SCALE_SUBJECTS {
        chunk.clear();
        while s < SCALE_SUBJECTS && chunk.len() + SCALE_REVIEWS_PER_SUBJECT <= SCALE_CHUNK {
            let subject = scale_subject(s);
            for k in 0..SCALE_REVIEWS_PER_SUBJECT {
                let r = (s + k * 97) % SCALE_REVIEWERS;
                let rating = match (s + k) % 7 {
                    0 => Rating::Trust,
                    6 => Rating::Neutral,
                    _ => Rating::High,
                };
                chunk.push(Proof::Review(ReviewProof::issue(
                    &reviewers[r],
                    subject,
                    rating,
                    1,
                )));
            }
            s += 1;
        }
        let t = Instant::now();
        for p in &chunk {
            registry.ingest_proof(p).expect("review verifies");
        }
        ingest += t.elapsed();
    }
    let proofs = registry.stats().wot_proofs;

    let t = Instant::now();
    let full = registry.wot_graph_mut().expect("graph attached").converge();
    let full_converge_ms = millis(t.elapsed());
    assert_eq!(full.mode, ConvergeMode::Full, "first convergence runs cold");
    assert!(full.converged, "cold chain within the iteration budget");

    // One trust-edge delta, then the warm re-convergence the registry
    // would run on the next resolve.
    let delta = TrustProof::issue(
        &reviewers[0],
        &reviewers[SCALE_REVIEWERS / 2].verifying_key(),
        Rating::Trust,
        2,
    );
    registry
        .ingest_proof(&Proof::Trust(delta))
        .expect("delta verifies");
    let t = Instant::now();
    let incr = registry.wot_graph_mut().expect("graph attached").converge();
    let incremental_reconverge_ms = millis(t.elapsed());
    assert_eq!(
        incr.mode,
        ConvergeMode::Incremental,
        "one edit re-converges warm"
    );
    assert!(incr.converged, "warm chain within the iteration budget");

    // A review-only distrust wave demotes the image with zero matrix
    // work — the fleet-recall path at full registry scale.
    assert!(
        !registry.wot_demoted(scale_subject(0)),
        "a positively reviewed image is certified"
    );
    for k in 0..SCALE_REVIEWS_PER_SUBJECT {
        let r = (k * 97) % SCALE_REVIEWERS;
        let wave = ReviewProof::issue(&reviewers[r], scale_subject(0), Rating::Distrust, 2);
        registry
            .ingest_proof(&Proof::Review(wave))
            .expect("wave review verifies");
    }
    let wave = registry.wot_graph_mut().expect("graph attached").converge();
    assert_eq!(
        wave.mode,
        ConvergeMode::Clean,
        "a review-only wave needs no matrix work"
    );
    assert!(
        registry.wot_demoted(scale_subject(0)),
        "the wave demotes the image"
    );

    let secs = ingest.as_secs_f64();
    let proofs_per_sec = if secs > 0.0 {
        (proofs as f64 / secs) as u64
    } else {
        u64::MAX
    };
    ScaleRun {
        reviewers: SCALE_REVIEWERS as u64,
        subjects: SCALE_SUBJECTS as u64,
        proofs,
        proofs_per_sec,
        full_converge_ms,
        full_iterations: full.iterations,
        incremental_reconverge_ms,
        incremental_iterations: incr.iterations,
    }
}

fn group(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

/// The machine-readable benchmark record `repro` writes to
/// `BENCH_E16.json`: the population, the throughput and latency
/// measurements, and the three gate verdicts.
#[must_use]
pub fn bench_json(scale: &ScaleRun, audit: &DeltaAudit, invariant: bool, digest: &str) -> String {
    format!(
        "{{\n  \"experiment\": \"e16\",\n  \
         \"reviewers\": {},\n  \
         \"subjects\": {},\n  \
         \"proofs\": {},\n  \
         \"proofs_per_sec\": {},\n  \
         \"full_converge_ms\": {},\n  \
         \"full_iterations\": {},\n  \
         \"incremental_reconverge_ms\": {},\n  \
         \"incremental_iterations\": {},\n  \
         \"mixed_deltas\": {},\n  \
         \"incremental_identical\": {},\n  \
         \"wave_reconverge_free\": {},\n  \
         \"backend_invariant\": {invariant},\n  \
         \"scores_digest\": \"{digest}\"\n}}\n",
        scale.reviewers,
        scale.subjects,
        scale.proofs,
        scale.proofs_per_sec,
        scale.full_converge_ms,
        scale.full_iterations,
        scale.incremental_reconverge_ms,
        scale.incremental_iterations,
        audit.deltas,
        audit.identical,
        audit.wave_was_free,
    )
}

/// Renders the web-of-trust certification report.
#[must_use]
pub fn report() -> String {
    report_and_json().0
}

/// Renders the report together with the machine-readable
/// `BENCH_E16.json` payload, sharing one measurement run.
#[must_use]
pub fn report_and_json() -> (String, String) {
    let results = run();
    let audit = delta_audit();
    let scale = run_wall_clock();

    let mut rows = vec![vec![
        "backend".to_string(),
        "nodes".to_string(),
        "edges".to_string(),
        "proofs".to_string(),
        "demoted".to_string(),
        "scores digest".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            b.nodes.to_string(),
            b.edges.to_string(),
            b.proofs.to_string(),
            b.demoted.to_string(),
            b.scores_digest.clone(),
        ]);
    }
    let invariant = results
        .iter()
        .all(|b| b.scores_digest == results[0].scores_digest);
    let digest = results.first().map_or("-", |b| b.scores_digest.as_str());

    let json = bench_json(&scale, &audit, invariant, digest);
    let report = format!(
        "E16 — web-of-trust certification: review proofs, incremental EigenTrust\n\n\
         {}\n\
         Each backend ran the wot parity case (wot-gated resolve, spawn,\n\
         distrust-wave demotion) and then scored {} images under a\n\
         {}-reviewer cohort through the registry's wot-threshold pass.\n\
         The Q32.32 fixed point hashes to the same score digest on every\n\
         backend (backend-invariant: {}).\n\n\
         Incremental audit: {} review-heavy mixed deltas in {} rounds;\n\
         every warm re-convergence was byte-identical to a forced cold\n\
         recompute of the same state (identical: {}). Warm runs spent\n\
         {} iterations (probe included, never more than cold + 1 per\n\
         round) against {} cold, re-normalizing only {} dirty matrix\n\
         rows; the closing review-only distrust wave re-certified in 0\n\
         iterations (wave free: {}).\n\n\
         wall-clock   wot: {:>9} proofs ingested/sec ({} proofs over {} reviewers, {} images, software registry)\n\
         wall-clock   wot: cold fixed point {} ms ({} iters); warm re-converge after one trust delta {} ms ({} iters)\n",
        render(&rows),
        SWEEP_SUBJECTS,
        SWEEP_REVIEWERS,
        if invariant { "yes" } else { "NO" },
        group(audit.deltas),
        audit.rounds,
        if audit.identical { "yes" } else { "NO" },
        group(audit.warm_iterations),
        group(audit.cold_iterations),
        audit.rows_rebuilt,
        if audit.wave_was_free { "yes" } else { "NO" },
        group(scale.proofs_per_sec),
        group(scale.proofs),
        group(scale.reviewers),
        group(scale.subjects),
        scale.full_converge_ms,
        scale.full_iterations,
        scale.incremental_reconverge_ms,
        scale.incremental_iterations,
    );
    (report, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_backend_invariant() {
        let results = run();
        assert_eq!(results.len(), 6, "the sweep covers every backend");
        for b in &results {
            assert_eq!(
                b.scores_digest, results[0].scores_digest,
                "{}: the score digest must be backend-invariant",
                b.backend
            );
            assert_eq!(b.demoted, results[0].demoted, "{}", b.backend);
            assert_eq!(b.nodes, results[0].nodes, "{}", b.backend);
            assert!(b.proofs > 2 * SWEEP_REVIEWERS as u64, "{}", b.backend);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let (a, b) = (run_backend(0), run_backend(0));
        assert_eq!(a.scores_digest, b.scores_digest);
        assert_eq!(a.demoted, b.demoted);
        assert_eq!(a.proofs, b.proofs);
    }

    #[test]
    fn mixed_deltas_keep_incremental_byte_identical() {
        let audit = delta_audit();
        assert!(audit.identical, "warm must equal cold every round");
        assert_eq!(audit.deltas, MIXED_DELTAS as u64);
        assert_eq!(
            audit.incremental_rounds, audit.rounds,
            "every round carries trust-edge dirt, so every warm run is incremental"
        );
        assert!(audit.wave_was_free, "review-only waves re-certify clean");
        assert!(audit.rows_rebuilt > 0, "edits dirty matrix rows");
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (a, b) = (report(), report());
        assert_eq!(
            strip(&a),
            strip(&b),
            "two runs must differ only on wall-clock lines"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let scale = ScaleRun {
            reviewers: 20_000,
            subjects: 100_000,
            proofs: 1_019_999,
            proofs_per_sec: 40_000,
            full_converge_ms: 12,
            full_iterations: 180,
            incremental_reconverge_ms: 3,
            incremental_iterations: 40,
        };
        let audit = DeltaAudit {
            deltas: 10_000,
            rounds: 100,
            warm_iterations: 9_000,
            cold_iterations: 9_500,
            rows_rebuilt: 800,
            clean_rounds: 0,
            incremental_rounds: 100,
            identical: true,
            wave_was_free: true,
        };
        let json = bench_json(&scale, &audit, true, "0011223344556677");
        assert!(json.contains("\"experiment\": \"e16\""));
        assert!(json.contains("\"proofs\": 1019999"));
        assert!(json.contains("\"incremental_identical\": true"));
        assert!(json.contains("\"backend_invariant\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
