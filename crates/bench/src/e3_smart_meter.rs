//! E3 — Figure 3 end to end: the smart-meter world under attack.
//!
//! One honest run plus the full attack suite. Expected shape: billing
//! succeeds only in the honest configuration; every attack is either
//! *refused by the correct party* (attestation/crypto) or *degraded to
//! denial of service* (which no cryptography can prevent); the gateway
//! caps the DDoS contribution; the trusted indicator unmasks phishing.

use lateral_apps::smart_meter::{BillingOutcome, SmartMeterWorld, WorldConfig};
use lateral_net::sim::AttackMode;
use lateral_net::Addr;

use crate::row;
use crate::table::render;

/// One scenario outcome.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Scenario name.
    pub name: &'static str,
    /// What happened.
    pub outcome: String,
    /// Whether this matches the security argument of the paper.
    pub as_expected: bool,
}

/// Runs the scenario suite.
pub fn run() -> Vec<Scenario> {
    let mut scenarios = Vec::new();

    // Honest world.
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    let honest = world.billing_round();
    let retained = world.retained_identified_records();
    scenarios.push(Scenario {
        name: "honest billing round",
        outcome: format!("{honest:?}, retained identified records: {retained}"),
        as_expected: matches!(honest, BillingOutcome::Billed(_)) && retained == 0,
    });

    // Manipulated anonymizer.
    let mut world = SmartMeterWorld::new(WorldConfig {
        manipulated_anonymizer: true,
        ..WorldConfig::default()
    });
    let outcome = world.billing_round();
    let retained = world.retained_identified_records();
    scenarios.push(Scenario {
        name: "manipulated anonymizer",
        outcome: format!("{outcome:?}, retained: {retained}"),
        as_expected: matches!(&outcome, BillingOutcome::Refused(r) if r.contains("meter:"))
            && retained == 0,
    });

    // Fake meter (software emulation without trust anchor).
    let mut world = SmartMeterWorld::new(WorldConfig {
        fake_meter: true,
        ..WorldConfig::default()
    });
    let outcome = world.billing_round();
    scenarios.push(Scenario {
        name: "fake meter (emulation)",
        outcome: format!("{outcome:?}"),
        as_expected: matches!(&outcome, BillingOutcome::Refused(r) if r.contains("utility:")),
    });

    // Network corruption.
    let mut world = SmartMeterWorld::new(WorldConfig {
        network_attack: AttackMode::CorruptAll,
        ..WorldConfig::default()
    });
    let outcome = world.billing_round();
    scenarios.push(Scenario {
        name: "in-path corruption",
        outcome: format!("{outcome:?}"),
        as_expected: !matches!(outcome, BillingOutcome::Billed(_)),
    });

    // Network redirect (MITM positioning).
    let mut world = SmartMeterWorld::new(WorldConfig {
        network_attack: AttackMode::Redirect {
            victim: Addr::new("utility.example.org"),
            attacker: Addr::new("meter-7.home.example"),
        },
        ..WorldConfig::default()
    });
    let outcome = world.billing_round();
    scenarios.push(Scenario {
        name: "traffic redirection",
        outcome: format!("{outcome:?}"),
        as_expected: !matches!(outcome, BillingOutcome::Billed(_)),
    });

    // DDoS from compromised Android.
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    let (to_victim, denied_victim) = world.android_flood("ddos-victim.example.net", 100, 500);
    scenarios.push(Scenario {
        name: "Android DDoS egress",
        outcome: format!("{to_victim} packets reached the victim, {denied_victim} denied"),
        as_expected: to_victim == 0,
    });

    // Phishing on the appliance.
    let mut world = SmartMeterWorld::new(WorldConfig::default());
    let (indicator, screen) = world.phishing_attempt();
    scenarios.push(Scenario {
        name: "in-appliance phishing",
        outcome: format!("screen: '{screen}', indicator: '{indicator}'"),
        as_expected: indicator == "Android Apps [red]",
    });

    scenarios
}

/// Renders the report.
pub fn report() -> String {
    let scenarios = run();
    let mut rows = vec![row!["scenario", "verdict", "outcome"]];
    for s in &scenarios {
        rows.push(row![
            s.name,
            if s.as_expected { "ok" } else { "UNEXPECTED" },
            s.outcome
        ]);
    }
    let ok = scenarios.iter().filter(|s| s.as_expected).count();
    format!(
        "E3 — smart meter ↔ utility (Figure 3)\n\n{}\n\
         {} of {} scenarios behave as the paper's security argument predicts\n",
        render(&rows),
        ok,
        scenarios.len()
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_scenario_matches_expectation() {
        for s in super::run() {
            assert!(s.as_expected, "{}: {}", s.name, s.outcome);
        }
    }
}
