//! E17 — telemetry-driven placement: profile, plan, live-migrate.
//!
//! The composer places security-first: among the substrates that defend
//! a component's required attacker models it picks the smallest TCB, so
//! a pool pairing one hardware backend with a plain software substrate
//! starts every component on the hardware side — and pays that
//! backend's crossing prices on every call. This experiment closes the
//! observability loop the other way: the fabric's retained trace folds
//! into a [`lateral_telemetry::profile::CrossingProfile`], every pool
//! member exposes its cost model as data
//! ([`lateral_substrate::substrate::Substrate::cost_model`]), and the
//! supervisor's placement optimizer re-prices the *observed* traffic on
//! every candidate — still inside the manifest's isolation envelope —
//! then live-migrates the winners (seal-escrow → destroy → respawn →
//! re-measure → re-attest → re-grant).
//!
//! Per backend pair `[X, software]` we drive a fixed workload window,
//! run `optimize()` + `apply_plan()`, and rerun the *identical* window.
//! Gates:
//!
//! * ticks drop after migration on every hardware pair; the degenerate
//!   `[software, software]` pair ties and stays put (zero moves, equal
//!   windows);
//! * the plan's *decision digest* — component names, observed traffic,
//!   eligibility, and chosen-is-optimal flags, with backend-specific
//!   costs excluded — is identical across all six pairs and across two
//!   runs;
//! * zero POLA violations (no fabric denials, undeclared channels stay
//!   refused), measurements match baselines, and escrowed sealed state
//!   reopens at the new home.
//!
//! Wall-clock lines (steady-state workload rate, one full
//! profile→plan→migrate pipeline) are machine-dependent and prefixed
//! `wall-clock` so `scripts/check.sh` strips them before the run-twice
//! determinism compare.

use std::time::Instant;

use lateral_core::composer::{ComponentFactory, Health};
use lateral_core::manifest::{AppManifest, ComponentManifest};
use lateral_core::supervisor::Supervisor;
use lateral_substrate::component::Component;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;
use lateral_substrate::testkit::Echo;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Workload rounds per measured window (each round is three calls:
/// meter→ledger, ledger→audit, environment→meter).
const ROUNDS: usize = 32;

/// Uncounted rounds driven before each window so lazily granted
/// environment capabilities and bridges exist before measuring.
const WARMUP_ROUNDS: usize = 2;

/// Workload rounds in the wall-clock steady-state leg (software pair).
/// Debug builds run shorter; wall-clock lines are stripped from the
/// determinism compare, so the switch affects only latency.
#[cfg(debug_assertions)]
const WALL_ROUNDS: usize = 2_000;
#[cfg(not(debug_assertions))]
const WALL_ROUNDS: usize = 50_000;

/// Meter → ledger payload (the fat edge).
const METER_PAYLOAD: [u8; 48] = [0x17; 48];
/// Ledger → audit payload.
const AUDIT_PAYLOAD: [u8; 16] = [0x17; 16];
/// Environment → meter payload.
const ENV_PAYLOAD: [u8; 8] = [0x17; 8];

/// The sealed state escrowed through the migration.
const LEDGER_SECRET: &[u8] = b"e17 ledger running total";

/// One `[backend, software]` pair's measurements.
#[derive(Clone, Debug)]
pub struct PairOutcome {
    /// The pair's first pool member (the security-first home).
    pub backend: String,
    /// Substrate the components started on.
    pub placed_before: String,
    /// Substrate the meter ended on after the plan was applied.
    pub placed_after: String,
    /// Moves the plan proposed.
    pub moves: usize,
    /// Live migrations the supervisor performed.
    pub migrations: u32,
    /// Logical ticks one workload window cost before optimization.
    pub ticks_before: u64,
    /// Logical ticks the identical window cost after optimization.
    pub ticks_after: u64,
    /// Saving the plan predicted from profile × cost model.
    pub predicted_saving: u64,
    /// `clean` when no fabric denial occurred and undeclared channels
    /// stayed refused across the migration.
    pub pola: &'static str,
    /// `intact` when every post-migration measurement matches its
    /// baseline and the escrowed sealed blob reopened at the new home.
    pub state: &'static str,
    /// Digest of the full plan (includes backend-specific costs).
    pub plan_digest: String,
    /// Backend-invariant digest of the decisions (costs excluded).
    pub decision_digest: String,
}

fn app() -> AppManifest {
    AppManifest::new(
        "e17",
        vec![
            ComponentManifest::new("meter").channel("feed", "ledger", 17),
            ComponentManifest::new("ledger").channel("audit", "audit", 18),
            ComponentManifest::new("audit"),
        ],
    )
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
}

/// One pool: the conformance backend at `idx` plus a plain software
/// substrate the optimizer can relax onto.
fn pair(idx: usize) -> Vec<Box<dyn Substrate>> {
    vec![
        all_substrates().remove(idx),
        Box::new(SoftwareSubstrate::new("e17-relief")),
    ]
}

/// Drives `rounds` workload rounds (three calls each).
fn drive(sup: &mut Supervisor, rounds: usize) {
    for _ in 0..rounds {
        let fed = sup
            .assembly_mut()
            .call_channel("meter", "feed", &METER_PAYLOAD)
            .expect("meter feed");
        assert_eq!(fed, METER_PAYLOAD, "echo ledger returns the reading");
        sup.assembly_mut()
            .call_channel("ledger", "audit", &AUDIT_PAYLOAD)
            .expect("ledger audit");
        sup.call("meter", &ENV_PAYLOAD).expect("environment poll");
    }
}

/// Sum of the pool's logical clocks — window deltas are exactly the
/// ticks the workload charged.
fn pool_ticks(sup: &mut Supervisor) -> u64 {
    (0..sup.assembly().substrate_count())
        .map(|i| sup.assembly_mut().substrate_mut(i).now())
        .sum()
}

fn pool_denials(sup: &Supervisor) -> u64 {
    sup.assembly().traffic().iter().map(|r| r.denials).sum()
}

/// Runs the full profile → plan → migrate → re-measure cycle on the
/// pair at `idx` in the conformance pool.
fn run_pair(idx: usize) -> PairOutcome {
    let mut sup = Supervisor::new(app(), pair(idx), factory()).expect("compose e17 pair");
    let backend = sup.assembly_mut().substrate_mut(0).profile().name.clone();
    let placed_before = sup.assembly().substrate_of("meter").expect("meter placed");
    let denial_base = pool_denials(&sup);

    // Seal the ledger's running state at its security-first home and
    // escrow it with the supervisor: sealing keys never cross
    // substrates, so migration must carry the plaintext, not the blob.
    let lp = sup.assembly().placement("ledger").expect("ledger placed");
    let blob = sup
        .assembly_mut()
        .substrate_mut(lp.substrate)
        .seal(lp.domain, LEDGER_SECRET)
        .expect("seal ledger state");
    sup.register_sealed("ledger", blob);

    // Window 1: the observed traffic the profile is folded from.
    drive(&mut sup, WARMUP_ROUNDS);
    let t0 = pool_ticks(&mut sup);
    drive(&mut sup, ROUNDS);
    let ticks_before = pool_ticks(&mut sup) - t0;

    // Profile × every pool cost model → deterministic plan.
    let plan = sup.optimize().expect("optimize");
    let moves = plan.move_count();
    let predicted_saving = plan.predicted_saving();
    let plan_digest = plan.digest().short_hex();
    let decision_digest = plan.decision_digest().short_hex();

    // Live migration: seal-escrow, destroy, respawn on the chosen
    // substrate, re-measure, re-attest, re-grant.
    let applied = sup.apply_plan(&plan).expect("apply plan");
    let migrations: u32 = ["meter", "ledger", "audit"]
        .iter()
        .map(|n| sup.migrations(n))
        .sum();
    assert_eq!(applied, migrations, "apply reports every migration");
    let placed_after = sup.assembly().substrate_of("meter").expect("meter placed");

    // Window 2: the identical workload at the optimized placement.
    drive(&mut sup, WARMUP_ROUNDS);
    let t1 = pool_ticks(&mut sup);
    drive(&mut sup, ROUNDS);
    let ticks_after = pool_ticks(&mut sup) - t1;

    // POLA across the migration: nothing was denied at the fabric, and
    // a channel the manifest never declared still does not exist.
    let undeclared_refused = sup
        .assembly_mut()
        .call_channel("audit", "backdoor", b"x")
        .is_err();
    let pola = if pool_denials(&sup) == denial_base
        && undeclared_refused
        && sup.health() == Health::Healthy
    {
        "clean"
    } else {
        "VIOLATION"
    };

    // State across the migration: measurements still match the
    // composition-time baselines, and the escrowed blob — re-sealed by
    // the migration at the new home — reopens to the same plaintext.
    let measurements_match = ["meter", "ledger", "audit"]
        .iter()
        .all(|n| sup.baseline_measurement(n) == sup.assembly().measurement(n).ok());
    let lp = sup.assembly().placement("ledger").expect("ledger placed");
    let blobs = sup.sealed_blobs("ledger").to_vec();
    let reopened = sup
        .assembly_mut()
        .substrate_mut(lp.substrate)
        .unseal(lp.domain, &blobs[0])
        .expect("unseal escrowed state at the current home");
    let state = if measurements_match && reopened == LEDGER_SECRET {
        "intact"
    } else {
        "DIVERGED"
    };

    PairOutcome {
        backend,
        placed_before,
        placed_after,
        moves,
        migrations,
        ticks_before,
        ticks_after,
        predicted_saving,
        pola,
        state,
        plan_digest,
        decision_digest,
    }
}

/// Runs the cycle on every `[backend, software]` pair.
#[must_use]
pub fn run() -> Vec<PairOutcome> {
    (0..all_substrates().len()).map(run_pair).collect()
}

/// Measures the wall-clock legs: steady-state workload rounds/sec on
/// the software pair, and one full profile→plan→migrate pipeline on the
/// SGX pair (in microseconds).
#[must_use]
pub fn run_wall_clock() -> (u64, u128) {
    let mut sup = Supervisor::new(app(), pair(0), factory()).expect("compose wall pair");
    drive(&mut sup, WARMUP_ROUNDS);
    let start = Instant::now();
    drive(&mut sup, WALL_ROUNDS);
    let secs = start.elapsed().as_secs_f64();
    let per_sec = if secs > 0.0 {
        (WALL_ROUNDS as f64 / secs) as u64
    } else {
        u64::MAX
    };

    // `pair(3)` is the SGX pair in conformance-pool order.
    let mut sup = Supervisor::new(app(), pair(3), factory()).expect("compose pipeline pair");
    drive(&mut sup, WARMUP_ROUNDS + ROUNDS);
    let start = Instant::now();
    let plan = sup.optimize().expect("optimize");
    sup.apply_plan(&plan).expect("apply plan");
    (per_sec, start.elapsed().as_micros())
}

/// The machine-readable record `repro` writes to `BENCH_E17.json`:
/// per-pair ticks before/after and migration counts, the
/// backend-invariant decision digest, and the wall-clock legs.
#[must_use]
pub fn bench_json(results: &[PairOutcome], rounds_per_sec: u64, pipeline_micros: u128) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e17\",\n");
    out.push_str(&format!(
        "  \"rounds_per_window\": {ROUNDS},\n  \"pairs\": [\n"
    ));
    for (i, p) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"ticks_before\": {}, \"ticks_after\": {}, \
             \"moves\": {}, \"migrations\": {}, \"predicted_saving\": {} }}{}\n",
            p.backend,
            p.ticks_before,
            p.ticks_after,
            p.moves,
            p.migrations,
            p.predicted_saving,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    let decision = results.first().map_or("", |p| p.decision_digest.as_str());
    out.push_str(&format!(
        "  ],\n  \"decision_digest\": \"{decision}\",\n  \
         \"wall_clock_rounds_per_sec\": {rounds_per_sec},\n  \
         \"wall_clock_pipeline_micros\": {pipeline_micros}\n}}\n"
    ));
    out
}

/// Renders the placement report.
#[must_use]
pub fn report() -> String {
    report_and_json().0
}

/// Renders the placement report together with the machine-readable
/// `BENCH_E17.json` payload, sharing one measurement run.
#[must_use]
pub fn report_and_json() -> (String, String) {
    let results = run();
    let (rounds_per_sec, pipeline_micros) = run_wall_clock();

    let mut rows = vec![vec![
        "pair".to_string(),
        "placement".to_string(),
        "moves".to_string(),
        "migr".to_string(),
        "ticks before".to_string(),
        "ticks after".to_string(),
        "predicted".to_string(),
        "pola".to_string(),
        "state".to_string(),
    ]];
    for p in &results {
        let placement = if p.moves == 0 {
            format!("{} (stay)", p.placed_before)
        } else {
            format!("{}\u{2192}{}", p.placed_before, p.placed_after)
        };
        rows.push(vec![
            format!("[{} software]", p.backend),
            placement,
            p.moves.to_string(),
            p.migrations.to_string(),
            p.ticks_before.to_string(),
            p.ticks_after.to_string(),
            p.predicted_saving.to_string(),
            p.pola.to_string(),
            p.state.to_string(),
        ]);
    }

    let mut digests = vec![vec![
        "pair".to_string(),
        "plan digest".to_string(),
        "decision digest".to_string(),
    ]];
    for p in &results {
        digests.push(vec![
            format!("[{} software]", p.backend),
            p.plan_digest.clone(),
            p.decision_digest.clone(),
        ]);
    }

    let invariant = results
        .iter()
        .all(|p| p.decision_digest == results[0].decision_digest)
        && results
            .iter()
            .all(|p| p.pola == "clean" && p.state == "intact");
    let json = bench_json(&results, rounds_per_sec, pipeline_micros);
    let report = format!(
        "E17 — telemetry-driven placement: crossing profiles, cost models, live migration\n\n\
         {}\n\
         Each pool pairs one backend with a plain software substrate; the\n\
         composer's security-first rule starts all three components on the\n\
         smaller-TCB backend. The optimizer folds the fabric's observed\n\
         crossing costs into a profile, re-prices that exact traffic on\n\
         every pool member's introspectable cost model, and live-migrates\n\
         the winners — seal-escrow, destroy, respawn, re-measure,\n\
         re-attest, re-grant — after which the identical {}-round window\n\
         costs the ticks above. The [software software] pair ties and\n\
         stays put. Full-plan digests are backend-specific (they price\n\
         in ticks); the decision digest is not (backend-invariant: {}):\n\n\
         {}\n\
         wall-clock   steady state: {} workload rounds/sec (software pair)\n\
         wall-clock   profile\u{2192}plan\u{2192}migrate pipeline: {} \u{b5}s (sgx pair, 3 components)\n",
        render(&rows),
        ROUNDS,
        if invariant { "yes" } else { "NO" },
        render(&digests),
        rounds_per_sec,
        pipeline_micros,
    );
    (report, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_pays_on_every_hardware_pair() {
        let results = run();
        assert_eq!(results.len(), 6, "one pair per backend");
        for p in &results {
            if p.backend == "software" {
                assert_eq!(p.moves, 0, "a balanced pair must stay put");
                assert_eq!(p.migrations, 0);
                assert_eq!(
                    p.ticks_before, p.ticks_after,
                    "identical windows on an unchanged placement"
                );
            } else {
                assert_eq!(p.placed_before, p.backend, "security-first start");
                assert_eq!(p.placed_after, "software", "optimizer relaxes");
                assert_eq!(p.moves, 3, "{}: all three components move", p.backend);
                assert_eq!(p.migrations, 3, "{}", p.backend);
                assert!(
                    p.ticks_after < p.ticks_before,
                    "{}: migration must pay ({} → {})",
                    p.backend,
                    p.ticks_before,
                    p.ticks_after
                );
                assert!(p.predicted_saving > 0, "{}", p.backend);
            }
        }
    }

    #[test]
    fn decision_digest_is_backend_invariant() {
        let results = run();
        for p in &results {
            assert_eq!(
                p.decision_digest, results[0].decision_digest,
                "{}: decisions must be backend-invariant",
                p.backend
            );
        }
    }

    #[test]
    fn migration_violates_nothing() {
        for p in run() {
            assert_eq!(p.pola, "clean", "{}", p.backend);
            assert_eq!(p.state, "intact", "{}", p.backend);
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let (a, b) = (run(), run());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.plan_digest, y.plan_digest, "{}", x.backend);
            assert_eq!(x.ticks_before, y.ticks_before, "{}", x.backend);
            assert_eq!(x.ticks_after, y.ticks_after, "{}", x.backend);
        }
    }

    #[test]
    fn bench_json_is_well_formed() {
        let json = bench_json(&run(), 10_000, 250);
        assert!(json.contains("\"experiment\": \"e17\""));
        assert!(json.contains("\"decision_digest\""));
        assert!(json.contains("\"ticks_before\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
