//! E15 — fleet robustness: deterministic chaos, backpressure, and
//! graceful degradation at ≥100k meters.
//!
//! E3 reproduces Figure 3 at its natural scale — one meter, one utility
//! server. This experiment gates the same scenario at fleet scale
//! ([`lateral_apps::fleet`]): a 100k-meter fleet (2k in debug builds)
//! ships sealed reading batches through per-shard concentrators into a
//! two-shard aggregation fabric, while the scenario throws everything
//! the robustness machinery claims to absorb:
//!
//! * a **burst round** that overruns the bounded ingest inboxes —
//!   refused readings are shed onto a deterministic retry schedule
//!   (typed [`Overloaded`](lateral_substrate::SubstrateError), counted,
//!   never dropped);
//! * a **1% crash wave** at an exact tick — crashed meters run the full
//!   destroy → backoff → respawn → re-measure → re-attest → re-grant
//!   cycle;
//! * a **mid-fleet firmware recall** — the registry revokes the v2
//!   digest and the whole v2 cohort quarantines in that same tick while
//!   the v1 fleet keeps aggregating;
//! * **steady WAN loss** — every batch crosses with deadline-aware
//!   capped backoff, and an exhausted schedule defers the sealed batch
//!   byte-identically rather than dropping it.
//!
//! Two halves, as in E13/E14:
//!
//! * **Deterministic sweep** (all six backends): the identical scenario
//!   on a two-shard fabric of same-seed instances of each backend. The
//!   gates: zero lost acknowledged readings (conservation), shed > 0,
//!   and a fleet-state digest that is identical across every backend
//!   and across two runs.
//! * **Wall-clock measurement** (software backend only): end-to-end
//!   acknowledged readings/sec for the full chaos scenario, written to
//!   `BENCH_E15.json`. Lines are prefixed `wall-clock` so the
//!   run-twice determinism gate in `scripts/check.sh` can filter them.

use std::time::Instant;

use lateral_apps::fleet::{FleetConfig, FleetStats, FleetWorld, FLEET_FW_V2_NAME};
use lateral_substrate::fault::{ChurnEvent, ChurnPlan};
use lateral_substrate::substrate::Substrate;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Fleet size. Debug builds shrink the fleet so `cargo test` stays
/// fast; the scenario (churn fractions, recall, burst) is identical, so
/// the determinism gates exercise the same machinery at either size.
#[cfg(debug_assertions)]
pub const FLEET_METERS: u32 = 2_000;
/// Fleet size (release: the ≥100k-meter claim).
#[cfg(not(debug_assertions))]
pub const FLEET_METERS: u32 = 100_000;

/// Reading rounds per run.
pub const FLEET_ROUNDS: u64 = 6;

/// Crash fraction of the tick-2 churn wave, in ppm (1%).
pub const CRASH_PPM: u32 = 10_000;

/// The round whose double production overruns the bounded inboxes.
pub const BURST_ROUND: u64 = 1;

/// The round the mid-fleet firmware recall lands in.
pub const RECALL_ROUND: u64 = 4;

/// The E15 scenario: burst at tick 1, 1% crash wave at tick 2, v2
/// recall at tick 4, steady WAN loss throughout, inboxes sized for
/// exactly one calm round.
#[must_use]
pub fn scenario() -> FleetConfig {
    FleetConfig {
        meters: FLEET_METERS,
        shards: 2,
        inbox_capacity: (FLEET_METERS / 2) as usize,
        rounds: FLEET_ROUNDS,
        burst_round: Some(BURST_ROUND),
        churn: ChurnPlan::new()
            .with(ChurnEvent::crash_fraction(2, CRASH_PPM))
            .with(ChurnEvent::recall(RECALL_ROUND, FLEET_FW_V2_NAME)),
        ..FleetConfig::default()
    }
}

/// One backend's fleet sweep outcome.
#[derive(Clone, Debug)]
pub struct BackendFleet {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Final robustness accounting.
    pub stats: FleetStats,
    /// Meters quarantined at the end (recall + budget + respawn
    /// refusals).
    pub quarantined: usize,
    /// The fleet-state digest — meter states, accounting, per-shard
    /// aggregated totals, and the fabric's backend-invariant merged
    /// trace digest. Must match on every backend and across runs.
    pub fleet_digest: String,
}

/// Builds the two-shard substrate pool for the backend at `idx` in the
/// conformance pool.
fn pool(idx: usize) -> Vec<Box<dyn Substrate>> {
    (0..2).map(|_| all_substrates().remove(idx)).collect()
}

/// Runs the chaos scenario on the backend at `idx`.
fn run_backend(idx: usize) -> BackendFleet {
    let backend = all_substrates()
        .get(idx)
        .expect("index within the conformance pool")
        .profile()
        .name
        .clone();
    let mut world = FleetWorld::new(pool(idx), scenario());
    let stats = world.run();
    assert_eq!(
        stats.acked, stats.produced,
        "{backend}: zero lost readings under churn + overload"
    );
    BackendFleet {
        backend,
        stats,
        quarantined: world.quarantined(),
        fleet_digest: world.fleet_digest().short_hex(),
    }
}

/// Runs the deterministic sweep on all six backends.
#[must_use]
pub fn run() -> Vec<BackendFleet> {
    (0..all_substrates().len()).map(run_backend).collect()
}

/// Measures end-to-end acknowledged readings/sec for the full chaos
/// scenario (software backend only).
#[must_use]
pub fn run_wall_clock() -> (u64, FleetStats) {
    let mut world = FleetWorld::new(pool(0), scenario());
    let start = Instant::now();
    let stats = world.run();
    let secs = start.elapsed().as_secs_f64();
    let per_sec = if secs > 0.0 {
        (stats.acked as f64 / secs) as u64
    } else {
        u64::MAX
    };
    (per_sec, stats)
}

fn group(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

/// The machine-readable benchmark record `repro` writes to
/// `BENCH_E15.json`: the scenario parameters, the conservation ledger,
/// and the wall-clock acknowledged-readings rate.
#[must_use]
pub fn bench_json(per_sec: u64, stats: &FleetStats, invariant: bool, digest: &str) -> String {
    format!(
        "{{\n  \"experiment\": \"e15\",\n  \
         \"meters\": {},\n  \
         \"rounds\": {},\n  \
         \"crash_ppm\": {},\n  \
         \"produced\": {},\n  \
         \"acked\": {},\n  \
         \"shed\": {},\n  \
         \"wan_retransmissions\": {},\n  \
         \"crashes\": {},\n  \
         \"respawns\": {},\n  \
         \"quarantined_by_recall\": {},\n  \
         \"readings_per_sec\": {per_sec},\n  \
         \"backend_invariant\": {invariant},\n  \
         \"fleet_digest\": \"{digest}\"\n}}\n",
        FLEET_METERS,
        FLEET_ROUNDS,
        CRASH_PPM,
        stats.produced,
        stats.acked,
        stats.shed,
        stats.wan_retransmissions,
        stats.crashes,
        stats.respawns,
        stats.quarantined_by_recall,
    )
}

/// Renders the fleet robustness report.
#[must_use]
pub fn report() -> String {
    report_and_json().0
}

/// Renders the report together with the machine-readable
/// `BENCH_E15.json` payload, sharing one measurement run.
#[must_use]
pub fn report_and_json() -> (String, String) {
    let results = run();
    let (per_sec, wall_stats) = run_wall_clock();

    let mut rows = vec![vec![
        "backend".to_string(),
        "produced".to_string(),
        "acked".to_string(),
        "shed".to_string(),
        "wan rexmit".to_string(),
        "crashes".to_string(),
        "respawns".to_string(),
        "quarantined".to_string(),
        "drain ticks".to_string(),
        "fleet digest".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            b.stats.produced.to_string(),
            b.stats.acked.to_string(),
            b.stats.shed.to_string(),
            b.stats.wan_retransmissions.to_string(),
            b.stats.crashes.to_string(),
            b.stats.respawns.to_string(),
            b.quarantined.to_string(),
            b.stats.drain_ticks.to_string(),
            b.fleet_digest.clone(),
        ]);
    }
    let invariant = results
        .iter()
        .all(|b| b.fleet_digest == results[0].fleet_digest);
    let digest = results.first().map_or("-", |b| b.fleet_digest.as_str());

    let json = bench_json(per_sec, &wall_stats, invariant, digest);
    let report = format!(
        "E15 — fleet robustness: chaos, backpressure, graceful degradation\n\n\
         {}\n\
         A {}-meter fleet ran {} rounds on a two-shard fabric of each\n\
         backend, through a burst round (double production, tick {}),\n\
         a {}% crash wave (tick 2, full respawn/re-attest cycle), a\n\
         mid-fleet v2 firmware recall (tick {}, same-tick quarantine),\n\
         and steady WAN loss (sealed batches, capped backoff, typed\n\
         timeouts). Every produced reading was acknowledged — shed and\n\
         deferred load is retried deterministically, never dropped —\n\
         and the fleet-state digest is the same on every backend\n\
         (backend-invariant: {}).\n\n\
         wall-clock   fleet: {:>11} acked readings/sec (software backend, end to end)\n",
        render(&rows),
        group(u64::from(FLEET_METERS)),
        FLEET_ROUNDS,
        BURST_ROUND,
        CRASH_PPM as f64 / 10_000.0,
        RECALL_ROUND,
        if invariant { "yes" } else { "NO" },
        group(per_sec),
    );
    (report, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_sweep_is_backend_invariant() {
        let results = run();
        assert_eq!(results.len(), 6, "the sweep covers every backend");
        for b in &results {
            assert_eq!(
                b.fleet_digest, results[0].fleet_digest,
                "{}: fleet-state digest must be backend-invariant",
                b.backend
            );
            assert_eq!(b.stats.acked, b.stats.produced, "{}", b.backend);
            assert!(b.stats.shed > 0, "{}: the burst must shed", b.backend);
            assert!(b.stats.crashes > 0, "{}: the crash wave fired", b.backend);
            assert!(b.stats.respawns > 0, "{}: meters re-attested", b.backend);
            assert!(
                b.stats.quarantined_by_recall > 0,
                "{}: the recall quarantined the v2 cohort",
                b.backend
            );
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let (a, b) = (run_backend(0), run_backend(0));
        assert_eq!(
            a.fleet_digest, b.fleet_digest,
            "the fleet-state digest must be run-invariant"
        );
        assert_eq!(a.stats, b.stats, "the full accounting must match");
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (a, b) = (report(), report());
        assert_eq!(
            strip(&a),
            strip(&b),
            "two runs must differ only on wall-clock lines"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let stats = FleetStats {
            produced: 700_000,
            acked: 700_000,
            shed: 50_000,
            ..FleetStats::default()
        };
        let json = bench_json(1_500_000, &stats, true, "0011223344556677");
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"readings_per_sec\": 1500000"));
        assert!(json.contains("\"backend_invariant\": true"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
