//! Minimal ASCII table rendering for experiment reports.

/// Renders rows (first row = header) as an aligned ASCII table.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(|r| r.len()).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    for (idx, row) in rows.iter().enumerate() {
        let mut line = String::new();
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(|s| s.as_str()).unwrap_or("");
            line.push_str(&format!("{cell:<width$}", width = w));
            if i + 1 < cols {
                line.push_str("  ");
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
        if idx == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Convenience: turns anything displayable into a row of strings.
#[macro_export]
macro_rules! row {
    ($($cell:expr),* $(,)?) => {
        vec![$(format!("{}", $cell)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(&[row!["name", "value"], row!["alpha", 1], row!["b", 22222]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[2].contains("alpha"));
    }

    #[test]
    fn empty_is_empty() {
        assert!(render(&[]).is_empty());
    }
}
