//! E1 — Figure 1 as an experiment: blast radius, vertical vs. horizontal.
//!
//! For each subsystem of the email client we (a) compute the *static*
//! blast radius over the manifest's channel graph, and (b) actually
//! exploit the subsystem at runtime and audit what the attacker achieved.
//! Expected shape: in the vertical monolith any compromise reaches 100 %
//! of assets; horizontally, the hostile-input parsers reach (near)
//! nothing and only the orchestrating UI reaches more.

use lateral_apps::email::{
    horizontal_manifest, vertical_manifest, HorizontalEmail, VerticalEmail, EXPLOIT_MARKER,
};
use lateral_core::analysis;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;

use crate::row;
use crate::table::render;

/// One measured row: what compromising `compromised` yielded.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// Architecture ("vertical" / "horizontal").
    pub architecture: &'static str,
    /// Compromised subsystem.
    pub compromised: String,
    /// Assets reachable per static analysis.
    pub static_assets: usize,
    /// Fraction of all assets (static).
    pub static_fraction: f64,
    /// Whether the runtime attack escaped the substrate's containment.
    pub runtime_escaped: bool,
    /// Secret assets reached.
    pub secrets: usize,
}

fn pool() -> Vec<Box<dyn Substrate>> {
    vec![Box::new(SoftwareSubstrate::new("e1"))]
}

/// Runs the full experiment.
pub fn run() -> Vec<Outcome> {
    let mut outcomes = Vec::new();

    // Vertical: every subsystem is an equivalent entry point into the one
    // legacy domain.
    let v_manifest = vertical_manifest();
    for subsystem in lateral_apps::email::SUBSYSTEMS {
        let mut app = VerticalEmail::build(pool()).expect("compose vertical");
        app.deliver_hostile(
            subsystem,
            lateral_components::legacyos::LEGACY_EXPLOIT.as_bytes(),
        )
        .expect("deliver");
        let looted = app.loot().expect("loot query").is_some();
        let br = analysis::blast_radius(&v_manifest, "mail-monolith");
        outcomes.push(Outcome {
            architecture: "vertical",
            compromised: subsystem.to_string(),
            static_assets: br.reachable_assets.len(),
            static_fraction: br.asset_fraction(&v_manifest),
            runtime_escaped: looted,
            secrets: br.secret_assets.len(),
        });
    }

    // Horizontal: compromise each component in turn; static analysis over
    // the channel graph plus a runtime audit of the subverted component.
    let h_manifest = horizontal_manifest();
    for subsystem in lateral_apps::email::SUBSYSTEMS {
        let mut app = HorizontalEmail::build(pool()).expect("compose horizontal");
        app.deliver_hostile(subsystem, EXPLOIT_MARKER.as_bytes())
            .expect("deliver");
        let report = app.attack_report(subsystem).expect("report");
        let br = analysis::blast_radius(&h_manifest, subsystem);
        // "Escaped" means it did something the manifest does not allow.
        let escaped = report.active && !report.contained();
        outcomes.push(Outcome {
            architecture: "horizontal",
            compromised: subsystem.to_string(),
            static_assets: br.reachable_assets.len(),
            static_fraction: br.asset_fraction(&h_manifest),
            runtime_escaped: escaped,
            secrets: br.secret_assets.len(),
        });
    }
    outcomes
}

/// Renders the report.
pub fn report() -> String {
    let outcomes = run();
    let mut rows = vec![row![
        "architecture",
        "compromised",
        "assets reached",
        "fraction",
        "secrets",
        "escaped substrate"
    ]];
    for o in &outcomes {
        rows.push(row![
            o.architecture,
            o.compromised,
            o.static_assets,
            format!("{:.0}%", o.static_fraction * 100.0),
            o.secrets,
            if o.runtime_escaped { "YES (!)" } else { "no" }
        ]);
    }
    let n = lateral_apps::email::SUBSYSTEMS.len() as f64;
    let v_avg: f64 = outcomes
        .iter()
        .filter(|o| o.architecture == "vertical")
        .map(|o| o.static_fraction)
        .sum::<f64>()
        / n;
    let h_avg: f64 = outcomes
        .iter()
        .filter(|o| o.architecture == "horizontal")
        .map(|o| o.static_fraction)
        .sum::<f64>()
        / n;
    format!(
        "E1 — containment under compromise (Figure 1)\n\n{}\n\
         mean asset exposure: vertical {:.0}%, horizontal {:.0}% \
         ({}x reduction)\n",
        render(&rows),
        v_avg * 100.0,
        h_avg * 100.0,
        if h_avg > 0.0 {
            format!("{:.1}", v_avg / h_avg)
        } else {
            "∞".to_string()
        }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_always_loses_everything() {
        let outcomes = run();
        for o in outcomes.iter().filter(|o| o.architecture == "vertical") {
            assert_eq!(o.static_fraction, 1.0, "{}", o.compromised);
            assert!(o.runtime_escaped, "{} should loot", o.compromised);
        }
    }

    #[test]
    fn horizontal_contains_every_compromise() {
        let outcomes = run();
        for o in outcomes.iter().filter(|o| o.architecture == "horizontal") {
            assert!(!o.runtime_escaped, "{} escaped!", o.compromised);
        }
        // The renderer reaches zero assets.
        let renderer = outcomes
            .iter()
            .find(|o| o.architecture == "horizontal" && o.compromised == "html-renderer")
            .unwrap();
        assert_eq!(renderer.static_assets, 0);
    }

    #[test]
    fn horizontal_mean_exposure_is_fraction_of_vertical() {
        let outcomes = run();
        let v: f64 = outcomes
            .iter()
            .filter(|o| o.architecture == "vertical")
            .map(|o| o.static_fraction)
            .sum();
        let h: f64 = outcomes
            .iter()
            .filter(|o| o.architecture == "horizontal")
            .map(|o| o.static_fraction)
            .sum();
        assert!(h < v / 2.0, "horizontal {h} vs vertical {v}");
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("E1"));
        assert!(r.contains("html-renderer"));
    }
}
