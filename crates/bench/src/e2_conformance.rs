//! E2 — Figure 2 as an experiment: the unified interface over every
//! substrate.
//!
//! The same component suite (echo, badge reporter, counter, memory
//! scribe, sealer, attester, forwarder) runs unmodified on all six
//! backends — including the Flicker late-launch substrate; the matrix
//! shows pass / unsupported per feature. An
//! `unsupported` is a legitimate profile difference (pure software
//! isolation cannot attest, §II-B); a `FAIL` would falsify the paper's
//! common-template claim.

use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_flicker::Flicker;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_sep::Sep;
use lateral_sgx::Sgx;
use lateral_substrate::conformance::{run as conform, ConformanceReport, Outcome};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;
use lateral_trustzone::TrustZone;

use crate::table::render;

/// Builds one fresh instance of every substrate backend.
pub fn all_substrates() -> Vec<Box<dyn Substrate>> {
    let mk = Microkernel::new(
        MachineBuilder::new().name("e2-mk").frames(256).build(),
        "e2",
    )
    .with_attestation(
        SigningKey::from_seed(b"e2 mk platform"),
        Digest::of(b"measured boot stack"),
    );
    vec![
        Box::new(SoftwareSubstrate::new("e2")),
        Box::new(mk),
        Box::new(TrustZone::new(
            MachineBuilder::new().name("e2-tz").frames(256).build(),
            "e2",
        )),
        Box::new(Sgx::new(
            MachineBuilder::new().name("e2-sgx").frames(256).build(),
            "e2",
        )),
        Box::new(Sep::new(
            MachineBuilder::new().name("e2-sep").frames(256).build(),
            "e2",
        )),
        Box::new(Flicker::new("e2")),
    ]
}

/// Runs conformance against every backend.
pub fn run() -> Vec<ConformanceReport> {
    all_substrates()
        .into_iter()
        .map(|mut s| conform(s.as_mut()))
        .collect()
}

/// Renders the conformance matrix.
pub fn report() -> String {
    let reports = run();
    let features: Vec<String> = reports[0]
        .checks
        .iter()
        .map(|c| c.feature.clone())
        .collect();
    let mut header = vec!["feature".to_string()];
    header.extend(reports.iter().map(|r| r.substrate.clone()));
    let mut rows = vec![header];
    for feature in &features {
        let mut r = vec![feature.clone()];
        for rep in &reports {
            let cell = match rep.outcome(feature) {
                Some(Outcome::Pass) => "pass".to_string(),
                Some(Outcome::Unsupported) => "unsupported".to_string(),
                Some(Outcome::Fail(e)) => format!("FAIL({e})"),
                None => "-".to_string(),
            };
            r.push(cell);
        }
        rows.push(r);
    }
    let conforming = reports.iter().filter(|r| r.conforms()).count();
    format!(
        "E2 — unified-interface conformance (Figure 2)\n\n{}\n\
         {} of {} substrates conform to the structural template\n",
        render(&rows),
        conforming,
        reports.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_substrate_conforms() {
        for rep in run() {
            assert!(
                rep.conforms(),
                "{} does not conform: {:?}",
                rep.substrate,
                rep.checks
            );
        }
    }

    #[test]
    fn software_reports_attestation_unsupported_hardware_passes() {
        let reports = run();
        let by_name = |n: &str| reports.iter().find(|r| r.substrate == n).unwrap();
        assert_eq!(
            by_name("software").outcome("attestation"),
            Some(&Outcome::Unsupported)
        );
        for hw in ["microkernel", "trustzone", "sgx", "sep", "flicker"] {
            assert_eq!(
                by_name(hw).outcome("attestation"),
                Some(&Outcome::Pass),
                "{hw}"
            );
        }
    }

    #[test]
    fn pola_and_cap_checks_pass_everywhere() {
        for rep in run() {
            for feature in ["pola-deny-undeclared", "cap-unforgeable", "badge-identity"] {
                assert_eq!(
                    rep.outcome(feature),
                    Some(&Outcome::Pass),
                    "{}: {feature}",
                    rep.substrate
                );
            }
        }
    }

    #[test]
    fn report_renders_matrix() {
        let r = report();
        assert!(r.contains("sgx"));
        assert!(r.contains("6 of 6"));
    }
}
