//! E12 — unified causal telemetry: one trace from composition to wire.
//!
//! Every experiment so far *asserts* that the six backends behave
//! identically; this one makes the claim observable. The fabric engine
//! records a causal span for every lifecycle event it mediates —
//! `compose → spawn → grant → invoke → seal → respawn` — so one
//! supervised billing round produces a single span tree rooted at an
//! experiment-level span. Because backends differ only in *mechanism*
//! (crossing kinds, costs, key derivation), not in *structure*, the
//! tree digest — which encodes depth, layer, name, and outcome, and
//! deliberately nothing clock- or cost-shaped — must be byte-identical
//! on all six backends. So must the invariant projection of the metric
//! counters (everything except the per-backend `crossing.*` families).
//! What *may* differ per backend is latency: the per-crossing cost
//! histograms printed at the bottom are exactly the part the digests
//! exclude.
//!
//! The second half crosses the wire: a [`RemoteClient`] carries its
//! [`TraceContext`](lateral_telemetry::TraceContext) inside the sealed
//! record to a [`RemoteServer`], whose `serve` span adopts the caller's
//! trace id and parents itself on the caller's `request` span — one
//! connected tree spanning two machines, with the attestation and
//! seal/open steps attached as sub-spans.
//!
//! Both digests are the determinism witness for the `scripts/check.sh`
//! run-twice gate ("telemetry digest" is its grep marker).

use std::collections::BTreeMap;

use lateral_core::composer::{compose, ComponentFactory};
use lateral_core::manifest::{AppManifest, ComponentManifest, RestartPolicy};
use lateral_core::remote::{call, establish, RemoteClient, RemoteServer, ServiceExport};
use lateral_core::supervisor::Supervisor;
use lateral_core::CoreError;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_net::channel::ChannelPolicy;
use lateral_net::sim::Network;
use lateral_net::Addr;
use lateral_substrate::cap::Badge;
use lateral_substrate::component::Component;
use lateral_substrate::fault::{FaultPlan, FaultSpec};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;
use lateral_substrate::testkit::Echo;
use lateral_telemetry::outcome as span_outcome;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// One backend's billing-round trace measurements.
#[derive(Clone, Debug)]
pub struct BackendTrace {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Spans recorded in the round's trace.
    pub spans: usize,
    /// Meter invocations served across the round.
    pub served: u32,
    /// Meter invocations lost to the injected crash.
    pub lost: u32,
    /// Supervised restarts performed.
    pub restarts: u32,
    /// Digest over the round's span tree (depth/layer/name/outcome
    /// only) — must match on every backend.
    pub tree_digest: String,
    /// Digest over the invariant metric-counter projection (counter
    /// deltas, `crossing.*` families excluded) — must match on every
    /// backend.
    pub metrics_digest: String,
    /// Per-crossing latency histograms: `(counter name, count, sum,
    /// max, bucket counts)` — the backend-*specific* part.
    pub latency: Vec<(String, u64, u64, u64, Vec<u64>)>,
}

/// The cross-machine leg's measurements.
#[derive(Clone, Debug)]
pub struct RemoteTrace {
    /// The client's rendered span tree.
    pub client_tree: String,
    /// Whether the server's `serve` span adopted the client's trace id
    /// *and* parented itself on the client's `request` span.
    pub propagated: bool,
    /// Digest over the client's span tree.
    pub tree_digest: String,
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
}

/// The supervised billing pair: a meter that may crash and restart
/// (instantly — the backoff window would otherwise make the number of
/// lost calls depend on backend-specific crossing costs, which is
/// exactly what the tree digest must *not* see) and the sink it is
/// allowed to report to.
fn app() -> AppManifest {
    AppManifest::new(
        "e12",
        vec![
            ComponentManifest::new("meter")
                .channel("sink", "sink", 0xE12)
                .restart(RestartPolicy::Restart {
                    max_restarts: 3,
                    backoff_base: 0,
                }),
            ComponentManifest::new("sink"),
        ],
    )
}

/// Runs one billing round on the backend at `idx` in the conformance
/// pool and digests its trace.
fn run_backend(idx: usize) -> BackendTrace {
    let mut sub = all_substrates().remove(idx);
    let backend = sub.profile().name.clone();
    // Counter values before the round: substrate construction differs
    // per backend and is not part of the invariant.
    let baseline: BTreeMap<String, u64> = sub
        .telemetry_ref()
        .expect("every backend routes through the fabric")
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect();

    // Root span first, so composition itself nests into the trace.
    let at = sub.now();
    let tel = sub.telemetry_mut_ref().expect("fabric-backed");
    let root = tel.begin_span("e12 billing round", "experiment", at);
    let trace_id = tel.context().expect("root span is open").trace_id;

    let mut sup = Supervisor::new(app(), vec![sub], factory()).expect("compose e12 app");
    sup.assembly_mut()
        .substrate_mut(0)
        .fabric_mut_ref()
        .expect("fabric present")
        .install_fault_plan(FaultPlan::new().with(FaultSpec::crash("meter", 3)));

    let mut served = 0u32;
    let mut lost = 0u32;
    let mut meter = |sup: &mut Supervisor, payload: &[u8]| match sup.call("meter", payload) {
        Ok(_) => served += 1,
        Err(CoreError::Unavailable(_)) => lost += 1,
        Err(e) => panic!("unexpected meter error: {e}"),
    };

    // Two readings, a billing notification, and a sealed checkpoint …
    meter(&mut sup, b"read 17 kWh");
    meter(&mut sup, b"read 25 kWh");
    sup.call("sink", b"bill cycle 1").expect("sink serves");
    let p = sup.assembly().placement("meter").expect("meter placed");
    let sealed = sup
        .assembly_mut()
        .substrate_mut(p.substrate)
        .seal(p.domain, b"e12 meter checkpoint")
        .expect("every backend seals");
    let opened = sup
        .assembly_mut()
        .substrate_mut(p.substrate)
        .unseal(p.domain, &sealed)
        .expect("round-trips");
    assert_eq!(opened, b"e12 meter checkpoint");
    // … then the third reading hits the injected crash, the sink keeps
    // serving, and the next meter call restarts inline and serves.
    meter(&mut sup, b"read 31 kWh");
    sup.call("sink", b"bill cycle 2").expect("sink stays up");
    meter(&mut sup, b"read 31 kWh retry");
    let restarts = sup.restarts("meter");

    let sub = sup.assembly_mut().substrate_mut(0);
    let now = sub.now();
    let tel = sub.telemetry_mut_ref().expect("fabric-backed");
    tel.end_span(root, now, span_outcome::OK);
    let spans = tel.spans().filter(|s| s.trace_id == trace_id).count();
    let tree_digest = tel.trace_digest(trace_id).short_hex();

    // Invariant metrics projection: counter deltas since the baseline,
    // minus the `crossing.*` families (their very *names* are
    // backend-specific).
    let mut canon = String::new();
    for (name, value) in tel.metrics().counters() {
        if name.starts_with("crossing.") {
            continue;
        }
        let delta = value - baseline.get(name).copied().unwrap_or(0);
        if delta > 0 {
            canon.push_str(&format!("{name}={delta}\n"));
        }
    }
    let metrics_digest = Digest::of(canon.as_bytes()).short_hex();
    let latency = tel
        .metrics()
        .histograms()
        .filter(|(name, _)| name.starts_with("crossing."))
        .map(|(name, h)| {
            (
                name.to_string(),
                h.count(),
                h.sum(),
                h.max(),
                h.buckets().to_vec(),
            )
        })
        .collect();

    BackendTrace {
        backend,
        spans,
        served,
        lost,
        restarts,
        tree_digest,
        metrics_digest,
        latency,
    }
}

/// Runs the cross-machine leg: a meter operator invoking an exported
/// utility component over the adversarial network, with the trace
/// context propagated inside the sealed records.
pub fn run_remote() -> RemoteTrace {
    let mut net = Network::new("e12-remote");
    let mut factory_fn = |_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>);
    let pool: Vec<Box<dyn Substrate>> = vec![Box::new(SoftwareSubstrate::new("e12-utility"))];
    let mut server_asm = compose(
        &AppManifest::new("e12-utility", vec![ComponentManifest::new("utility")]),
        pool,
        &mut factory_fn,
    )
    .expect("server assembly composes");
    let mut server = RemoteServer::bind(
        &mut net,
        Addr::new("utility"),
        ServiceExport {
            component: "utility".to_string(),
            badge: Badge(0xE12),
            identity: SigningKey::from_seed(b"e12 utility identity"),
            client_policy: ChannelPolicy::open(),
            attest: false,
        },
    );
    let mut client = RemoteClient::new(
        &mut net,
        Addr::new("operator"),
        Addr::new("utility"),
        SigningKey::from_seed(b"e12 operator identity"),
        ChannelPolicy::open(),
        None,
    );
    establish(&mut net, &mut client, None, &mut server, &mut server_asm)
        .expect("session establishes");
    let reply = call(
        &mut net,
        &mut client,
        &mut server,
        &mut server_asm,
        b"reading: 42 kWh",
    )
    .expect("remote call serves");
    assert_eq!(reply, b"reading: 42 kWh");

    let request = client
        .telemetry()
        .spans()
        .find(|s| &*s.name == "request")
        .expect("client recorded the request span")
        .clone();
    let serve = server
        .telemetry()
        .spans()
        .find(|s| &*s.name == "serve utility")
        .expect("server recorded the serve span")
        .clone();
    RemoteTrace {
        client_tree: client.telemetry().render_tree(),
        propagated: serve.trace_id == request.trace_id
            && serve.parent == request.id
            && serve.outcome == span_outcome::OK,
        tree_digest: client.telemetry().tree_digest().short_hex(),
    }
}

/// Runs the billing round on all six backends.
pub fn run() -> Vec<BackendTrace> {
    (0..all_substrates().len()).map(run_backend).collect()
}

/// Renders the telemetry matrix.
pub fn report() -> String {
    let results = run();
    let remote = run_remote();
    let mut rows = vec![vec![
        "backend".to_string(),
        "spans".to_string(),
        "served".to_string(),
        "lost".to_string(),
        "restarts".to_string(),
        "span-tree digest".to_string(),
        "metrics digest".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            b.spans.to_string(),
            b.served.to_string(),
            b.lost.to_string(),
            b.restarts.to_string(),
            b.tree_digest.clone(),
            b.metrics_digest.clone(),
        ]);
    }
    let mut latency = vec![vec![
        "backend".to_string(),
        "crossing cost histogram".to_string(),
        "n".to_string(),
        "ticks".to_string(),
        "max".to_string(),
        "buckets".to_string(),
    ]];
    for b in &results {
        for (name, n, sum, max, buckets) in &b.latency {
            latency.push(vec![
                b.backend.clone(),
                name.clone(),
                n.to_string(),
                sum.to_string(),
                max.to_string(),
                format!(
                    "[{}]",
                    buckets
                        .iter()
                        .map(u64::to_string)
                        .collect::<Vec<_>>()
                        .join(" ")
                ),
            ]);
        }
    }
    let invariant = results
        .iter()
        .all(|b| b.tree_digest == results[0].tree_digest)
        && results
            .iter()
            .all(|b| b.metrics_digest == results[0].metrics_digest);
    format!(
        "E12 — unified causal telemetry: spans, metrics, trace propagation\n\n\
         {}\n\
         One supervised billing round — compose, grant, invoke, seal,\n\
         injected crash, respawn — is one span tree. The tree encodes\n\
         structure (depth, layer, name, outcome) and no clocks or costs,\n\
         so its telemetry digest is identical on every backend:\n\
         {} (backend-invariant: {}).\n\n\
         What the digests exclude is exactly where backends differ —\n\
         the per-crossing latency histograms (logical ticks):\n\n{}\n\
         Across the wire, the trace context rides inside the sealed\n\
         record: the server's serve span joins the caller's trace as a\n\
         child of its request span (propagated: {}). Client span tree\n\
         (telemetry digest {}):\n\n{}",
        render(&rows),
        results[0].tree_digest,
        if invariant { "yes" } else { "NO" },
        render(&latency),
        if remote.propagated { "yes" } else { "NO" },
        remote.tree_digest,
        remote.client_tree,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_share_one_trace_shape() {
        let results = run();
        assert_eq!(results.len(), 6, "the round covers every backend");
        for b in &results {
            assert_eq!(
                b.tree_digest, results[0].tree_digest,
                "{}: span-tree digest must be backend-invariant",
                b.backend
            );
            assert_eq!(
                b.metrics_digest, results[0].metrics_digest,
                "{}: invariant metrics digest must be backend-invariant",
                b.backend
            );
            assert_eq!(b.lost, 1, "{}: exactly the injected crash", b.backend);
            assert_eq!(b.restarts, 1, "{}: one supervised respawn", b.backend);
            assert_eq!(b.served, 3, "{}", b.backend);
        }
    }

    #[test]
    fn latency_histograms_are_populated() {
        for b in run() {
            let samples: u64 = b.latency.iter().map(|(_, n, ..)| n).sum();
            assert!(
                samples > 0,
                "{}: the round must observe crossing costs",
                b.backend
            );
        }
    }

    #[test]
    fn remote_call_joins_the_callers_trace() {
        let remote = run_remote();
        assert!(remote.propagated, "serve span must adopt the caller trace");
        for sub_span in ["attest.verify", "channel.seal", "channel.open"] {
            assert!(
                remote.client_tree.contains(sub_span),
                "client tree must show '{sub_span}'"
            );
        }
    }

    #[test]
    fn round_is_deterministic() {
        let (a, b) = (report(), report());
        assert_eq!(a, b, "two identical runs must be byte-identical");
    }
}
