//! E18 — multiplexed remote sessions: windows, resumption, mirrors.
//!
//! The remote layer's session rework makes three claims this experiment
//! gates:
//!
//! * **Multiplexing preserves causality on every backend.** A client
//!   interleaves many in-flight requests over one secure channel; each
//!   must land as a child span of *its own* caller — never of the
//!   session opener or a sibling — and entries beyond the server's
//!   bounded window are refused with a typed `Overloaded` reply, not
//!   dropped. The span-tree digests (client and server side) must be
//!   byte-identical across all six backends and across runs.
//! * **Resumption amortizes attestation without weakening it.** A
//!   resumption ticket bound to the verified evidence digest lets a
//!   client re-establish the channel with zero fresh attestations —
//!   until the revocation/trust/re-grant epoch moves, at which point
//!   redemption is refused and the full attestation handshake is
//!   forced.
//! * **Content addressing makes mirrors untrusted.** Image fetch
//!   verifies the digest regardless of source, so corrupt, silent, and
//!   missing mirrors each cost exactly one deterministic failover step
//!   and never an accepted forgery; every fetch is either served
//!   verified or fails typed — zero lost.
//!
//! The throughput leg is the wall-clock payoff: one sealed record group
//! carries a whole window of requests, so the multiplexed path puts
//! ~window× fewer records on the wire than lock-step request/reply and
//! correspondingly more requests through per second. Wall-clock lines
//! are tagged `wall-clock` (stripped by the `scripts/check.sh`
//! run-twice gate); the record counts are deterministic and gated.

use std::time::Instant;

use lateral_core::composer::{compose, Assembly};
use lateral_core::manifest::{AppManifest, ComponentManifest};
use lateral_core::remote::{
    call, current_session_epoch, establish, resume_or_establish, RemoteClient, RemoteServer,
    ServiceExport,
};
use lateral_core::CoreError;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_net::channel::{BackoffSchedule, ChannelPolicy};
use lateral_net::fetch::{fetch_verified, MirrorStore};
use lateral_net::sim::Network;
use lateral_net::Addr;
use lateral_registry::{measurement_of, ManifestDraft, Registry};
use lateral_substrate::attest::TrustPolicy;
use lateral_substrate::cap::Badge;
use lateral_substrate::component::Component;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::Substrate;
use lateral_substrate::testkit::Counter;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Server-side in-flight window for the multiplexing leg.
const WINDOW: usize = 4;
/// First flushed group: one entry over the window, so exactly one
/// typed refusal per backend.
const GROUP1: usize = WINDOW + 1;
/// Second flushed group, in flight before the first is drained.
const GROUP2: usize = 2;
/// Requests per side in the throughput leg.
const THROUGHPUT_REQUESTS: usize = 512;
/// Client window (= batch size) in the throughput leg.
const THROUGHPUT_WINDOW: usize = 32;

fn counter_factory(_: &ComponentManifest) -> Option<Box<dyn Component>> {
    Some(Box::new(Counter::default()))
}

fn counter_assembly(pool: Vec<Box<dyn Substrate>>) -> Assembly {
    let mut factory = counter_factory;
    compose(
        &AppManifest::new("e18", vec![ComponentManifest::new("counter")]),
        pool,
        &mut factory,
    )
    .expect("e18 assembly composes")
}

fn bind_pair(
    net: &mut Network,
    export: ServiceExport,
    policy: ChannelPolicy,
) -> (RemoteServer, RemoteClient) {
    let server = RemoteServer::bind(net, Addr::new("svc"), export);
    let client = RemoteClient::new(
        net,
        Addr::new("client"),
        Addr::new("svc"),
        SigningKey::from_seed(b"e18 client identity"),
        policy,
        None,
    );
    (server, client)
}

fn plain_export() -> ServiceExport {
    ServiceExport {
        component: "counter".to_string(),
        badge: Badge(0xE18),
        identity: SigningKey::from_seed(b"e18 service identity"),
        client_policy: ChannelPolicy::open(),
        attest: false,
    }
}

/// One backend's multiplexing measurements.
#[derive(Clone, Debug)]
pub struct BackendMux {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Requests submitted across both in-flight groups.
    pub submitted: usize,
    /// Requests served OK.
    pub served: usize,
    /// Requests refused with the typed `Overloaded` status.
    pub refused: usize,
    /// Digest over the client's span tree (session root, connects,
    /// one request span per submission) — must match on every backend.
    pub client_digest: String,
    /// Digest over the server-side slice of the *caller's* trace (the
    /// adopted serve spans) — must match on every backend.
    pub server_digest: String,
}

/// Runs the interleaved-window mix on the backend at `idx` in the
/// conformance pool.
fn run_mux_backend(idx: usize) -> BackendMux {
    let sub = all_substrates().remove(idx);
    let backend = sub.profile().name.clone();
    let mut asm = counter_assembly(vec![sub]);
    let mut net = Network::new(&format!("e18-mux-{backend}"));
    let (mut server, mut client) = bind_pair(&mut net, plain_export(), ChannelPolicy::open());
    server.set_window(WINDOW);
    client.set_window(GROUP1 + GROUP2 + 1);
    establish(&mut net, &mut client, None, &mut server, &mut asm).expect("establish");

    // Two request groups in flight at once: the second is flushed
    // before the first group's replies are drained.
    for i in 0..GROUP1 {
        client.submit(&[i as u8]).expect("submit group 1");
    }
    client.flush(&mut net).expect("flush group 1");
    for i in 0..GROUP2 {
        client.submit(&[0x10 + i as u8]).expect("submit group 2");
    }
    client.flush(&mut net).expect("flush group 2");
    server.pump(&mut net, &mut asm).expect("server pump");

    let (mut served, mut refused) = (0usize, 0usize);
    loop {
        let replies = client.poll_group_replies(&mut net).expect("poll");
        if replies.is_empty() {
            break;
        }
        for (_, outcome) in replies {
            match outcome {
                Ok(_) => served += 1,
                Err(CoreError::Overloaded(_)) => refused += 1,
                Err(e) => panic!("unexpected reply error: {e}"),
            }
        }
    }
    assert_eq!(client.in_flight(), 0, "window fully drained");

    let client_digest = client.telemetry().tree_digest().short_hex();
    // The serve spans adopted the caller's trace; digest exactly that
    // trace's slice of the server telemetry.
    let caller_trace = server
        .telemetry()
        .spans()
        .find(|s| s.name.starts_with("serve"))
        .expect("server recorded serve spans")
        .trace_id;
    let server_digest = server.telemetry().trace_digest(caller_trace).short_hex();
    BackendMux {
        backend,
        submitted: GROUP1 + GROUP2,
        served,
        refused,
        client_digest,
        server_digest,
    }
}

/// Runs the multiplexing leg on all six backends.
#[must_use]
pub fn run_mux() -> Vec<BackendMux> {
    (0..all_substrates().len()).map(run_mux_backend).collect()
}

/// The resumption leg's ledger, phase by phase.
#[derive(Clone, Debug)]
pub struct ResumptionOutcome {
    /// Attestations performed by the initial connect (must be 1).
    pub attestations_after_connect: u64,
    /// Successful ticket redemptions within the epoch.
    pub resumes: u64,
    /// Attestations after all within-epoch resumes (must still be 1).
    pub attestations_after_resumes: u64,
    /// Ticket redemptions refused after the revocation moved the epoch.
    pub rejects: u64,
    /// Attestations after the forced re-handshake (must be 2).
    pub attestations_after_revocation: u64,
    /// Whether the client held a (rotated) ticket after every phase.
    pub ticket_rotated: bool,
}

/// Runs the resumption leg: an attested microkernel export, three
/// within-epoch resumptions, then a revocation that forces the full
/// handshake.
#[must_use]
pub fn run_resumption() -> ResumptionOutcome {
    let platform = SigningKey::from_seed(b"e18 mk platform");
    let mk = Microkernel::new(
        MachineBuilder::new().name("e18-mk").frames(256).build(),
        "e18",
    )
    .with_attestation(platform.clone(), Digest::of(b"measured boot stack"));
    let mut asm = counter_assembly(vec![Box::new(mk)]);

    // The registry is the epoch authority: publishing gives it an image
    // whose later revocation moves the session epoch.
    let publisher = SigningKey::from_seed(b"e18 publisher");
    let mut registry = Registry::new("e18");
    registry.trust_root(&publisher.verifying_key());
    let image = b"e18 counter image".to_vec();
    let digest = registry
        .publish(
            &image,
            ManifestDraft::new("counter", &image).sign(&publisher, None),
        )
        .expect("publish");

    let mut net = Network::new("e18-resume");
    let mut trust = TrustPolicy::new();
    trust.trust_platform(platform.verifying_key());
    trust.expect_measurement(asm.measurement("counter").expect("counter measured"));
    let export = ServiceExport {
        attest: true,
        ..plain_export()
    };
    let (mut server, mut client) = bind_pair(
        &mut net,
        export,
        ChannelPolicy::open().with_attestation(trust),
    );
    server.set_epoch(current_session_epoch(&registry, &asm));

    establish(&mut net, &mut client, None, &mut server, &mut asm).expect("attested establish");
    let attest_count =
        |server: &RemoteServer| server.telemetry().metrics().counter("remote.attestations");
    let attestations_after_connect = attest_count(&server);
    let mut ticket_rotated = client.has_ticket();

    // Three resume cycles inside the same epoch: zero new attestations.
    for _ in 0..3 {
        call(&mut net, &mut client, &mut server, &mut asm, b"").expect("request serves");
        client.disconnect();
        let resumed = resume_or_establish(&mut net, &mut client, None, &mut server, &mut asm)
            .expect("resume");
        assert!(resumed, "within-epoch resume must redeem the ticket");
        ticket_rotated &= client.has_ticket();
    }
    let resumes = server.telemetry().metrics().counter("remote.resumes");
    let attestations_after_resumes = attest_count(&server);

    // The image is revoked: the epoch moves, every outstanding ticket
    // dies at redemption, and the next connect re-attests in full.
    registry.revoke(digest, "e18 recall").expect("revoke");
    server.set_epoch(current_session_epoch(&registry, &asm));
    client.disconnect();
    let resumed = resume_or_establish(&mut net, &mut client, None, &mut server, &mut asm)
        .expect("fallback handshake");
    assert!(!resumed, "a stale-epoch ticket must not resume");
    ticket_rotated &= client.has_ticket();
    let rejects = server
        .telemetry()
        .metrics()
        .counter("remote.resume_rejects");
    let attestations_after_revocation = attest_count(&server);

    ResumptionOutcome {
        attestations_after_connect,
        resumes,
        attestations_after_resumes,
        rejects,
        attestations_after_revocation,
        ticket_rotated,
    }
}

/// One mirror-failover scenario's outcome.
#[derive(Clone, Debug)]
pub struct FailoverScenario {
    /// Human-readable mirror health mix.
    pub mix: String,
    /// Mirror that served the verified bytes, or "-" for a typed miss.
    pub winner: String,
    /// Unreachable-mirror failover steps taken.
    pub unreachable: u32,
    /// Mirrors that answered a miss.
    pub misses: u32,
    /// Mirrors whose bytes failed digest verification.
    pub corrupt_rejected: u32,
    /// Whether the fetch concluded typed (verified bytes or a typed
    /// timeout) — anything else would be a lost fetch.
    pub concluded: bool,
}

/// Runs the mirror-failover leg: every health mix of a corrupt, a
/// silent, and a good/missing mirror, fetching the registry-published
/// image content-addressed.
#[must_use]
pub fn run_failover() -> Vec<FailoverScenario> {
    let publisher = SigningKey::from_seed(b"e18 mirror publisher");
    let mut registry = Registry::new("e18-mirrors");
    registry.trust_root(&publisher.verifying_key());
    let image = b"e18 mirrored component image".to_vec();
    let digest = registry
        .publish(
            &image,
            ManifestDraft::new("counter", &image).sign(&publisher, None),
        )
        .expect("publish");
    let bytes = registry.image_bytes(digest).expect("published bytes");
    let want = digest.0;
    let measure = |b: &[u8]| measurement_of(b).0;

    let mut out = Vec::new();
    // Health mixes: m0 corrupt?, m1 silent?, m2 holds the image?
    for corrupt in [false, true] {
        for silent in [false, true] {
            for m2_has in [true, false] {
                let mut net = Network::new("e18-fetch");
                let client = Addr::new("fetcher");
                net.register(client.clone());
                let mut mirrors = vec![
                    MirrorStore::bind(&mut net, "m0"),
                    MirrorStore::bind(&mut net, "m1"),
                    MirrorStore::bind(&mut net, "m2"),
                ];
                mirrors[0].publish(want, bytes.clone());
                mirrors[0].set_corrupt(corrupt);
                mirrors[1].publish(want, bytes.clone());
                mirrors[1].set_responsive(!silent);
                if m2_has {
                    mirrors[2].publish(want, bytes.clone());
                }
                let mix = format!(
                    "m0 {} | m1 {} | m2 {}",
                    if corrupt { "corrupt" } else { "good" },
                    if silent { "silent" } else { "good" },
                    if m2_has { "good" } else { "missing" },
                );
                let mut clock = 0;
                let result = fetch_verified(
                    &mut net,
                    &client,
                    &mut mirrors,
                    &want,
                    &measure,
                    &BackoffSchedule::capped(1, 4, 3),
                    &mut clock,
                );
                let scenario = match result {
                    Ok((got, report)) => {
                        assert_eq!(got, bytes, "verified bytes match the publication");
                        FailoverScenario {
                            mix,
                            winner: report.winner.unwrap_or_default(),
                            unreachable: report.unreachable,
                            misses: report.misses,
                            corrupt_rejected: report.corrupt_rejected,
                            concluded: true,
                        }
                    }
                    Err(lateral_net::NetError::Timeout(_)) => FailoverScenario {
                        mix,
                        winner: "-".to_string(),
                        unreachable: if silent { 1 } else { 0 },
                        misses: if m2_has { 0 } else { 1 },
                        corrupt_rejected: if corrupt { 1 } else { 0 },
                        concluded: true,
                    },
                    Err(e) => panic!("untyped fetch failure: {e}"),
                };
                out.push(scenario);
            }
        }
    }
    out
}

/// The throughput leg's measurements. Record counts are deterministic;
/// the per-second rates are wall-clock.
#[derive(Clone, Debug)]
pub struct Throughput {
    /// Requests issued on each path.
    pub requests: usize,
    /// Wire records (packets) for the lock-step path, handshake included.
    pub lockstep_records: usize,
    /// Wire records for the multiplexed path, handshake included.
    pub mux_records: usize,
    /// Lock-step requests/second (wall-clock).
    pub lockstep_per_sec: u64,
    /// Multiplexed requests/second (wall-clock).
    pub mux_per_sec: u64,
}

fn per_sec(n: usize, elapsed_micros: u128) -> u64 {
    ((n as u128).saturating_mul(1_000_000) / elapsed_micros.max(1)) as u64
}

/// Runs lock-step and multiplexed request streams over identical
/// software-backend pairs and compares wire records and wall-clock.
#[must_use]
pub fn run_throughput() -> Throughput {
    // Lock-step: one request, one reply, one seal each way, per call.
    let mut asm = counter_assembly(vec![Box::new(SoftwareSubstrate::new("e18-lockstep"))]);
    let mut net = Network::new("e18-lockstep");
    let (mut server, mut client) = bind_pair(&mut net, plain_export(), ChannelPolicy::open());
    establish(&mut net, &mut client, None, &mut server, &mut asm).expect("establish");
    let start = Instant::now();
    for _ in 0..THROUGHPUT_REQUESTS {
        call(&mut net, &mut client, &mut server, &mut asm, b"r").expect("lock-step call");
    }
    let lockstep_per_sec = per_sec(THROUGHPUT_REQUESTS, start.elapsed().as_micros());
    let lockstep_records = net.recorded().len();

    // Multiplexed: a full window per sealed record group.
    let mut asm = counter_assembly(vec![Box::new(SoftwareSubstrate::new("e18-mux"))]);
    let mut net = Network::new("e18-mux-throughput");
    let (mut server, mut client) = bind_pair(&mut net, plain_export(), ChannelPolicy::open());
    server.set_window(THROUGHPUT_WINDOW);
    client.set_window(THROUGHPUT_WINDOW);
    establish(&mut net, &mut client, None, &mut server, &mut asm).expect("establish");
    let start = Instant::now();
    let mut served = 0usize;
    while served < THROUGHPUT_REQUESTS {
        let batch = THROUGHPUT_WINDOW.min(THROUGHPUT_REQUESTS - served);
        for _ in 0..batch {
            client.submit(b"r").expect("submit");
        }
        client.flush(&mut net).expect("flush");
        server.pump(&mut net, &mut asm).expect("pump");
        loop {
            let replies = client.poll_group_replies(&mut net).expect("poll");
            if replies.is_empty() {
                break;
            }
            for (_, outcome) in replies {
                outcome.expect("multiplexed reply serves");
                served += 1;
            }
        }
    }
    let mux_per_sec = per_sec(THROUGHPUT_REQUESTS, start.elapsed().as_micros());
    let mux_records = net.recorded().len();

    Throughput {
        requests: THROUGHPUT_REQUESTS,
        lockstep_records,
        mux_records,
        lockstep_per_sec,
        mux_per_sec,
    }
}

/// The machine-readable record `repro` writes to `BENCH_E18.json`.
#[must_use]
pub fn bench_json(
    mux: &[BackendMux],
    resumption: &ResumptionOutcome,
    failover: &[FailoverScenario],
    throughput: &Throughput,
) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e18\",\n  \"backends\": [\n");
    for (i, b) in mux.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"backend\": \"{}\", \"served\": {}, \"refused\": {}, \
             \"client_digest\": \"{}\", \"server_digest\": \"{}\" }}{}\n",
            b.backend,
            b.served,
            b.refused,
            b.client_digest,
            b.server_digest,
            if i + 1 < mux.len() { "," } else { "" }
        ));
    }
    let lost = failover.iter().filter(|s| !s.concluded).count();
    out.push_str(&format!(
        "  ],\n  \"resumption\": {{ \"attestations_after_connect\": {}, \"resumes\": {}, \
         \"attestations_after_resumes\": {}, \"rejects\": {}, \
         \"attestations_after_revocation\": {} }},\n",
        resumption.attestations_after_connect,
        resumption.resumes,
        resumption.attestations_after_resumes,
        resumption.rejects,
        resumption.attestations_after_revocation,
    ));
    out.push_str(&format!(
        "  \"failover\": {{ \"scenarios\": {}, \"lost\": {lost} }},\n",
        failover.len()
    ));
    out.push_str(&format!(
        "  \"throughput\": {{ \"requests\": {}, \"lockstep_records\": {}, \
         \"multiplexed_records\": {}, \"wall_clock_lockstep_per_sec\": {}, \
         \"wall_clock_multiplexed_per_sec\": {} }}\n}}\n",
        throughput.requests,
        throughput.lockstep_records,
        throughput.mux_records,
        throughput.lockstep_per_sec,
        throughput.mux_per_sec,
    ));
    out
}

/// Renders the session report.
#[must_use]
pub fn report() -> String {
    report_and_json().0
}

/// Renders the session report together with the machine-readable
/// `BENCH_E18.json` payload, sharing one measurement run.
#[must_use]
pub fn report_and_json() -> (String, String) {
    let mux = run_mux();
    let resumption = run_resumption();
    let failover = run_failover();
    let throughput = run_throughput();

    let mut rows = vec![vec![
        "backend".to_string(),
        "submitted".to_string(),
        "served".to_string(),
        "refused".to_string(),
        "client session digest".to_string(),
        "server trace digest".to_string(),
    ]];
    for b in &mux {
        rows.push(vec![
            b.backend.clone(),
            b.submitted.to_string(),
            b.served.to_string(),
            b.refused.to_string(),
            b.client_digest.clone(),
            b.server_digest.clone(),
        ]);
    }
    let invariant = mux.iter().all(|b| {
        b.client_digest == mux[0].client_digest && b.server_digest == mux[0].server_digest
    });

    let mut resume_rows = vec![vec![
        "phase".to_string(),
        "attestations".to_string(),
        "resumes".to_string(),
        "rejects".to_string(),
    ]];
    resume_rows.push(vec![
        "connect (full handshake)".to_string(),
        resumption.attestations_after_connect.to_string(),
        "0".to_string(),
        "0".to_string(),
    ]);
    resume_rows.push(vec![
        "3 resume cycles, same epoch".to_string(),
        resumption.attestations_after_resumes.to_string(),
        resumption.resumes.to_string(),
        "0".to_string(),
    ]);
    resume_rows.push(vec![
        "revocation moves the epoch".to_string(),
        resumption.attestations_after_revocation.to_string(),
        resumption.resumes.to_string(),
        resumption.rejects.to_string(),
    ]);
    let fresh_within_epoch =
        resumption.attestations_after_resumes - resumption.attestations_after_connect;

    let mut failover_rows = vec![vec![
        "mirror mix".to_string(),
        "winner".to_string(),
        "unreachable".to_string(),
        "misses".to_string(),
        "corrupt".to_string(),
    ]];
    for s in &failover {
        failover_rows.push(vec![
            s.mix.clone(),
            s.winner.clone(),
            s.unreachable.to_string(),
            s.misses.to_string(),
            s.corrupt_rejected.to_string(),
        ]);
    }
    let lost = failover.iter().filter(|s| !s.concluded).count();
    let served_verified = failover.iter().filter(|s| s.winner != "-").count();

    let json = bench_json(&mux, &resumption, &failover, &throughput);
    let fewer = throughput.lockstep_records as f64 / throughput.mux_records.max(1) as f64;
    let speedup = throughput.mux_per_sec as f64 / throughput.lockstep_per_sec.max(1) as f64;
    let report = format!(
        "E18 — multiplexed remote sessions: resumption, windows, mirror failover\n\n\
         {}\n\
         Two request groups in flight over one secure channel; each entry\n\
         lands as a child span of its own caller, and the {}-entry server\n\
         window answers the overflow with a typed Overloaded refusal. The\n\
         session digests above encode structure only, so they are\n\
         identical on every backend (backend-invariant: {}).\n\n\
         Session resumption (attested microkernel export):\n\n\
         {}\n\
         A resumption ticket is bound to the verified evidence digest and\n\
         the (revocation, trust, re-grant) epoch, rotated on every use\n\
         (rotated: {}). Within the epoch, {} resumptions cost {} fresh\n\
         attestations; the revocation moves the epoch and the next\n\
         connect re-attests in full.\n\n\
         Content-addressed mirror failover ({} health mixes):\n\n\
         {}\n\
         The digest is verified regardless of source: corrupt mirrors\n\
         cost one failover, never an accepted forgery. {} of {} fetches\n\
         served verified bytes, the rest failed typed — {} lost\n\
         (conserved: {}).\n\n\
         Throughput, {} requests, window {}:\n\
         records on the wire: lock-step {} vs multiplexed {} ({:.1}x fewer)\n\
         wall-clock   lock-step: {} requests/sec\n\
         wall-clock   multiplexed: {} requests/sec (speedup {:.1}x)\n",
        render(&rows),
        WINDOW,
        if invariant { "yes" } else { "NO" },
        render(&resume_rows),
        if resumption.ticket_rotated {
            "yes"
        } else {
            "NO"
        },
        resumption.resumes,
        fresh_within_epoch,
        failover.len(),
        render(&failover_rows),
        served_verified,
        failover.len(),
        lost,
        if lost == 0 { "yes" } else { "NO" },
        throughput.requests,
        THROUGHPUT_WINDOW,
        throughput.lockstep_records,
        throughput.mux_records,
        fewer,
        throughput.lockstep_per_sec,
        throughput.mux_per_sec,
        speedup,
    );
    (report, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplexed_digests_are_backend_invariant() {
        let mux = run_mux();
        assert_eq!(mux.len(), 6, "the mix covers every backend");
        for b in &mux {
            assert_eq!(
                b.client_digest, mux[0].client_digest,
                "{}: client session digest must be backend-invariant",
                b.backend
            );
            assert_eq!(
                b.server_digest, mux[0].server_digest,
                "{}: adopted-trace digest must be backend-invariant",
                b.backend
            );
            assert_eq!(b.served, WINDOW + GROUP2, "{}", b.backend);
            assert_eq!(b.refused, 1, "{}: exactly the over-window entry", b.backend);
        }
    }

    #[test]
    fn resumption_amortizes_attestation_until_the_epoch_moves() {
        let r = run_resumption();
        assert_eq!(r.attestations_after_connect, 1);
        assert_eq!(r.resumes, 3);
        assert_eq!(
            r.attestations_after_resumes, 1,
            "zero fresh attestations within the epoch"
        );
        assert_eq!(r.rejects, 1);
        assert_eq!(
            r.attestations_after_revocation, 2,
            "the revocation forces exactly one re-attestation"
        );
        assert!(r.ticket_rotated);
    }

    #[test]
    fn every_fetch_concludes_typed_with_zero_lost() {
        let failover = run_failover();
        assert_eq!(failover.len(), 8);
        assert!(failover.iter().all(|s| s.concluded), "no lost fetches");
        // Whenever any mirror holds genuine bytes, the fetch succeeds.
        assert_eq!(
            failover.iter().filter(|s| s.winner != "-").count(),
            7,
            "only the all-bad mix (corrupt + silent + missing) fails, typed"
        );
    }

    #[test]
    fn multiplexing_slashes_wire_records() {
        let t = run_throughput();
        assert!(
            t.mux_records * 4 < t.lockstep_records,
            "one record group per window must cut wire records by far more \
             than 4x (lock-step {}, multiplexed {})",
            t.lockstep_records,
            t.mux_records
        );
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&report()), strip(&report()));
    }
}
