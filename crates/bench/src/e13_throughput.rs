//! E13 — invocation throughput: the allocation-free fabric hot path.
//!
//! The paper's unified isolation interface (§III-A) is only usable as
//! the *default* structuring tool if crossing a component boundary is
//! cheap. This experiment gates that property after the interning
//! rework: span names are interned `LabelId`s precomputed at spawn,
//! the `fabric.*` / `crossing.*` metric families are pre-registered
//! handles, and `invoke_batch` validates the capability, runs the
//! backend gate, and opens one span once for N same-channel calls.
//!
//! Two halves, deliberately separated:
//!
//! * **Deterministic sweep** (all six backends): a fixed workload runs
//!   once through an invoke loop and once through `invoke_batch` on
//!   same-seed instances. The trace rings must be byte-identical
//!   (batching changes *when* validation happens, never what is
//!   recorded), the span-tree and invariant-metrics digests must be
//!   byte-identical across every backend (interning must not leak
//!   backend-specific structure), and the logical crossing-cost table
//!   is printed per backend — the E4-style cost ladder, now measured
//!   through the batched path.
//! * **Wall-clock measurement** (software backend only): invocations
//!   per second through the loop and the batched path, printed against
//!   the pre-interning baseline. Every such line is prefixed
//!   `wall-clock` so the run-twice determinism gate in
//!   `scripts/check.sh` can filter it before comparing bytes.

use std::collections::BTreeMap;
use std::time::Instant;

use lateral_crypto::Digest;
use lateral_substrate::cap::Badge;
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_telemetry::outcome as span_outcome;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Invocations/sec of the software backend's invoke loop measured at
/// the commit *before* the interning rework (2M-call release loop,
/// 16-byte echo payload; runs: 2,657,621 / 2,633,307 / 2,644,859).
/// The acceptance gate is ≥ 2× this number on the batched path.
pub const PRE_PR_BASELINE_PER_SEC: u64 = 2_640_000;

/// Calls per wall-clock measurement. Debug builds run the same code
/// two orders of magnitude shorter — the wall-clock half is excluded
/// from determinism comparisons, so the size switch affects nothing
/// but test latency.
#[cfg(debug_assertions)]
const WALL_CLOCK_CALLS: usize = 20_000;
#[cfg(not(debug_assertions))]
const WALL_CLOCK_CALLS: usize = 2_000_000;

/// Payloads per `invoke_batch` call in the wall-clock measurement.
const WALL_CLOCK_BATCH: usize = 1024;

/// Invocations in the deterministic per-backend sweep.
const SWEEP_CALLS: usize = 64;

/// One backend's deterministic sweep measurements.
#[derive(Clone, Debug)]
pub struct BackendSweep {
    /// Backend name (substrate profile).
    pub backend: String,
    /// The crossing kind the workload's invocations took.
    pub crossing: String,
    /// Invocations dispatched (loop and batch each).
    pub invocations: u64,
    /// Total logical ticks charged for the crossings (batch instance).
    pub logical_cost: u64,
    /// `invoke` spans recorded by the loop instance.
    pub loop_spans: usize,
    /// `invoke` spans recorded by the batch instance (always 1).
    pub batch_spans: usize,
    /// Whether loop and batch left byte-identical trace rings.
    pub rings_match: bool,
    /// Digest over the batch instance's span tree (structure only) —
    /// must match on every backend.
    pub tree_digest: String,
    /// Digest over the invariant metric-counter projection (deltas,
    /// `crossing.*` excluded) — must match on every backend.
    pub metrics_digest: String,
}

/// The software backend's wall-clock throughput numbers.
#[derive(Clone, Copy, Debug)]
pub struct WallClock {
    /// Calls measured per path.
    pub calls: usize,
    /// Invocations/sec through the per-call `invoke` path.
    pub loop_per_sec: u64,
    /// Invocations/sec through `invoke_batch`.
    pub batch_per_sec: u64,
}

fn setup(
    sub: &mut dyn Substrate,
    tag: &str,
) -> (
    lateral_substrate::DomainId,
    lateral_substrate::cap::ChannelCap,
) {
    let svc = sub
        .spawn(DomainSpec::named(&format!("{tag}-svc")), Box::new(Echo))
        .expect("spawn service");
    let client = sub
        .spawn(DomainSpec::named(&format!("{tag}-client")), Box::new(Echo))
        .expect("spawn client");
    let cap = sub.grant_channel(client, svc, Badge(13)).expect("grant");
    (client, cap)
}

/// Counter deltas since `baseline`, `crossing.*` excluded, canonical
/// text — the same invariant projection E12 digests.
fn invariant_metrics_digest(sub: &dyn Substrate, baseline: &BTreeMap<String, u64>) -> String {
    let mut canon = String::new();
    for (name, value) in sub
        .telemetry_ref()
        .expect("fabric-backed")
        .metrics()
        .counters()
    {
        if name.starts_with("crossing.") {
            continue;
        }
        let delta = value - baseline.get(name).copied().unwrap_or(0);
        if delta > 0 {
            canon.push_str(&format!("{name}={delta}\n"));
        }
    }
    Digest::of(canon.as_bytes()).short_hex()
}

fn counter_baseline(sub: &dyn Substrate) -> BTreeMap<String, u64> {
    sub.telemetry_ref()
        .expect("fabric-backed")
        .metrics()
        .counters()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
}

/// Runs the deterministic sweep on the backend at `idx` in the
/// conformance pool: the same workload through a loop and a batch on
/// two same-seed instances.
fn run_backend(idx: usize) -> BackendSweep {
    let payloads: Vec<Vec<u8>> = (0..SWEEP_CALLS).map(|i| vec![i as u8; 16]).collect();

    let mut looped = all_substrates().remove(idx);
    let backend = looped.profile().name.clone();
    let (client, cap) = setup(looped.as_mut(), "e13");
    for p in &payloads {
        looped.invoke(client, &cap, p).expect("loop invoke");
    }

    let mut batched = all_substrates().remove(idx);
    let baseline = counter_baseline(batched.as_ref());
    let at = batched.now();
    let tel = batched.telemetry_mut_ref().expect("fabric-backed");
    let root = tel.begin_span("e13 invocation sweep", "experiment", at);
    let trace_id = tel.context().expect("root open").trace_id;
    let (client, cap) = setup(batched.as_mut(), "e13");
    let ring_before = batched.fabric_ref().expect("fabric").trace_len();
    let views: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    let replies = batched
        .invoke_batch(client, &cap, &views)
        .expect("batch invoke");
    assert_eq!(replies, payloads, "echo batch replies in order");
    let now = batched.now();
    let tel = batched.telemetry_mut_ref().expect("fabric-backed");
    tel.end_span(root, now, span_outcome::OK);

    let fabric = batched.fabric_ref().expect("fabric");
    let events: Vec<_> = fabric.trace().skip(ring_before).cloned().collect();
    let invocations = events.len() as u64;
    let logical_cost: u64 = events.iter().map(|e| e.cost).sum();
    let crossing = events
        .last()
        .map(|e| e.crossing.name().to_string())
        .unwrap_or_default();

    let count_invoke_spans = |sub: &dyn Substrate| {
        sub.telemetry_ref()
            .expect("fabric-backed")
            .spans()
            .filter(|s| &*s.name == "invoke e13-svc")
            .count()
    };
    let rings_match = looped.fabric_ref().expect("fabric").trace_bytes()
        == batched.fabric_ref().expect("fabric").trace_bytes();
    let tree_digest = batched
        .telemetry_ref()
        .expect("fabric-backed")
        .trace_digest(trace_id)
        .short_hex();
    let metrics_digest = invariant_metrics_digest(batched.as_ref(), &baseline);

    BackendSweep {
        backend,
        crossing,
        invocations,
        logical_cost,
        loop_spans: count_invoke_spans(looped.as_ref()),
        batch_spans: count_invoke_spans(batched.as_ref()),
        rings_match,
        tree_digest,
        metrics_digest,
    }
}

/// Runs the deterministic sweep on all six backends.
pub fn run() -> Vec<BackendSweep> {
    (0..all_substrates().len()).map(run_backend).collect()
}

/// Measures wall-clock invocations/sec on the software backend, loop
/// vs. batch. Logical results are asserted equal; the timing itself is
/// inherently nondeterministic and printed only on `wall-clock` lines.
pub fn run_wall_clock() -> WallClock {
    let payload = [0x5au8; 16];

    let mut sub = SoftwareSubstrate::new("e13-wall");
    let (client, cap) = setup(&mut sub, "e13-wall");
    let start = Instant::now();
    for _ in 0..WALL_CLOCK_CALLS {
        sub.invoke(client, &cap, &payload).expect("wall loop");
    }
    let loop_secs = start.elapsed().as_secs_f64();

    let mut sub = SoftwareSubstrate::new("e13-wall");
    let (client, cap) = setup(&mut sub, "e13-wall");
    let views: Vec<&[u8]> = vec![&payload; WALL_CLOCK_BATCH];
    let start = Instant::now();
    let mut done = 0usize;
    while done < WALL_CLOCK_CALLS {
        let n = WALL_CLOCK_BATCH.min(WALL_CLOCK_CALLS - done);
        let replies = sub
            .invoke_batch(client, &cap, &views[..n])
            .expect("wall batch");
        done += replies.len();
    }
    let batch_secs = start.elapsed().as_secs_f64();

    let per_sec = |secs: f64| {
        if secs > 0.0 {
            (WALL_CLOCK_CALLS as f64 / secs) as u64
        } else {
            u64::MAX
        }
    };
    WallClock {
        calls: WALL_CLOCK_CALLS,
        loop_per_sec: per_sec(loop_secs),
        batch_per_sec: per_sec(batch_secs),
    }
}

fn group(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

/// Renders the throughput report.
pub fn report() -> String {
    let results = run();
    let wall = run_wall_clock();

    let mut rows = vec![vec![
        "backend".to_string(),
        "crossing".to_string(),
        "calls".to_string(),
        "logical ticks".to_string(),
        "ticks/call".to_string(),
        "loop spans".to_string(),
        "batch spans".to_string(),
        "span-tree digest".to_string(),
        "metrics digest".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            b.crossing.clone(),
            b.invocations.to_string(),
            b.logical_cost.to_string(),
            (b.logical_cost / b.invocations.max(1)).to_string(),
            b.loop_spans.to_string(),
            b.batch_spans.to_string(),
            b.tree_digest.clone(),
            b.metrics_digest.clone(),
        ]);
    }
    let invariant = results
        .iter()
        .all(|b| b.tree_digest == results[0].tree_digest)
        && results
            .iter()
            .all(|b| b.metrics_digest == results[0].metrics_digest);
    let rings = results.iter().all(|b| b.rings_match);

    let ratio = |v: u64| v as f64 / PRE_PR_BASELINE_PER_SEC as f64;
    format!(
        "E13 — invocation throughput: allocation-free hot path, batched crossings\n\n\
         {}\n\
         The same {}-call workload ran as an invoke loop and as one\n\
         invoke_batch on same-seed instances of each backend. Batch and\n\
         loop trace rings byte-identical: {}. Span-tree and metrics\n\
         digests under interning (backend-invariant: {}).\n\n\
         wall-clock (software backend, {} calls, 16-byte echo payload;\n\
         wall-clock lines are excluded from the determinism compare):\n\
         wall-clock   invoke loop : {:>10} invocations/sec ({:.2}x pre-PR baseline {})\n\
         wall-clock   invoke_batch: {:>10} invocations/sec ({:.2}x pre-PR baseline)\n",
        render(&rows),
        SWEEP_CALLS,
        if rings { "yes" } else { "NO" },
        if invariant { "yes" } else { "NO" },
        group(wall.calls as u64),
        group(wall.loop_per_sec),
        ratio(wall.loop_per_sec),
        group(PRE_PR_BASELINE_PER_SEC),
        group(wall.batch_per_sec),
        ratio(wall.batch_per_sec),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digests_and_rings_are_backend_invariant() {
        let results = run();
        assert_eq!(results.len(), 6, "the sweep covers every backend");
        for b in &results {
            assert_eq!(
                b.tree_digest, results[0].tree_digest,
                "{}: span-tree digest must be backend-invariant",
                b.backend
            );
            assert_eq!(
                b.metrics_digest, results[0].metrics_digest,
                "{}: invariant metrics digest must be backend-invariant",
                b.backend
            );
            assert!(
                b.rings_match,
                "{}: batch must leave the loop's exact trace ring",
                b.backend
            );
            assert_eq!(b.invocations, SWEEP_CALLS as u64, "{}", b.backend);
            assert_eq!(
                b.loop_spans, SWEEP_CALLS,
                "{}: the loop opens one span per call",
                b.backend
            );
            assert_eq!(b.batch_spans, 1, "{}: one span per batch", b.backend);
        }
    }

    #[test]
    fn logical_costs_follow_the_backend_ladder() {
        let by_name: BTreeMap<String, u64> = run()
            .into_iter()
            .map(|b| (b.crossing.clone(), b.logical_cost / b.invocations))
            .collect();
        // The sweep observes every distinct crossing kind's cost model;
        // local (software) must be the cheapest rung on the ladder.
        let local = by_name.get("local").copied().expect("software backend ran");
        for (kind, cost) in &by_name {
            assert!(
                *cost >= local,
                "crossing '{kind}' must cost at least a local call ({cost} < {local})"
            );
        }
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall-clock"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (a, b) = (report(), report());
        assert_eq!(
            strip(&a),
            strip(&b),
            "two runs must differ only on wall-clock lines"
        );
    }
}
