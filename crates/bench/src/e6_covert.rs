//! E6 — the cache covert channel vs. temporal isolation (§II-C).
//!
//! A sender domain transmits a secret bitstring to a receiver domain
//! through cache contention (prime+probe over one cache set), one bit
//! per scheduling slot. Policies compared:
//!
//! * round-robin (no mitigation) — the paper's "hardware is leaky" case;
//! * time partitioning *without* cache flush (ablation);
//! * time partitioning *with* cache flush — the microkernel mitigation
//!   the paper credits with "strong temporal isolation".
//!
//! Expected shape: ~100 % decoding accuracy unmitigated, 100 % again in
//! the ablation (partitioning alone does nothing), and chance-level
//! (all-probes-miss ⇒ zero extractable information) with flushing.

use lateral_crypto::rng::Drbg;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::{Microkernel, SchedPolicy};
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;

use crate::row;
use crate::table::render;

/// Bits transmitted per trial.
pub const MESSAGE_BITS: usize = 64;

/// Result of one policy's trial.
#[derive(Clone, Debug)]
pub struct ChannelTrial {
    /// Policy name.
    pub policy: &'static str,
    /// Correctly decoded bits.
    pub correct_bits: usize,
    /// Total bits sent.
    pub total_bits: usize,
    /// Mutual-information style capacity estimate in bits per slot pair
    /// (1.0 = perfect channel, 0.0 = useless).
    pub capacity: f64,
    /// Logical cycles consumed (mitigation cost shows up here).
    pub cycles: u64,
}

fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        0.0
    } else {
        -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
    }
}

/// Transmits a pseudo-random bitstring under `policy`; returns the trial.
pub fn transmit(policy: SchedPolicy, name: &'static str) -> ChannelTrial {
    let machine = MachineBuilder::new().name("e6").frames(64).build();
    let mut kernel = Microkernel::new(machine, "e6");
    kernel.set_sched_policy(policy);
    let sender = kernel
        .spawn(DomainSpec::named("sender"), Box::new(Echo))
        .expect("spawn");
    let receiver = kernel
        .spawn(DomainSpec::named("receiver"), Box::new(Echo))
        .expect("spawn");

    let mut rng = Drbg::from_seed(b"e6 message");
    let message: Vec<bool> = (0..MESSAGE_BITS).map(|_| rng.gen_bool(1, 2)).collect();
    let target = 0x8000u64;
    let eviction_set = kernel.machine_ref().cache.eviction_set(target);

    let t0 = kernel.machine_ref().clock.now();
    let mut decoded = Vec::with_capacity(MESSAGE_BITS);
    for &bit in &message {
        // Receiver primes.
        kernel.schedule(receiver).expect("schedule");
        kernel.cache_touch(receiver, target).expect("touch");
        // Sender transmits by (not) evicting.
        kernel.schedule(sender).expect("schedule");
        if bit {
            for &a in &eviction_set {
                kernel.cache_touch(sender, a).expect("touch");
            }
        }
        // Receiver probes: miss ⇒ 1.
        kernel.schedule(receiver).expect("schedule");
        let probe = kernel.cache_touch(receiver, target).expect("touch");
        decoded.push(!probe.hit);
    }
    let cycles = kernel.machine_ref().clock.now() - t0;

    let correct = message.iter().zip(&decoded).filter(|(a, b)| a == b).count();
    // Estimate capacity from the error rate of a binary symmetric channel.
    // A decoder that outputs a *constant* (all misses under flushing)
    // matches ~half the random bits but carries zero information; detect
    // that case via the decoded distribution.
    let ones = decoded.iter().filter(|b| **b).count();
    let constant_output = ones == 0 || ones == decoded.len();
    let p_err = 1.0 - correct as f64 / message.len() as f64;
    let capacity = if constant_output {
        0.0
    } else {
        (1.0 - binary_entropy(p_err)).max(0.0)
    };
    ChannelTrial {
        policy: name,
        correct_bits: correct,
        total_bits: message.len(),
        capacity,
        cycles,
    }
}

/// Transmits the same message between two SGX enclaves co-located on one
/// CPU: no scheduler mitigation exists at all, the §II-C "hardware is
/// leaky" case.
pub fn transmit_sgx_colocated() -> ChannelTrial {
    use lateral_sgx::Sgx;
    let machine = MachineBuilder::new().name("e6-sgx").frames(64).build();
    let mut sgx = Sgx::new(machine, "e6");
    let sender = sgx
        .spawn(DomainSpec::named("sender-enclave"), Box::new(Echo))
        .expect("spawn");
    let receiver = sgx
        .spawn(DomainSpec::named("receiver-enclave"), Box::new(Echo))
        .expect("spawn");

    let mut rng = Drbg::from_seed(b"e6 message");
    let message: Vec<bool> = (0..MESSAGE_BITS).map(|_| rng.gen_bool(1, 2)).collect();
    let target = 0x8000u64;
    let eviction_set = sgx.machine_ref().cache.eviction_set(target);

    let t0 = sgx.machine_ref().clock.now();
    let mut decoded = Vec::with_capacity(MESSAGE_BITS);
    for &bit in &message {
        sgx.cache_touch(receiver, target).expect("touch");
        if bit {
            for &a in &eviction_set {
                sgx.cache_touch(sender, a).expect("touch");
            }
        }
        let probe = sgx.cache_touch(receiver, target).expect("touch");
        decoded.push(!probe.hit);
    }
    let cycles = sgx.machine_ref().clock.now() - t0;
    let correct = message.iter().zip(&decoded).filter(|(a, b)| a == b).count();
    let ones = decoded.iter().filter(|b| **b).count();
    let constant_output = ones == 0 || ones == decoded.len();
    let p_err = 1.0 - correct as f64 / message.len() as f64;
    ChannelTrial {
        policy: "SGX enclaves co-located (no mitigation exists)",
        correct_bits: correct,
        total_bits: message.len(),
        capacity: if constant_output {
            0.0
        } else {
            (1.0 - binary_entropy(p_err)).max(0.0)
        },
        cycles,
    }
}

/// Runs all policies.
pub fn run() -> Vec<ChannelTrial> {
    vec![
        transmit(SchedPolicy::RoundRobin, "round-robin (no mitigation)"),
        transmit(
            SchedPolicy::TimePartitioned { flush_cache: false },
            "time partitioning, no flush (ablation)",
        ),
        transmit(
            SchedPolicy::TimePartitioned { flush_cache: true },
            "time partitioning + cache flush",
        ),
        transmit_sgx_colocated(),
    ]
}

/// Renders the report.
pub fn report() -> String {
    let trials = run();
    let mut rows = vec![row![
        "policy",
        "decoded correctly",
        "capacity (bits/slot)",
        "cycles"
    ]];
    for t in &trials {
        rows.push(row![
            t.policy,
            format!("{}/{}", t.correct_bits, t.total_bits),
            format!("{:.2}", t.capacity),
            t.cycles
        ]);
    }
    format!(
        "E6 — cache covert channel vs. temporal isolation (§II-C)\n\n{}\n\
         mitigation closes the channel (capacity → 0) at a measurable\n\
         flush cost in cycles\n",
        render(&rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmitigated_channel_is_nearly_perfect() {
        let t = transmit(SchedPolicy::RoundRobin, "rr");
        assert!(
            t.correct_bits as f64 / t.total_bits as f64 > 0.95,
            "{}/{}",
            t.correct_bits,
            t.total_bits
        );
        assert!(t.capacity > 0.7);
    }

    #[test]
    fn partitioning_without_flush_does_not_help() {
        let t = transmit(SchedPolicy::TimePartitioned { flush_cache: false }, "tp");
        assert!(t.capacity > 0.7, "ablation capacity {}", t.capacity);
    }

    #[test]
    fn flushing_destroys_the_channel() {
        let t = transmit(SchedPolicy::TimePartitioned { flush_cache: true }, "tpf");
        assert_eq!(t.capacity, 0.0, "capacity must vanish");
    }

    #[test]
    fn sgx_colocation_leaks_like_round_robin() {
        let t = transmit_sgx_colocated();
        assert!(t.capacity > 0.7, "SGX colocated capacity {}", t.capacity);
    }

    #[test]
    fn mitigation_costs_cycles() {
        let open = transmit(SchedPolicy::RoundRobin, "rr");
        let closed = transmit(SchedPolicy::TimePartitioned { flush_cache: true }, "tpf");
        assert!(closed.cycles > open.cycles, "flushing is not free");
    }

    #[test]
    fn report_renders() {
        assert!(report().contains("cache flush"));
    }
}
