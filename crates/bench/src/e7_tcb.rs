//! E7 — per-asset TCB accounting (§I, §III-B).
//!
//! For every asset of the email client: how many lines of code must be
//! correct for the asset to stay safe? Horizontally that is the asset's
//! exposure set (components that can reach its holder) plus the
//! substrate; vertically it is the whole monolith plus its OS. A second
//! table compares the substrate TCBs themselves (§II-C's seL4-vs-SGX
//! discussion).

use lateral_apps::email::{horizontal_manifest, vertical_manifest};
use lateral_core::analysis;

use crate::e2_conformance::all_substrates;
use crate::row;
use crate::table::render;

/// Substrate TCB assumed under the horizontal client (microkernel).
pub const MICROKERNEL_TCB: u64 = 10_000;
/// TCB under the vertical client (a commodity monolithic kernel).
pub const MONOLITHIC_OS_TCB: u64 = 20_000_000;

/// One asset row.
#[derive(Clone, Debug)]
pub struct AssetTcb {
    /// Asset name.
    pub asset: String,
    /// Exposure-set size (components) horizontally.
    pub h_components: usize,
    /// Horizontal TCB in LoC (app share only, excluding substrate).
    pub h_app_loc: u64,
    /// Vertical TCB in LoC (app share only).
    pub v_app_loc: u64,
}

/// All assets of the email client.
pub const ASSETS: [&str; 6] = [
    "tls-keys",
    "account-password",
    "mail-archive",
    "contacts",
    "user-dictionary",
    "display-trust",
];

/// Runs the accounting.
pub fn run() -> Vec<AssetTcb> {
    let h = horizontal_manifest();
    let v = vertical_manifest();
    ASSETS
        .iter()
        .map(|asset| {
            let exposure = analysis::asset_exposure(&h, asset).expect("asset exists");
            let h_loc = analysis::asset_tcb_loc(&h, asset, 0).expect("asset exists");
            let v_loc = analysis::asset_tcb_loc(&v, asset, 0).expect("asset exists");
            AssetTcb {
                asset: asset.to_string(),
                h_components: exposure.len(),
                h_app_loc: h_loc,
                v_app_loc: v_loc,
            }
        })
        .collect()
}

/// Renders the report.
pub fn report() -> String {
    let rows_data = run();
    let mut rows = vec![row![
        "asset",
        "horiz. exposure (components)",
        "horiz. TCB (app LoC + kernel)",
        "vert. TCB (app LoC + OS)",
        "reduction"
    ]];
    for r in &rows_data {
        let h_total = r.h_app_loc + MICROKERNEL_TCB;
        let v_total = r.v_app_loc + MONOLITHIC_OS_TCB;
        rows.push(row![
            r.asset,
            r.h_components,
            format!("{} + {}", r.h_app_loc, MICROKERNEL_TCB),
            format!("{} + {}", r.v_app_loc, MONOLITHIC_OS_TCB),
            format!("{:.0}x", v_total as f64 / h_total as f64)
        ]);
    }

    // Substrate TCB comparison from the live profiles.
    let mut srows = vec![row![
        "substrate",
        "TCB (LoC)",
        "defends",
        "temporal isolation"
    ]];
    for sub in all_substrates() {
        let p = sub.profile().clone();
        let defends: Vec<String> = p.defends.iter().map(|m| m.to_string()).collect();
        srows.push(row![
            p.name,
            p.tcb_loc,
            defends.join(","),
            if p.features.temporal_isolation {
                "yes"
            } else {
                "no"
            }
        ]);
    }

    format!(
        "E7 — per-asset TCB (§I, §III-B)\n\n{}\n\
         substrate profiles:\n{}\n",
        render(&rows),
        render(&srows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_asset_has_smaller_horizontal_tcb() {
        for r in run() {
            assert!(
                r.h_app_loc < r.v_app_loc,
                "{}: {} !< {}",
                r.asset,
                r.h_app_loc,
                r.v_app_loc
            );
        }
    }

    #[test]
    fn renderer_is_outside_every_asset_tcb() {
        // 30 kLoC of HTML parsing never guards any asset.
        let h = horizontal_manifest();
        for asset in ASSETS {
            let exposure = analysis::asset_exposure(&h, asset).unwrap();
            assert!(
                !exposure.contains("html-renderer"),
                "renderer in TCB of {asset}"
            );
        }
    }

    #[test]
    fn reductions_are_at_least_an_order_of_magnitude() {
        for r in run() {
            let h_total = r.h_app_loc + MICROKERNEL_TCB;
            let v_total = r.v_app_loc + MONOLITHIC_OS_TCB;
            assert!(v_total / h_total >= 10, "{}", r.asset);
        }
    }

    #[test]
    fn report_renders() {
        let rep = report();
        assert!(rep.contains("tls-keys"));
        assert!(rep.contains("sgx"));
    }
}
