//! E5 — the VPFS trusted wrapper: overhead and tamper detection.
//!
//! Workload: write/read files of several sizes through the raw legacy
//! file system and through VPFS, counting block-device I/O. Then inject
//! tampering (data corruption, object deletion, whole-device rollback)
//! and count detections. Expected shape: VPFS costs a constant-factor
//! I/O overhead and detects 100 % of injected tampering; the raw legacy
//! stack detects none.

use lateral_vpfs::{FsError, LegacyFs, MemBlockDevice, Vpfs};

use crate::row;
use crate::table::render;

/// File sizes exercised.
pub const SIZES: [usize; 4] = [512, 4 * 1024, 16 * 1024, 40 * 1024];

/// I/O cost of one size point.
#[derive(Clone, Debug)]
pub struct IoPoint {
    /// File size.
    pub size: usize,
    /// Raw legacy (reads, writes) for write+read of one file.
    pub raw: (u64, u64),
    /// VPFS (reads, writes) for the same.
    pub vpfs: (u64, u64),
}

/// Tamper-detection outcome.
#[derive(Clone, Debug)]
pub struct TamperPoint {
    /// Attack name.
    pub attack: &'static str,
    /// Detected by raw legacy reads?
    pub raw_detected: bool,
    /// Detected by VPFS?
    pub vpfs_detected: bool,
}

fn key() -> [u8; 32] {
    [0x5A; 32]
}

/// Measures the I/O overhead table.
pub fn run_io() -> Vec<IoPoint> {
    SIZES
        .iter()
        .map(|&size| {
            let data: Vec<u8> = (0..size).map(|i| (i % 251) as u8).collect();
            // Raw legacy.
            let mut raw_fs = LegacyFs::format(MemBlockDevice::new(512)).expect("format");
            let base = (raw_fs.device_ref().reads(), raw_fs.device_ref().writes());
            raw_fs.write("file", &data).expect("write");
            let _ = raw_fs.read("file").expect("read");
            let raw = (
                raw_fs.device_ref().reads() - base.0,
                raw_fs.device_ref().writes() - base.1,
            );
            // VPFS.
            let legacy = LegacyFs::format(MemBlockDevice::new(512)).expect("format");
            let mut vpfs = Vpfs::format(legacy, &key()).expect("vpfs");
            let base = (
                vpfs.legacy().device_ref().reads(),
                vpfs.legacy().device_ref().writes(),
            );
            vpfs.write("file", &data).expect("write");
            let _ = vpfs.read("file").expect("read");
            let v = (
                vpfs.legacy().device_ref().reads() - base.0,
                vpfs.legacy().device_ref().writes() - base.1,
            );
            IoPoint { size, raw, vpfs: v }
        })
        .collect()
}

/// Runs the tamper-detection suite.
pub fn run_tamper() -> Vec<TamperPoint> {
    let mut out = Vec::new();
    let payload = b"balance: 100 EUR; keys: 0xDEADBEEF";

    // --- data corruption ---------------------------------------------------
    {
        // Raw.
        let mut raw_fs = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        raw_fs.write("file", payload).expect("write");
        let blocks = raw_fs.file_blocks("file").expect("blocks");
        raw_fs
            .device()
            .corrupt(blocks[0], 3, 0xFF)
            .expect("corrupt");
        // The raw stack happily returns (wrong) data: no detection.
        let raw_detected = raw_fs.read("file").is_err();
        // VPFS.
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        let mut vpfs = Vpfs::format(legacy, &key()).expect("vpfs");
        vpfs.write("file", payload).expect("write");
        let obj = vpfs
            .legacy()
            .list()
            .expect("list")
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .expect("object file");
        let blocks = vpfs.legacy().file_blocks(&obj).expect("blocks");
        vpfs.legacy()
            .device()
            .corrupt(blocks[0], 3, 0xFF)
            .expect("corrupt");
        let vpfs_detected = matches!(vpfs.read("file"), Err(FsError::IntegrityViolation(_)));
        out.push(TamperPoint {
            attack: "data bit-flip",
            raw_detected,
            vpfs_detected,
        });
    }

    // --- object deletion ----------------------------------------------------
    {
        let mut raw_fs = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        raw_fs.write("file", payload).expect("write");
        raw_fs.remove("file").expect("attacker deletes");
        // Deletion IS noticed by raw (NotFound) — but cannot be told apart
        // from "never existed"; we count honest detection.
        let raw_detected = raw_fs.read("file").is_err();
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        let mut vpfs = Vpfs::format(legacy, &key()).expect("vpfs");
        vpfs.write("file", payload).expect("write");
        let obj = vpfs
            .legacy()
            .list()
            .expect("list")
            .into_iter()
            .find(|n| n.starts_with("obj_"))
            .expect("object");
        vpfs.legacy().remove(&obj).expect("attacker deletes");
        let vpfs_detected = matches!(vpfs.read("file"), Err(FsError::IntegrityViolation(_)));
        out.push(TamperPoint {
            attack: "object deletion",
            raw_detected,
            vpfs_detected,
        });
    }

    // --- whole-device rollback ----------------------------------------------
    {
        // Raw: roll back to an older balance — no way to notice.
        let mut raw_fs = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        raw_fs.write("file", b"balance: 100 EUR").expect("write");
        let snap = raw_fs.device().snapshot();
        raw_fs.write("file", b"balance: 5 EUR").expect("write");
        raw_fs.device().rollback(&snap);
        let raw_detected = match raw_fs.read("file") {
            Ok(data) => data != b"balance: 100 EUR", // accepted stale data
            Err(_) => true,
        };
        // VPFS with sealed freshness root.
        let legacy = LegacyFs::format(MemBlockDevice::new(256)).expect("format");
        let mut vpfs = Vpfs::format(legacy, &key()).expect("vpfs");
        vpfs.write("file", b"balance: 100 EUR").expect("write");
        let snap = vpfs.legacy().device().snapshot();
        vpfs.write("file", b"balance: 5 EUR").expect("write");
        let fresh_root = vpfs.root();
        let mut device = vpfs.legacy().device().clone();
        device.rollback(&snap);
        let legacy = LegacyFs::mount(device).expect("mount");
        let vpfs_detected = matches!(
            Vpfs::mount(legacy, &key(), Some(fresh_root)),
            Err(FsError::StaleRoot)
        );
        out.push(TamperPoint {
            attack: "whole-device rollback",
            raw_detected,
            vpfs_detected,
        });
    }

    out
}

/// Renders the report.
pub fn report() -> String {
    let io = run_io();
    let mut rows = vec![row![
        "file size",
        "raw I/O (r+w)",
        "VPFS I/O (r+w)",
        "overhead"
    ]];
    for p in &io {
        let raw_total = p.raw.0 + p.raw.1;
        let vpfs_total = p.vpfs.0 + p.vpfs.1;
        rows.push(row![
            format!("{} B", p.size),
            raw_total,
            vpfs_total,
            format!("{:.1}x", vpfs_total as f64 / raw_total.max(1) as f64)
        ]);
    }
    let tampers = run_tamper();
    let mut trows = vec![row!["attack", "raw legacy fs", "VPFS"]];
    for t in &tampers {
        trows.push(row![
            t.attack,
            if t.raw_detected {
                "detected"
            } else {
                "UNDETECTED"
            },
            if t.vpfs_detected {
                "detected"
            } else {
                "UNDETECTED"
            }
        ]);
    }
    let vpfs_rate = tampers.iter().filter(|t| t.vpfs_detected).count();
    format!(
        "E5 — VPFS trusted wrapper (§III-D)\n\nI/O overhead:\n{}\n\
         tamper detection:\n{}\nVPFS detected {}/{} attacks\n",
        render(&rows),
        render(&trows),
        vpfs_rate,
        tampers.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vpfs_overhead_is_bounded_constant_factor() {
        for p in run_io() {
            let raw = (p.raw.0 + p.raw.1).max(1);
            let v = p.vpfs.0 + p.vpfs.1;
            assert!(v >= raw, "VPFS cannot be cheaper ({v} < {raw})");
            assert!(
                v <= raw * 20,
                "size {}: overhead blew up ({v} vs {raw})",
                p.size
            );
        }
    }

    #[test]
    fn vpfs_detects_all_tampering() {
        for t in run_tamper() {
            assert!(t.vpfs_detected, "VPFS missed: {}", t.attack);
        }
    }

    #[test]
    fn raw_misses_silent_attacks() {
        let tampers = run_tamper();
        let bitflip = tampers
            .iter()
            .find(|t| t.attack == "data bit-flip")
            .unwrap();
        assert!(!bitflip.raw_detected, "raw fs should not detect bit flips");
        let rollback = tampers
            .iter()
            .find(|t| t.attack == "whole-device rollback")
            .unwrap();
        assert!(!rollback.raw_detected);
    }

    #[test]
    fn report_renders() {
        let r = report();
        assert!(r.contains("3/3"));
    }
}
