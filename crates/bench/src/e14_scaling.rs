//! E14 — shard scaling: per-core fabric engines behind one surface.
//!
//! E13 established that a *single* fabric engine dispatches invocations
//! allocation-free; this experiment gates what happens when the fabric
//! is partitioned into N per-shard engines
//! ([`lateral_substrate::shard::ShardFabric`]). Intra-shard work must
//! keep E13's hot path untouched, cross-shard work must show up as the
//! explicit `xshard` crossing class with its own cost-ladder entry, and
//! the per-shard traces must merge into one deterministic stream.
//!
//! Two halves, deliberately separated (as in E13):
//!
//! * **Deterministic sweep** (all six backends): a fixed mixed workload
//!   — per-shard batched invocations, an epoch barrier, cross-shard
//!   grant/invoke, a revoked-cap refusal — runs on a two-shard
//!   fabric built from two same-seed instances of each backend. The
//!   merged trace bytes must be identical across two runs, and the
//!   backend-invariant projections (merged-trace invariant digest,
//!   merged metric deltas excluding `crossing.*`) must be identical
//!   across every backend.
//! * **Wall-clock measurement** (software backend only): total
//!   invocations/sec with the same total work split across 1, 2, 4,
//!   and host-core shard threads, each thread owning its own engine —
//!   the near-linear scaling claim — plus the bounded-inbox
//!   cross-shard round-trip rate. Every such line is prefixed
//!   `wall-clock` (and the core count `host-cores`) so the run-twice
//!   determinism gate in `scripts/check.sh` can filter them.

use std::collections::BTreeMap;
use std::time::Instant;

use lateral_crypto::Digest;
use lateral_substrate::cap::Badge;
use lateral_substrate::shard::{shard_channels, xshard_cost, ShardFabric, ShardId};
use lateral_substrate::software::SoftwareSubstrate;
use lateral_substrate::substrate::{DomainSpec, Substrate};
use lateral_substrate::testkit::Echo;
use lateral_substrate::DomainId;

use crate::e13_throughput::PRE_PR_BASELINE_PER_SEC;
use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Calls per wall-clock scaling point (split across the shard
/// threads). Debug builds run shorter; the wall-clock half is excluded
/// from determinism comparisons, so the switch affects only latency.
#[cfg(debug_assertions)]
const WALL_CLOCK_CALLS: usize = 40_000;
#[cfg(not(debug_assertions))]
const WALL_CLOCK_CALLS: usize = 4_000_000;

/// Payloads per `invoke_batch` call in the wall-clock measurement
/// (E13's batch size).
const WALL_CLOCK_BATCH: usize = 1024;

/// Cross-shard round trips in the bounded-inbox wall-clock leg.
#[cfg(debug_assertions)]
const CROSS_WALL_CALLS: usize = 5_000;
#[cfg(not(debug_assertions))]
const CROSS_WALL_CALLS: usize = 200_000;

/// Intra-shard invocations per shard in the deterministic sweep.
const SWEEP_CALLS_PER_SHARD: usize = 32;

/// Cross-shard invocations in the deterministic sweep.
const SWEEP_CROSS_CALLS: usize = 8;

/// One backend's deterministic two-shard sweep measurements.
#[derive(Clone, Debug)]
pub struct BackendScale {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Intra-shard invocations dispatched (both shards).
    pub intra_calls: u64,
    /// Cross-shard invocations dispatched.
    pub cross_calls: u64,
    /// Logical ticks charged per cross-shard call (the `xshard` rung of
    /// the cost ladder — identical on every backend by design).
    pub cross_ticks_per_call: u64,
    /// Events in the merged `(epoch, shard, seq)` trace.
    pub merged_events: usize,
    /// Digest of the merged trace bytes — stable across two runs of
    /// the same backend (the determinism gate), backend-*specific*
    /// because clock readings and crossing kinds differ.
    pub trace_digest: String,
    /// Backend-invariant digest of the merged trace (clocks, costs,
    /// and crossing kinds excluded) — must match on every backend.
    pub invariant_digest: String,
    /// Digest of the merged metric counter deltas (`crossing.*`
    /// excluded) — must match on every backend.
    pub metrics_digest: String,
}

/// One wall-clock scaling point: the same total work on `shards`
/// engine threads.
#[derive(Clone, Copy, Debug)]
pub struct ScalePoint {
    /// Number of shard threads (each owning its own engine).
    pub shards: usize,
    /// Total invocations across all threads.
    pub calls: usize,
    /// Aggregate invocations/sec.
    pub per_sec: u64,
}

fn counter_baseline(sub: &dyn Substrate) -> BTreeMap<String, u64> {
    sub.telemetry_ref()
        .map(|t| {
            t.metrics()
                .counters()
                .map(|(k, v)| (k.to_string(), v))
                .collect()
        })
        .unwrap_or_default()
}

/// Merged counter deltas since the per-shard baselines, `crossing.*`
/// excluded — the same invariant projection E13 digests, summed across
/// shards.
fn merged_invariant_metrics_digest(
    fab: &ShardFabric,
    baselines: &[BTreeMap<String, u64>],
) -> String {
    let mut deltas: BTreeMap<String, u64> = BTreeMap::new();
    for (s, baseline) in baselines.iter().enumerate().take(fab.shard_count()) {
        if let Some(telemetry) = fab.shard(ShardId(s as u32)).telemetry_ref() {
            for (name, value) in telemetry.metrics().counters() {
                if name.starts_with("crossing.") {
                    continue;
                }
                let delta = value - baseline.get(name).copied().unwrap_or(0);
                if delta > 0 {
                    *deltas.entry(name.to_string()).or_default() += delta;
                }
            }
        }
    }
    let mut canon = String::new();
    for (name, delta) in &deltas {
        canon.push_str(&format!("{name}={delta}\n"));
    }
    Digest::of(canon.as_bytes()).short_hex()
}

/// Runs the deterministic two-shard sweep on the backend at `idx` in
/// the conformance pool.
fn run_backend(idx: usize) -> BackendScale {
    let mut fab = ShardFabric::new(vec![
        all_substrates().remove(idx),
        all_substrates().remove(idx),
    ]);
    let backend = fab.profile().name.clone();
    let baselines: Vec<_> = (0..fab.shard_count())
        .map(|s| counter_baseline(fab.shard(ShardId(s as u32))))
        .collect();

    // Per-shard service/client pairs, placement pinned by manifest.
    for s in 0..2u32 {
        fab.pin(&format!("e14-svc{s}"), ShardId(s));
        fab.pin(&format!("e14-client{s}"), ShardId(s));
    }
    let mut clients = Vec::new();
    let mut caps = Vec::new();
    for s in 0..2u32 {
        let svc = fab
            .spawn(DomainSpec::named(&format!("e14-svc{s}")), Box::new(Echo))
            .expect("spawn svc");
        let client = fab
            .spawn(DomainSpec::named(&format!("e14-client{s}")), Box::new(Echo))
            .expect("spawn client");
        let cap = fab.grant_channel(client, svc, Badge(14)).expect("grant");
        clients.push(client);
        caps.push(cap);
    }

    // Intra-shard half: E13's batched hot path, per shard.
    let payloads: Vec<Vec<u8>> = (0..SWEEP_CALLS_PER_SHARD)
        .map(|i| vec![i as u8; 16])
        .collect();
    let views: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
    for s in 0..2 {
        let replies = fab
            .invoke_batch(clients[s], &caps[s], &views)
            .expect("intra batch");
        assert_eq!(replies, payloads, "echo batch replies in order");
    }

    // Epoch barrier: everything below sorts after everything above in
    // the merged trace, on every shard.
    fab.advance_epoch();

    // Cross-shard half: grant, a fixed-size invocation burst, then a
    // revoked-cap refusal — all crossing the shard boundary from shard
    // 0. (Cross-shard seal/unseal is exercised per backend by
    // `testkit::parity::assert_cross_shard_crossing`; sealed-blob sizes
    // are backend-specific, so they stay out of the cross-backend
    // digest comparison here.)
    let svc1 = clients[1]; // shard 1's client doubles as a remote echo target
    let xcap = fab
        .grant_channel(clients[0], svc1, Badge(41))
        .expect("cross grant");
    for i in 0..SWEEP_CROSS_CALLS {
        let reply = fab
            .invoke(clients[0], &xcap, &[i as u8; 16])
            .expect("cross invoke");
        assert_eq!(reply, [i as u8; 16]);
    }
    fab.revoke_channel(&xcap).expect("cross revoke");
    assert!(
        fab.invoke(clients[0], &xcap, b"dead").is_err(),
        "revoked cross-shard cap must be refused"
    );

    let merged = fab.merged_trace();
    let cross_events: Vec<_> = merged
        .iter()
        .filter(|m| m.event.crossing.name() == "xshard")
        .collect();
    let cross_calls = cross_events.iter().filter(|m| m.event.cost > 0).count() as u64;
    let cross_ticks: u64 = cross_events.iter().map(|m| m.event.cost).sum();
    let intra_calls = (2 * SWEEP_CALLS_PER_SHARD) as u64;

    BackendScale {
        backend,
        intra_calls,
        cross_calls,
        cross_ticks_per_call: cross_ticks / cross_calls.max(1),
        merged_events: merged.len(),
        trace_digest: Digest::of(&fab.merged_trace_bytes()).short_hex(),
        invariant_digest: fab.merged_invariant_digest().short_hex(),
        metrics_digest: merged_invariant_metrics_digest(&fab, &baselines),
    }
}

/// Runs the deterministic sweep on all six backends.
pub fn run() -> Vec<BackendScale> {
    (0..all_substrates().len()).map(run_backend).collect()
}

/// One shard thread's wall-clock work: its own engine, its own
/// domains, `calls` batched echo invocations.
fn shard_thread_work(seed: usize, calls: usize) -> u64 {
    let payload = [0x14u8; 16];
    let mut sub = SoftwareSubstrate::new(&format!("e14-wall-{seed}"));
    let svc = sub
        .spawn(DomainSpec::named("e14-wall-svc"), Box::new(Echo))
        .expect("spawn svc");
    let client = sub
        .spawn(DomainSpec::named("e14-wall-client"), Box::new(Echo))
        .expect("spawn client");
    let cap = sub.grant_channel(client, svc, Badge(14)).expect("grant");
    let views: Vec<&[u8]> = vec![&payload; WALL_CLOCK_BATCH];
    let mut done = 0usize;
    while done < calls {
        let n = WALL_CLOCK_BATCH.min(calls - done);
        done += sub
            .invoke_batch(client, &cap, &views[..n])
            .expect("wall batch")
            .len();
    }
    done as u64
}

/// Measures aggregate invocations/sec with the same total work split
/// across `shards` engine threads (each thread constructs and owns its
/// own software engine — engines share nothing).
fn measure_shards(shards: usize) -> ScalePoint {
    let per_shard = WALL_CLOCK_CALLS / shards;
    let start = Instant::now();
    let total: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..shards)
            .map(|s| scope.spawn(move || shard_thread_work(s, per_shard)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread"))
            .sum()
    });
    let secs = start.elapsed().as_secs_f64();
    let per_sec = if secs > 0.0 {
        (total as f64 / secs) as u64
    } else {
        u64::MAX
    };
    ScalePoint {
        shards,
        calls: total as usize,
        per_sec,
    }
}

/// The shard counts the wall-clock sweep measures: 1, 2, 4, and the
/// host's core count (deduplicated, capped at 8 to keep CI stable).
#[must_use]
pub fn shard_counts() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut counts = vec![1, 2, 4, cores.min(8)];
    counts.sort_unstable();
    counts.dedup();
    counts.retain(|&n| n <= cores.max(1) || n <= 4);
    counts
}

/// Runs the wall-clock scaling sweep (software backend only).
#[must_use]
pub fn run_wall_clock() -> Vec<ScalePoint> {
    shard_counts().into_iter().map(measure_shards).collect()
}

/// Measures the bounded-inbox cross-shard round-trip rate: a client
/// thread posting into a server shard thread's [`ShardInbox`], one
/// blocking reply per call.
#[must_use]
pub fn run_wall_clock_cross() -> u64 {
    let (mut inboxes, post) = shard_channels(2, 64);
    let inbox1 = inboxes.pop().expect("two inboxes");
    drop(inboxes);
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut sub = SoftwareSubstrate::new("e14-xwall");
            let svc = sub
                .spawn(DomainSpec::named("e14-xwall-svc"), Box::new(Echo))
                .expect("spawn svc");
            let ingress = sub
                .spawn(DomainSpec::named("xshard-ingress"), Box::new(Echo))
                .expect("spawn ingress");
            let cap = sub.grant_channel(ingress, svc, Badge(1)).expect("grant");
            inbox1.serve(|_target, payload| sub.invoke(ingress, &cap, payload))
        });
        let payload = vec![0x14u8; 16];
        for _ in 0..CROSS_WALL_CALLS {
            post.call(ShardId(1), DomainId(0), payload.clone())
                .expect("cross call");
        }
        drop(post);
    });
    let secs = start.elapsed().as_secs_f64();
    if secs > 0.0 {
        (CROSS_WALL_CALLS as f64 / secs) as u64
    } else {
        u64::MAX
    }
}

fn group(n: u64) -> String {
    let digits: Vec<char> = n.to_string().chars().rev().collect();
    let mut out = String::new();
    for (i, d) in digits.iter().enumerate() {
        if i > 0 && i % 3 == 0 {
            out.push(',');
        }
        out.push(*d);
    }
    out.chars().rev().collect()
}

/// The machine-readable benchmark record `repro` writes to
/// `BENCH_E14.json`: one entry per shard count with aggregate
/// invocations/sec, plus the deterministic `xshard` ticks/call and the
/// E13 single-engine baseline for context.
#[must_use]
pub fn bench_json(points: &[ScalePoint], cross_per_sec: u64, cross_ticks_per_call: u64) -> String {
    let mut out = String::from("{\n  \"experiment\": \"e14\",\n  \"scaling\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"shards\": {}, \"invocations_per_sec\": {}, \"calls\": {} }}{}\n",
            p.shards,
            p.per_sec,
            p.calls,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"cross_shard_round_trips_per_sec\": {cross_per_sec},\n  \
         \"xshard_ticks_per_call\": {cross_ticks_per_call},\n  \
         \"e13_baseline_per_sec\": {PRE_PR_BASELINE_PER_SEC}\n}}\n"
    ));
    out
}

/// Renders the scaling report.
#[must_use]
pub fn report() -> String {
    report_and_json().0
}

/// Renders the scaling report together with the machine-readable
/// `BENCH_E14.json` payload, sharing one measurement run — the `repro`
/// driver writes the JSON next to the printed report.
#[must_use]
pub fn report_and_json() -> (String, String) {
    let results = run();
    let points = run_wall_clock();
    let cross_per_sec = run_wall_clock_cross();

    let mut rows = vec![vec![
        "backend".to_string(),
        "intra calls".to_string(),
        "cross calls".to_string(),
        "xshard ticks/call".to_string(),
        "merged events".to_string(),
        "merged-trace digest".to_string(),
        "invariant digest".to_string(),
        "metrics digest".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            b.intra_calls.to_string(),
            b.cross_calls.to_string(),
            b.cross_ticks_per_call.to_string(),
            b.merged_events.to_string(),
            b.trace_digest.clone(),
            b.invariant_digest.clone(),
            b.metrics_digest.clone(),
        ]);
    }
    let invariant = results
        .iter()
        .all(|b| b.invariant_digest == results[0].invariant_digest)
        && results
            .iter()
            .all(|b| b.metrics_digest == results[0].metrics_digest);

    let base = points.first().map_or(1, |p| p.per_sec.max(1));
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut wall = String::new();
    for p in &points {
        wall.push_str(&format!(
            "wall-clock   {} shard{}: {:>10} invocations/sec ({:.2}x one shard, {:.2}x E13 baseline)\n",
            p.shards,
            if p.shards == 1 { " " } else { "s" },
            group(p.per_sec),
            p.per_sec as f64 / base as f64,
            p.per_sec as f64 / PRE_PR_BASELINE_PER_SEC as f64,
        ));
    }
    wall.push_str(&format!(
        "wall-clock   cross-shard: {:>10} bounded-inbox round trips/sec\n",
        group(cross_per_sec)
    ));

    let ticks_per_call = results
        .first()
        .map_or_else(|| xshard_cost(16), |b| b.cross_ticks_per_call);
    let json = bench_json(&points, cross_per_sec, ticks_per_call);
    let report = format!(
        "E14 — shard scaling: per-core engines, explicit cross-shard crossings\n\n\
         {}\n\
         A two-shard fabric ran the mixed workload on same-seed instances\n\
         of each backend: {} intra-shard batched calls, an epoch barrier,\n\
         then {} cross-shard invocations and a revoked-cap refusal. The\n\
         xshard cost rung is identical on every backend by design\n\
         ({} ticks for a 16-byte call), and so are the merged-trace\n\
         invariant and metrics digests (backend-invariant: {}).\n\n\
         host-cores: {}\n\
         wall-clock scaling (software backend, {} total calls split across\n\
         N shard threads, each owning its own engine; wall-clock and\n\
         host-cores lines are excluded from the determinism compare):\n\
         {}",
        render(&rows),
        2 * SWEEP_CALLS_PER_SHARD,
        SWEEP_CROSS_CALLS,
        xshard_cost(16),
        if invariant { "yes" } else { "NO" },
        cores,
        group(WALL_CLOCK_CALLS as u64),
        wall,
    );
    (report, json)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_digests_are_backend_invariant() {
        let results = run();
        assert_eq!(results.len(), 6, "the sweep covers every backend");
        for b in &results {
            assert_eq!(
                b.invariant_digest, results[0].invariant_digest,
                "{}: merged-trace invariant digest must be backend-invariant",
                b.backend
            );
            assert_eq!(
                b.metrics_digest, results[0].metrics_digest,
                "{}: merged metrics digest must be backend-invariant",
                b.backend
            );
            assert_eq!(
                b.intra_calls,
                2 * SWEEP_CALLS_PER_SHARD as u64,
                "{}",
                b.backend
            );
            assert_eq!(b.cross_calls, SWEEP_CROSS_CALLS as u64, "{}", b.backend);
            assert_eq!(
                b.cross_ticks_per_call,
                xshard_cost(16),
                "{}: the xshard rung is backend-independent",
                b.backend
            );
        }
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let (a, b) = (run(), run());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.trace_digest, y.trace_digest,
                "{}: merged trace bytes must be run-invariant",
                x.backend
            );
        }
    }

    #[test]
    fn report_is_deterministic_modulo_wall_clock() {
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.contains("wall-clock") && !l.contains("host-cores"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let (a, b) = (report(), report());
        assert_eq!(
            strip(&a),
            strip(&b),
            "two runs must differ only on wall-clock and host-cores lines"
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let points = vec![
            ScalePoint {
                shards: 1,
                calls: 1000,
                per_sec: 2_000_000,
            },
            ScalePoint {
                shards: 2,
                calls: 1000,
                per_sec: 3_900_000,
            },
        ];
        let json = bench_json(&points, 150_000, xshard_cost(16));
        assert!(json.contains("\"experiment\": \"e14\""));
        assert!(json.contains("\"shards\": 2"));
        assert!(json.contains("\"e13_baseline_per_sec\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
