//! E10 — recovery under deterministic fault injection.
//!
//! The containment experiment (E1) shows a fault stays *inside* its
//! domain; this experiment shows the assembly comes *back*. A supervised
//! worker + sidekick pair runs on each of the six backends while a
//! [`FaultPlan`] injects crashes at precise logical-clock points. For
//! every (backend × fault plan) cell we measure how many invocations the
//! crash window lost and how many logical-clock ticks recovery took, and
//! we assert the successor's attestation evidence carries the *same*
//! measurement as the baseline recorded at composition — a restarted
//! impostor cannot slip back into the assembly.
//!
//! Every fault is injected from a deterministic plan and recorded in the
//! fabric trace, so the whole sweep — including the per-backend trace
//! digest printed at the bottom — is byte-identical across runs. The
//! `scripts/check.sh` determinism gate runs this experiment twice and
//! fails on any diff.

use lateral_core::composer::{ComponentFactory, Health};
use lateral_core::manifest::{AppManifest, ComponentManifest, RestartPolicy};
use lateral_core::supervisor::Supervisor;
use lateral_core::CoreError;
use lateral_crypto::Digest;
use lateral_substrate::component::Component;
use lateral_substrate::fault::{FaultPlan, FaultSpec};
use lateral_substrate::substrate::Substrate;
use lateral_substrate::testkit::Echo;

use crate::e2_conformance::all_substrates;
use crate::table::render;

/// Rounds of worker/sidekick traffic driven per scenario — enough to
/// cross every backoff window on every backend.
const ROUNDS: usize = 60;

/// One (backend × fault plan) measurement.
#[derive(Clone, Debug)]
pub struct ScenarioResult {
    /// Fault-plan name.
    pub scenario: &'static str,
    /// Worker invocations that returned `Unavailable` during the sweep.
    pub lost: u32,
    /// Logical-clock ticks from the first lost call to the first served
    /// call afterwards; `None` when the worker never recovered.
    pub ticks_to_recovery: Option<u64>,
    /// Restarts the supervisor performed.
    pub restarts: u32,
    /// Final assembly health.
    pub health: String,
    /// Whether post-restart attestation evidence matched the baseline
    /// (`match` / `n/a` for non-attesting or never-recovered cells).
    pub evidence: &'static str,
}

/// All scenario results for one backend, plus its fault-trace digest.
#[derive(Clone, Debug)]
pub struct BackendRecovery {
    /// Backend name (substrate profile).
    pub backend: String,
    /// One entry per fault plan in the sweep.
    pub scenarios: Vec<ScenarioResult>,
    /// Digest over the backend's full fabric trace byte-stream after the
    /// sweep — the determinism witness.
    pub trace_digest: String,
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
}

/// The fault-plan sweep: a transient crash that recovers, a crash whose
/// first respawn is also injected to fail, and a permanent crash that
/// exhausts the budget and quarantines.
fn sweep() -> Vec<(&'static str, FaultPlan, RestartPolicy)> {
    vec![
        (
            "transient-crash",
            FaultPlan::new().with(FaultSpec::crash("worker", 2)),
            RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 20,
            },
        ),
        (
            "crash+spawn-fail",
            FaultPlan::new()
                .with(FaultSpec::crash("worker", 1))
                .with(FaultSpec::fail_spawn("worker", 1)),
            RestartPolicy::Restart {
                max_restarts: 3,
                backoff_base: 10,
            },
        ),
        (
            "permanent-crash",
            FaultPlan::new().with(FaultSpec::crash("worker", 1).permanent()),
            RestartPolicy::Restart {
                max_restarts: 2,
                backoff_base: 10,
            },
        ),
    ]
}

/// Runs one fault plan against one fresh backend; returns the
/// measurement and the backend's trace bytes.
fn run_one(
    sub: Box<dyn Substrate>,
    scenario: &'static str,
    plan: FaultPlan,
    policy: RestartPolicy,
) -> (ScenarioResult, Vec<u8>) {
    let app = AppManifest::new(
        "e10",
        vec![
            ComponentManifest::new("worker").restart(policy),
            ComponentManifest::new("sidekick"),
        ],
    );
    let mut sup = Supervisor::new(app, vec![sub], factory()).expect("compose e10 app");
    let baseline = sup
        .baseline_measurement("worker")
        .expect("baseline recorded");
    sup.assembly_mut()
        .substrate_mut(0)
        .fabric_mut_ref()
        .expect("every backend routes through the fabric")
        .install_fault_plan(plan);

    let mut lost = 0u32;
    let mut crash_tick: Option<u64> = None;
    let mut recovered_tick: Option<u64> = None;
    for _ in 0..ROUNDS {
        let now = sup.assembly_mut().substrate_mut(0).now();
        match sup.call("worker", b"ping") {
            Ok(_) => {
                if crash_tick.is_some() && recovered_tick.is_none() {
                    recovered_tick = Some(now);
                }
            }
            Err(CoreError::Unavailable(_)) => {
                lost += 1;
                if crash_tick.is_none() {
                    crash_tick = Some(now);
                }
            }
            Err(e) => panic!("unexpected error on {scenario}: {e}"),
        }
        // Sidekick traffic keeps the logical clock advancing through the
        // backoff window, as unrelated components would in production.
        sup.call("sidekick", b"tick").expect("sidekick stays up");
    }

    // A recovered worker must present evidence carrying the baseline
    // measurement (None on non-attesting substrates — that is `n/a`,
    // not a failure; the supervisor still re-measured the successor).
    let evidence = if recovered_tick.is_some() {
        match sup.evidence("worker") {
            Some(ev) => {
                assert_eq!(
                    ev.measurement, baseline,
                    "recovered evidence must match the baseline measurement"
                );
                "match"
            }
            None => "n/a",
        }
    } else {
        "n/a"
    };
    let result = ScenarioResult {
        scenario,
        lost,
        ticks_to_recovery: match (crash_tick, recovered_tick) {
            (Some(c), Some(r)) => Some(r.saturating_sub(c)),
            _ => None,
        },
        restarts: sup.restarts("worker"),
        health: match sup.health() {
            Health::Healthy => "healthy".to_string(),
            Health::Degraded(names) => format!("degraded({})", names.join(",")),
            Health::Failed => "failed".to_string(),
        },
        evidence,
    };
    let trace = sup
        .assembly_mut()
        .substrate_mut(0)
        .fabric_ref()
        .expect("fabric present")
        .trace_bytes();
    (result, trace)
}

/// Runs the full sweep on all six backends.
pub fn run() -> Vec<BackendRecovery> {
    let backend_count = all_substrates().len();
    let mut out = Vec::new();
    for idx in 0..backend_count {
        let mut scenarios = Vec::new();
        let mut trace = Vec::new();
        let mut backend = String::new();
        for (scenario, plan, policy) in sweep() {
            // Each scenario gets a fresh backend instance so fault
            // counters and logical clocks start from zero.
            let sub = all_substrates().remove(idx);
            backend = sub.profile().name.clone();
            let (result, t) = run_one(sub, scenario, plan, policy);
            scenarios.push(result);
            trace.extend_from_slice(&t);
        }
        out.push(BackendRecovery {
            backend,
            scenarios,
            trace_digest: Digest::of(&trace).short_hex(),
        });
    }
    out
}

/// Renders the recovery matrix.
pub fn report() -> String {
    let results = run();
    let mut rows = vec![vec![
        "backend".to_string(),
        "fault plan".to_string(),
        "lost".to_string(),
        "ticks to recovery".to_string(),
        "restarts".to_string(),
        "health".to_string(),
        "evidence".to_string(),
    ]];
    for b in &results {
        for s in &b.scenarios {
            rows.push(vec![
                b.backend.clone(),
                s.scenario.to_string(),
                s.lost.to_string(),
                s.ticks_to_recovery
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string()),
                s.restarts.to_string(),
                s.health.clone(),
                s.evidence.to_string(),
            ]);
        }
    }
    let mut digests = vec![vec![
        "backend".to_string(),
        "fault-trace digest".to_string(),
    ]];
    for b in &results {
        digests.push(vec![b.backend.clone(), b.trace_digest.clone()]);
    }
    format!(
        "E10 — recovery under deterministic fault injection\n\n{}\n\
         Transient crashes recover within the declared backoff window and\n\
         re-attest to the baseline measurement; permanent crashes exhaust\n\
         their restart budget and quarantine while the sidekick keeps\n\
         serving. Injected faults are part of the fabric trace:\n\n{}",
        render(&rows),
        render(&digests)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_crash_recovers_on_every_backend() {
        for b in run() {
            let s = &b.scenarios[0];
            assert_eq!(s.scenario, "transient-crash");
            assert!(
                s.ticks_to_recovery.is_some(),
                "{}: transient crash must recover",
                b.backend
            );
            assert_eq!(s.restarts, 1, "{}", b.backend);
            assert_eq!(s.health, "healthy", "{}", b.backend);
            assert!(
                s.lost >= 1,
                "{}: the crash loses at least one call",
                b.backend
            );
        }
    }

    #[test]
    fn permanent_crash_quarantines_on_every_backend() {
        for b in run() {
            let s = &b.scenarios[2];
            assert_eq!(s.scenario, "permanent-crash");
            assert_eq!(s.ticks_to_recovery, None, "{}", b.backend);
            assert_eq!(s.health, "degraded(worker)", "{}", b.backend);
            assert_eq!(s.restarts, 2, "{}: budget fully spent", b.backend);
        }
    }

    #[test]
    fn attesting_backends_reattest_to_baseline() {
        for b in run() {
            let s = &b.scenarios[0];
            if b.backend == "software" {
                assert_eq!(s.evidence, "n/a", "software cannot attest");
            } else {
                assert_eq!(
                    s.evidence, "match",
                    "{}: recovered evidence must match baseline",
                    b.backend
                );
            }
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let (a, b) = (report(), report());
        assert_eq!(a, b, "two identical runs must be byte-identical");
    }
}
