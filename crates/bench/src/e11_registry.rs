//! E11 — registry admission and revocation sweep.
//!
//! The component registry (PR 3) turns composition into an *admission*
//! decision: images are content-addressed, certified by a static pass
//! pipeline (publisher chain, POLA lint, TCB budget), and served only
//! while neither uncertified nor revoked. This experiment drives the
//! whole admission state machine on every backend:
//!
//! * **composition** — a certified app is admitted; uncertified,
//!   unknown, and revoked images are refused with a diagnosis;
//! * **caching** — repeated composition of the same app answers
//!   certification from the verdict cache (hit ratio > 0);
//! * **revocation** — revoking a *running* component's digest
//!   quarantines the instance within a bounded number of supervision
//!   ticks, and a crashed component whose image was revoked while down
//!   is refused at respawn without burning restart budget.
//!
//! Every registry operation lands in the registry's deterministic
//! trace; the per-backend trace digest printed at the bottom is the
//! determinism witness for the `scripts/check.sh` run-twice gate.

use lateral_core::composer::{compose_admitted, ComponentFactory, Health};
use lateral_core::manifest::{AppManifest, ComponentManifest, RestartPolicy};
use lateral_core::supervisor::Supervisor;
use lateral_core::CoreError;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_registry::{measurement_of, ManifestDraft, Registry};
use lateral_substrate::component::Component;
use lateral_substrate::fault::{FaultPlan, FaultSpec};
use lateral_substrate::testkit::Echo;

use crate::e2_conformance::all_substrates;
use crate::table::render;

const WORKER_IMAGE: &[u8] = b"e11 worker v1";
const SIDEKICK_IMAGE: &[u8] = b"e11 sidekick v1";
const ROGUE_IMAGE: &[u8] = b"e11 rogue build";
const VICTIM_IMAGE: &[u8] = b"e11 victim v1";

/// Compositions of the certified app per backend — the repeats that
/// exercise the verdict cache.
const COMPOSE_REPEATS: usize = 4;

/// Upper bound on supervision ticks allowed between revocation and
/// quarantine before the cell is reported as `None` (never quarantined).
const TICK_BOUND: u64 = 8;

/// Rounds of driven traffic in the respawn-refusal scenario.
const ROUNDS: usize = 40;

/// One backend's admission measurements.
#[derive(Clone, Debug)]
pub struct BackendAdmission {
    /// Backend name (substrate profile).
    pub backend: String,
    /// Certified app: all [`COMPOSE_REPEATS`] compositions admitted.
    pub certified_admitted: bool,
    /// Uncertified (untrusted publisher) image refused at composition.
    pub uncertified_refused: bool,
    /// Unknown component refused at composition.
    pub unknown_refused: bool,
    /// Revoked image refused at composition.
    pub revoked_refused: bool,
    /// Crashed-then-revoked image refused at respawn with zero restarts
    /// burned and the component quarantined.
    pub respawn_refused: bool,
    /// Verdict-cache hits across the composition phase.
    pub cache_hits: u64,
    /// Verdict-cache misses across the composition phase.
    pub cache_misses: u64,
    /// Supervision ticks from revocation to quarantine of the running
    /// instance; `None` if it never quarantined within [`TICK_BOUND`].
    pub revoke_to_quarantine_ticks: Option<u64>,
    /// Digest over every registry trace byte-stream this backend's
    /// sweep produced — the determinism witness.
    pub trace_digest: String,
}

impl BackendAdmission {
    /// Cache hits as an integer percentage of certification requests.
    pub fn hit_ratio_pct(&self) -> u64 {
        let total = self.cache_hits + self.cache_misses;
        (self.cache_hits * 100).checked_div(total).unwrap_or(0)
    }
}

fn factory() -> Box<dyn ComponentFactory> {
    Box::new(|_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>))
}

/// A registry holding the sweep's images: worker/sidekick/victim from
/// the trusted publisher, rogue from a stranger (fails the publisher
/// -chain pass).
fn seeded_registry(name: &str) -> Registry {
    let publisher = SigningKey::from_seed(b"e11 publisher");
    let stranger = SigningKey::from_seed(b"e11 stranger");
    let mut reg = Registry::new(name);
    reg.trust_root(&publisher.verifying_key());
    for (component, image) in [
        ("worker", WORKER_IMAGE),
        ("sidekick", SIDEKICK_IMAGE),
        ("victim", VICTIM_IMAGE),
    ] {
        reg.publish(
            image,
            ManifestDraft::new(component, image).sign(&publisher, None),
        )
        .expect("publish");
    }
    reg.publish(
        ROGUE_IMAGE,
        ManifestDraft::new("rogue", ROGUE_IMAGE).sign(&stranger, None),
    )
    .expect("rogue publishes; certification is what fails");
    reg
}

fn certified_app() -> AppManifest {
    AppManifest::new(
        "e11",
        vec![
            ComponentManifest::new("worker")
                .image(WORKER_IMAGE)
                .restart(RestartPolicy::Restart {
                    max_restarts: 3,
                    backoff_base: 10,
                }),
            ComponentManifest::new("sidekick").image(SIDEKICK_IMAGE),
        ],
    )
}

fn single(name: &str, image: &[u8]) -> AppManifest {
    AppManifest::new(
        "e11-single",
        vec![ComponentManifest::new(name).image(image)],
    )
}

fn refused(result: Result<lateral_core::composer::Assembly, CoreError>) -> bool {
    matches!(result, Err(CoreError::AdmissionRefused { .. }))
}

/// Runs the sweep for the backend at `idx` in the conformance pool.
fn run_backend(idx: usize) -> BackendAdmission {
    let mut factory_fn = |_: &ComponentManifest| Some(Box::new(Echo) as Box<dyn Component>);
    let mut trace = Vec::new();

    // --- composition admission + verdict cache -------------------------
    let mut registry = seeded_registry("e11-compose");
    let mut backend = String::new();
    let mut certified_admitted = true;
    for _ in 0..COMPOSE_REPEATS {
        let sub = all_substrates().remove(idx);
        backend = sub.profile().name.clone();
        certified_admitted &=
            compose_admitted(&certified_app(), vec![sub], &mut factory_fn, &mut registry).is_ok();
    }
    let uncertified_refused = refused(compose_admitted(
        &single("rogue", ROGUE_IMAGE),
        vec![all_substrates().remove(idx)],
        &mut factory_fn,
        &mut registry,
    ));
    let unknown_refused = refused(compose_admitted(
        &single("ghost", b"e11 ghost"),
        vec![all_substrates().remove(idx)],
        &mut factory_fn,
        &mut registry,
    ));
    registry
        .revoke(measurement_of(VICTIM_IMAGE), "e11 revocation")
        .expect("victim is published");
    let revoked_refused = refused(compose_admitted(
        &single("victim", VICTIM_IMAGE),
        vec![all_substrates().remove(idx)],
        &mut factory_fn,
        &mut registry,
    ));
    let stats = registry.stats().clone();
    trace.extend_from_slice(&registry.trace_bytes());

    // --- revocation of a running instance: ticks to quarantine ---------
    let mut sup = Supervisor::new_admitted(
        certified_app(),
        vec![all_substrates().remove(idx)],
        factory(),
        seeded_registry("e11-tick"),
    )
    .expect("certified app composes");
    sup.call("worker", b"ping").expect("worker serves");
    sup.registry_mut()
        .expect("admitted supervisor holds the registry")
        .revoke(measurement_of(WORKER_IMAGE), "e11 live revocation")
        .expect("worker is published");
    let mut revoke_to_quarantine_ticks = None;
    for t in 1..=TICK_BOUND {
        let quarantined = sup.tick();
        if quarantined.contains(&"worker".to_string()) {
            revoke_to_quarantine_ticks = Some(t);
            break;
        }
    }
    let tick_degraded = sup.health() == Health::Degraded(vec!["worker".to_string()])
        && sup.call("sidekick", b"x").is_ok();
    trace.extend_from_slice(&sup.registry().expect("registry present").trace_bytes());

    // --- revocation while crashed: respawn refused ----------------------
    let mut sup = Supervisor::new_admitted(
        certified_app(),
        vec![all_substrates().remove(idx)],
        factory(),
        seeded_registry("e11-respawn"),
    )
    .expect("certified app composes");
    sup.assembly_mut()
        .substrate_mut(0)
        .fabric_mut_ref()
        .expect("every backend routes through the fabric")
        .install_fault_plan(FaultPlan::new().with(FaultSpec::crash("worker", 2)));
    sup.call("worker", b"ping").expect("first call serves");
    let _ = sup.call("worker", b"boom"); // injected crash
    sup.registry_mut()
        .expect("registry present")
        .revoke(measurement_of(WORKER_IMAGE), "e11 revoked while down")
        .expect("worker is published");
    let mut served_after_revocation = 0u32;
    for _ in 0..ROUNDS {
        if sup.call("worker", b"ping").is_ok() {
            served_after_revocation += 1;
        }
        // Sidekick traffic advances the logical clock through the
        // backoff window so the respawn attempt actually fires.
        sup.call("sidekick", b"tick").expect("sidekick stays up");
    }
    let respawn_refused =
        served_after_revocation == 0 && sup.is_quarantined("worker") && sup.restarts("worker") == 0;
    trace.extend_from_slice(&sup.registry().expect("registry present").trace_bytes());

    BackendAdmission {
        backend,
        certified_admitted,
        uncertified_refused,
        unknown_refused,
        revoked_refused,
        respawn_refused,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        revoke_to_quarantine_ticks: revoke_to_quarantine_ticks.filter(|_| tick_degraded),
        trace_digest: Digest::of(&trace).short_hex(),
    }
}

/// Runs the full admission sweep on all six backends.
pub fn run() -> Vec<BackendAdmission> {
    (0..all_substrates().len()).map(run_backend).collect()
}

fn mark(ok: bool) -> &'static str {
    if ok {
        "yes"
    } else {
        "NO"
    }
}

/// Renders the admission matrix.
pub fn report() -> String {
    let results = run();
    let mut rows = vec![vec![
        "backend".to_string(),
        "certified".to_string(),
        "uncertified".to_string(),
        "unknown".to_string(),
        "revoked".to_string(),
        "respawn".to_string(),
        "cache h/m".to_string(),
        "hit %".to_string(),
        "revoke→quarantine".to_string(),
    ]];
    for b in &results {
        rows.push(vec![
            b.backend.clone(),
            format!("admitted:{}", mark(b.certified_admitted)),
            format!("refused:{}", mark(b.uncertified_refused)),
            format!("refused:{}", mark(b.unknown_refused)),
            format!("refused:{}", mark(b.revoked_refused)),
            format!("refused:{}", mark(b.respawn_refused)),
            format!("{}/{}", b.cache_hits, b.cache_misses),
            b.hit_ratio_pct().to_string(),
            b.revoke_to_quarantine_ticks
                .map(|t| format!("{t} tick(s)"))
                .unwrap_or_else(|| "-".to_string()),
        ]);
    }
    let mut digests = vec![vec![
        "backend".to_string(),
        "registry-trace digest".to_string(),
    ]];
    for b in &results {
        digests.push(vec![b.backend.clone(), b.trace_digest.clone()]);
    }
    format!(
        "E11 — registry admission and revocation sweep\n\n{}\n\
         Certified images are admitted on every backend; uncertified,\n\
         unknown, and revoked ones are refused at composition, and a\n\
         revoked image is refused again at supervised respawn without\n\
         burning restart budget. Repeated composition answers from the\n\
         verdict cache, and revoking a running instance quarantines it\n\
         on the next supervision tick. Registry traces:\n\n{}",
        render(&rows),
        render(&digests)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_outcomes_hold_on_every_backend() {
        let results = run();
        assert_eq!(results.len(), 6, "the sweep covers every backend");
        for b in &results {
            assert!(b.certified_admitted, "{}: certified admitted", b.backend);
            assert!(b.uncertified_refused, "{}: uncertified refused", b.backend);
            assert!(b.unknown_refused, "{}: unknown refused", b.backend);
            assert!(b.revoked_refused, "{}: revoked refused", b.backend);
            assert!(b.respawn_refused, "{}: respawn refused", b.backend);
        }
    }

    #[test]
    fn repeated_composition_hits_the_verdict_cache() {
        for b in run() {
            assert!(
                b.cache_hits > 0,
                "{}: repeated composition must hit the cache",
                b.backend
            );
            assert!(b.hit_ratio_pct() > 0, "{}", b.backend);
        }
    }

    #[test]
    fn revocation_quarantines_within_one_tick() {
        for b in run() {
            assert_eq!(
                b.revoke_to_quarantine_ticks,
                Some(1),
                "{}: the next health tick quarantines",
                b.backend
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let (a, b) = (report(), report());
        assert_eq!(a, b, "two identical runs must be byte-identical");
    }
}
