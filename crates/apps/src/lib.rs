//! The paper's worked scenarios, built end to end.
//!
//! * [`email`] — the email client of §III-C, in both architectures of
//!   Figure 1: the *vertical* monolith (one legacy domain bundling IMAP,
//!   TLS, HTML, address book, storage — and every asset), and the
//!   *horizontal* decomposition into mutually isolated components. The
//!   E1/E7 experiments compromise each subsystem in turn and compare
//!   blast radius and per-asset TCB.
//! * [`mail_world`] — the horizontal client fetching real (simulated)
//!   mail end to end: TLS component ↔ adversarial network ↔ hostile mail
//!   server, with parser compromises contained in their domains.
//! * [`smart_meter`] — the distributed smart-meter scenario of Figure 3:
//!   a meter appliance (microkernel hosting the legacy Android UI and
//!   the gateway; TrustZone hosting the attested meter agent) talking to
//!   a utility server (SGX enclave hosting the anonymizer frontend, an
//!   untrusted host database) across an adversarial network, with mutual
//!   channel-bound attestation.
//! * [`fleet`] — the smart-meter scenario at fleet scale: N simulated
//!   meters shipping sealed reading batches through per-shard
//!   concentrators into a sharded aggregation fabric, with bounded
//!   ingest queues (explicit backpressure), deterministic churn (crash
//!   waves, firmware recalls) and deadline-aware WAN retry. The E15
//!   experiment gates its robustness invariants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod email;
pub mod fleet;
pub mod mail_world;
pub mod smart_meter;
