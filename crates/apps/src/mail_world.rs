//! The email client fetching real (simulated) mail end to end.
//!
//! §III-C's decomposition is only convincing if the pieces still *work
//! together*: here the composed horizontal client talks to a mail server
//! across the adversarial network — the TLS component owns the handshake
//! and all record cryptography, the IMAP engine parses the (hostile)
//! server responses, the renderer parses the (hostile) bodies, and the
//! mail store persists them via VPFS. The driving glue below only ever
//! moves opaque bytes; it could not read the traffic or the credentials
//! if it wanted to.

use lateral_core::CoreError;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_net::channel::{ChannelPolicy, SecureChannel, ServerHandshake};
use lateral_net::sim::Network;
use lateral_net::Addr;
use lateral_substrate::cap::Badge;
use lateral_substrate::substrate::Substrate;

use crate::email::HorizontalEmail;

/// Canned inbox: (from, subject, HTML body).
pub const INBOX: [(&str, &str, &str); 2] = [
    (
        "alice@example.org",
        "lunch?",
        "<p>Dear <b>user</b>, lunch at <i>noon</i>?</p>",
    ),
    (
        "bob@example.org",
        "photos",
        "<p>See <a href=\"http://x\">the album</a> <img src=\"1.png\"></p>",
    ),
];

/// What the toy mail server does to its client.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServerBehavior {
    /// Serves the canned inbox faithfully.
    Honest,
    /// Injects the IMAP parser exploit into the FETCH response.
    ExploitImap,
    /// Serves bodies carrying the HTML renderer exploit.
    ExploitHtml,
}

enum ServerState {
    Idle,
    Awaiting(lateral_net::channel::ServerAwaitFinish),
    Established(Box<SecureChannel>),
}

/// A toy IMAP-over-secure-channel server.
pub struct ToyMailServer {
    identity: SigningKey,
    behavior: ServerBehavior,
    state: ServerState,
    rng: Drbg,
}

impl std::fmt::Debug for ToyMailServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ToyMailServer({:?})", self.behavior)
    }
}

impl ToyMailServer {
    /// Creates the server with a stable identity key.
    pub fn new(behavior: ServerBehavior) -> ToyMailServer {
        ToyMailServer {
            identity: SigningKey::from_seed(b"mail.example identity"),
            behavior,
            state: ServerState::Idle,
            rng: Drbg::from_seed(b"mail server rng"),
        }
    }

    /// The key honest clients pin.
    pub fn public_identity() -> lateral_crypto::sign::VerifyingKey {
        SigningKey::from_seed(b"mail.example identity").verifying_key()
    }

    fn serve(&self, request: &str) -> String {
        match (request, self.behavior) {
            ("FETCH", ServerBehavior::ExploitImap) => format!(
                "* 1 FETCH (FROM \"{}\" SUBJECT \"pwn\")",
                lateral_components::imap::IMAP_EXPLOIT
            ),
            ("FETCH", _) => INBOX
                .iter()
                .enumerate()
                .map(|(i, (from, subject, _))| {
                    format!("* {} FETCH (FROM \"{from}\" SUBJECT \"{subject}\")", i + 1)
                })
                .collect::<Vec<_>>()
                .join("\n"),
            (body_req, behavior) if body_req.starts_with("BODY ") => {
                if behavior == ServerBehavior::ExploitHtml {
                    return format!(
                        "<p>You won!</p><script>{}</script>",
                        lateral_components::html::EXPLOIT_MARKER
                    );
                }
                let seq: usize = body_req[5..].parse().unwrap_or(0);
                INBOX
                    .get(seq.wrapping_sub(1))
                    .map(|(_, _, body)| body.to_string())
                    .unwrap_or_else(|| "NO such message".to_string())
            }
            _ => "BAD command".to_string(),
        }
    }

    /// Handles one inbound wire message, returning the reply bytes.
    pub fn handle(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        let (kind, body) = payload.split_first()?;
        match (kind, std::mem::replace(&mut self.state, ServerState::Idle)) {
            (0, _) => {
                // ClientHello.
                let pending = ServerHandshake::accept(&self.identity, &mut self.rng, body).ok()?;
                let (awaiting, server_hello) = pending.respond(None, body);
                self.state = ServerState::Awaiting(awaiting);
                Some([&[1u8][..], &server_hello].concat())
            }
            (2, ServerState::Awaiting(awaiting)) => {
                let (channel, _peer) = awaiting.complete(body, &ChannelPolicy::open()).ok()?;
                self.state = ServerState::Established(Box::new(channel));
                Some(vec![3u8]) // connected ack
            }
            (4, ServerState::Established(mut channel)) => {
                let request = channel.open(body).ok()?;
                let request = String::from_utf8_lossy(&request).into_owned();
                let reply = self.serve(&request);
                let record = channel.seal(reply.as_bytes());
                self.state = ServerState::Established(channel);
                Some([&[5u8][..], &record].concat())
            }
            (_, state) => {
                self.state = state;
                None
            }
        }
    }
}

/// A fetched, rendered mail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RenderedMail {
    /// Sender.
    pub from: String,
    /// Subject.
    pub subject: String,
    /// Renderer output for the body.
    pub rendered: String,
}

/// The whole world: composed horizontal client + network + mail server.
pub struct MailWorld {
    /// The composed email client.
    pub app: HorizontalEmail,
    /// The adversarial network.
    pub network: Network,
    /// The remote mail server.
    pub server: ToyMailServer,
    client_addr: Addr,
    server_addr: Addr,
}

impl std::fmt::Debug for MailWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MailWorld({:?})", self.server)
    }
}

impl MailWorld {
    /// Builds the world over `substrates`.
    ///
    /// # Errors
    ///
    /// Composition failures.
    pub fn build(
        substrates: Vec<Box<dyn Substrate>>,
        behavior: ServerBehavior,
    ) -> Result<MailWorld, CoreError> {
        let app = HorizontalEmail::build(substrates)?;
        let mut network = Network::new("mail-world");
        let client_addr = Addr::new("laptop.example");
        let server_addr = Addr::new("mail.example");
        network.register(client_addr.clone());
        network.register(server_addr.clone());
        Ok(MailWorld {
            app,
            network,
            server: ToyMailServer::new(behavior),
            client_addr,
            server_addr,
        })
    }

    /// Invokes the TLS component (the only holder of channel secrets).
    fn tls(&mut self, request: &[u8]) -> Result<Vec<u8>, CoreError> {
        self.app
            .assembly
            .call_component_badged("tls", Badge(0x715), request)
    }

    /// One message to the server and back (the glue sees ciphertext only).
    fn round_trip(&mut self, wire: &[u8]) -> Result<Vec<u8>, CoreError> {
        self.network
            .send(&self.client_addr.clone(), &self.server_addr.clone(), wire)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let Some(packet) = self
            .network
            .recv(&self.server_addr.clone())
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Err(CoreError::Substrate("request lost in transit".into()));
        };
        let Some(reply) = self.server.handle(&packet.payload) else {
            return Err(CoreError::Substrate("server dropped the request".into()));
        };
        self.network
            .send(&self.server_addr.clone(), &self.client_addr.clone(), &reply)
            .map_err(|e| CoreError::Substrate(e.to_string()))?;
        let Some(packet) = self
            .network
            .recv(&self.client_addr.clone())
            .map_err(|e| CoreError::Substrate(e.to_string()))?
        else {
            return Err(CoreError::Substrate("reply lost in transit".into()));
        };
        Ok(packet.payload)
    }

    /// Establishes the secure session: the TLS component runs the
    /// handshake; this glue only ferries opaque bytes.
    ///
    /// # Errors
    ///
    /// Handshake failures (pinning, signatures) surface from the TLS
    /// component.
    pub fn connect(&mut self) -> Result<(), CoreError> {
        let hello = self.tls(b"hello:")?;
        let server_hello = self.round_trip(&[&[0u8][..], &hello].concat())?;
        if server_hello.first() != Some(&1) {
            return Err(CoreError::Substrate("bad server hello frame".into()));
        }
        let finish = self.tls(&[b"complete:".as_slice(), &server_hello[1..]].concat())?;
        let ack = self.round_trip(&[&[2u8][..], &finish].concat())?;
        if ack.first() == Some(&3) {
            Ok(())
        } else {
            Err(CoreError::Substrate("handshake not acknowledged".into()))
        }
    }

    /// Issues one application request over the established channel.
    fn request(&mut self, command: &str) -> Result<String, CoreError> {
        let record = self.tls(&[b"send:".as_slice(), command.as_bytes()].concat())?;
        let reply = self.round_trip(&[&[4u8][..], &record].concat())?;
        if reply.first() != Some(&5) {
            return Err(CoreError::Substrate("bad reply frame".into()));
        }
        let plain = self.tls(&[b"recv:".as_slice(), &reply[1..]].concat())?;
        Ok(String::from_utf8_lossy(&plain).into_owned())
    }

    /// The full §III-C pipeline: fetch headers, parse them in the IMAP
    /// engine, fetch each body, render it, archive it in the mail store.
    ///
    /// # Errors
    ///
    /// Transport failures; *parser compromises do not error* — they are
    /// contained and visible via the attack reports instead.
    pub fn fetch_inbox(&mut self) -> Result<Vec<RenderedMail>, CoreError> {
        let fetch_response = self.request("FETCH")?;
        let parsed = self.app.assembly.call_component(
            "imap-engine",
            &[b"parse:".as_slice(), fetch_response.as_bytes()].concat(),
        )?;
        let parsed = String::from_utf8_lossy(&parsed).into_owned();
        let mut out = Vec::new();
        for line in parsed.lines().filter(|l| !l.trim().is_empty()) {
            let mut parts = line.splitn(3, '|');
            let (Some(seq), Some(from), Some(subject)) = (parts.next(), parts.next(), parts.next())
            else {
                continue; // compromised engine output — skip, don't trust
            };
            let body = self.request(&format!("BODY {seq}"))?;
            let rendered = self
                .app
                .assembly
                .call_component("html-renderer", body.as_bytes())?;
            let rendered = String::from_utf8_lossy(&rendered).into_owned();
            self.app.assembly.call_component_badged(
                "mail-store",
                Badge(0xE4F),
                format!("put:user=env;{from}: {subject}").as_bytes(),
            )?;
            out.push(RenderedMail {
                from: from.to_string(),
                subject: subject.to_string(),
                rendered,
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_components::compromise::{AttackReport, REPORT_QUERY};
    use lateral_substrate::software::SoftwareSubstrate;

    fn pool() -> Vec<Box<dyn Substrate>> {
        vec![Box::new(SoftwareSubstrate::new("mail-world"))]
    }

    fn report(world: &mut MailWorld, component: &str) -> AttackReport {
        let raw = world
            .app
            .assembly
            .call_component(component, REPORT_QUERY)
            .unwrap();
        AttackReport::decode(&raw).unwrap()
    }

    #[test]
    fn honest_server_full_pipeline() {
        let mut world = MailWorld::build(pool(), ServerBehavior::Honest).unwrap();
        world.connect().unwrap();
        let mails = world.fetch_inbox().unwrap();
        assert_eq!(mails.len(), 2);
        assert_eq!(mails[0].from, "alice@example.org");
        assert!(mails[0].rendered.contains("lunch at noon"));
        assert!(mails[1].rendered.contains("images=1"));
        // Archived via the badge-demuxed store.
        let count = world
            .app
            .assembly
            .call_component_badged("mail-store", Badge(0xE4F), b"list:user=env;")
            .unwrap();
        assert_eq!(count, b"2");
        // The network adversary recorded everything — and saw no mail.
        assert!(!world
            .network
            .recorded()
            .iter()
            .any(|p| p.payload.windows(5).any(|w| w == b"lunch")));
    }

    #[test]
    fn hostile_imap_server_is_contained_in_the_engine() {
        let mut world = MailWorld::build(pool(), ServerBehavior::ExploitImap).unwrap();
        world.connect().unwrap();
        let mails = world.fetch_inbox().unwrap();
        // The compromised engine produced garbage the UI skipped.
        assert!(mails.is_empty());
        let r = report(&mut world, "imap-engine");
        assert!(r.active, "engine was exploited");
        assert!(r.contained(), "engine stayed contained: {r:?}");
        // TLS secrets live on: a fresh request still works.
        assert!(world.request("FETCH").is_ok());
    }

    #[test]
    fn hostile_html_bodies_are_contained_in_the_renderer() {
        let mut world = MailWorld::build(pool(), ServerBehavior::ExploitHtml).unwrap();
        world.connect().unwrap();
        let mails = world.fetch_inbox().unwrap();
        assert_eq!(mails.len(), 2, "headers were honest; bodies were not");
        let r = report(&mut world, "html-renderer");
        assert!(r.active, "renderer was exploited");
        assert!(r.contained(), "renderer stayed contained: {r:?}");
        // The mail archive is intact despite the renderer compromise.
        let first = world
            .app
            .assembly
            .call_component_badged("mail-store", Badge(0xE4F), b"get:user=env;0")
            .unwrap();
        assert_eq!(first, b"alice@example.org: lunch?");
    }

    #[test]
    fn mitm_with_wrong_identity_is_rejected_by_the_tls_component() {
        // Swap the server for one with a different identity; the TLS
        // component in this build pins nothing (ChannelPolicy::open), so
        // emulate the pin by checking the peer key after connect.
        let mut world = MailWorld::build(pool(), ServerBehavior::Honest).unwrap();
        world.server = ToyMailServer {
            identity: SigningKey::from_seed(b"mallory"),
            behavior: ServerBehavior::Honest,
            state: ServerState::Idle,
            rng: Drbg::from_seed(b"mallory rng"),
        };
        world.connect().unwrap();
        let peer_hex = world.tls(b"peer:").unwrap();
        let expected: String = ToyMailServer::public_identity()
            .to_bytes()
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect();
        assert_ne!(
            String::from_utf8(peer_hex).unwrap(),
            expected,
            "certificate check exposes the imposter"
        );
    }
}
