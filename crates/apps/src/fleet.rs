//! Fleet-scale smart metering: N simulated meters, a sharded
//! anonymizer/aggregation pipeline, and deterministic chaos.
//!
//! [`smart_meter`](crate::smart_meter) reproduces Figure 3 at its
//! natural scale — one meter, one utility server. The ROADMAP
//! north-star is *production* scale, and this module is the world that
//! gets there: a configurable fleet (stress runs use ≥100k meters)
//! whose readings funnel through per-shard concentrators, cross an
//! adversarial WAN on sealed numbered records, and aggregate inside a
//! [`ShardFabric`] driven with `invoke_batch`. The robustness story is
//! the point:
//!
//! * **Bounded ingest, explicit backpressure** — each utility shard
//!   fronts a bounded inbox ([`shard_channels`]); a full inbox refuses
//!   with the typed [`SubstrateError::Overloaded`], the refused reading
//!   is *deferred* on a deterministic capped-doubling schedule (never
//!   silently dropped), and shed load is counted (`fleet.ingest.shed`).
//! * **Deterministic churn** — a [`ChurnPlan`] crashes an exact,
//!   hash-selected fraction of the fleet at exact logical ticks and can
//!   issue a mid-fleet firmware recall that revokes a digest in the
//!   registry; recalled meters quarantine in the same tick while the
//!   rest of the fleet keeps aggregating. A **distrust wave** is the
//!   recall's web-of-trust sibling: the auditor cohort's signed
//!   distrust reviews drop a build's score below the registry's
//!   `wot-threshold` admission bar, quarantining its cohort in the
//!   same tick with zero restart budget burned — no revocation ever
//!   written. Crashed meters run the
//!   supervision cycle: destroy → backoff → respawn (re-resolving
//!   firmware through the registry, where a revocation grounds them) →
//!   re-measure → re-attest ([`TrustPolicy::verify`]) → re-grant.
//! * **Deadline-aware WAN retry** — concentrator batches ship with
//!   [`send_with_backoff`]; silent loss classifies as the typed
//!   [`lateral_net::NetError::Timeout`] inside `RetryExhausted`, and a
//!   failed batch defers whole, to be re-sealed and retried.
//!
//! Everything runs on the fleet's own logical clock — never a
//! substrate clock — so the end-of-run [`FleetWorld::fleet_digest`] is
//! identical across backends and across runs, which experiment E15
//! gates.

use std::collections::VecDeque;

use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_net::channel::{
    send_with_backoff, BackoffSchedule, ChannelPolicy, ClientHandshake, SecureChannel,
    ServerHandshake,
};
use lateral_net::sim::{AttackMode, Network};
use lateral_net::{Addr, NetError};
use lateral_registry::{measurement_of, ManifestDraft, Registry};
use lateral_substrate::attest::{AttestationEvidence, TrustPolicy};
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::fault::{ChurnKind, ChurnPlan};
use lateral_substrate::shard::{shard_channels, ShardFabric, ShardId, ShardInbox, ShardPost};
use lateral_substrate::substrate::{DomainContext, DomainSpec, Substrate};
use lateral_substrate::{DomainId, SubstrateError};
use lateral_wot::{Proof, Rating, ReviewProof, TrustGraph, TrustProof};

/// Firmware image of the fleet rollout's v1 cohort.
pub const FLEET_FW_V1: &[u8] = b"fleet meter firmware v1 (rollout)";
/// Firmware image of the v2 cohort — the build a mid-fleet recall
/// revokes in churn scenarios.
pub const FLEET_FW_V2: &[u8] = b"fleet meter firmware v2 (hotfix)";

/// Registry name of the v1 firmware.
pub const FLEET_FW_V1_NAME: &str = "fleet-fw-v1";
/// Registry name of the v2 firmware.
pub const FLEET_FW_V2_NAME: &str = "fleet-fw-v2";

/// Size of the fleet's firmware reviewer cohort (auditors whose signed
/// review proofs feed the registry's trust graph).
pub const FLEET_REVIEWERS: usize = 3;
/// Minimum review score (milli-units) fleet firmware must hold.
pub const FLEET_WOT_THRESHOLD_MILLI: i64 = 500;
/// Epoch of the rollout-time endorsements.
const ENDORSE_EPOCH: u64 = 1;
/// Epoch of a distrust wave (supersedes the endorsements).
const DISTRUST_EPOCH: u64 = 2;

/// Which firmware cohort a meter belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Firmware {
    /// The broad-rollout v1 build.
    V1,
    /// The hotfix v2 build (recall target).
    V2,
}

impl Firmware {
    /// Registry name of this build.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Firmware::V1 => FLEET_FW_V1_NAME,
            Firmware::V2 => FLEET_FW_V2_NAME,
        }
    }

    /// Image bytes of this build.
    #[must_use]
    pub fn image(self) -> &'static [u8] {
        match self {
            Firmware::V1 => FLEET_FW_V1,
            Firmware::V2 => FLEET_FW_V2,
        }
    }

    /// Measurement every instance of this build must exhibit.
    #[must_use]
    pub fn measurement(self) -> Digest {
        measurement_of(self.image())
    }
}

/// One compact meter reading on the wire: 11 bytes, fixed layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FleetReading {
    /// Producing meter.
    pub meter: u32,
    /// Fleet round the reading was produced in.
    pub round: u32,
    /// Sub-index within the round (burst rounds produce more than one).
    pub idx: u8,
    /// Watt-hours.
    pub wh: u16,
}

const READING_BYTES: usize = 11;

impl FleetReading {
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.meter.to_le_bytes());
        out.extend_from_slice(&self.round.to_le_bytes());
        out.push(self.idx);
        out.extend_from_slice(&self.wh.to_le_bytes());
    }

    fn decode(data: &[u8]) -> Result<FleetReading, String> {
        if data.len() != READING_BYTES {
            return Err(format!("reading must be {READING_BYTES} bytes"));
        }
        Ok(FleetReading {
            meter: u32::from_le_bytes(data[0..4].try_into().expect("length checked")),
            round: u32::from_le_bytes(data[4..8].try_into().expect("length checked")),
            idx: data[8],
            wh: u16::from_le_bytes(data[9..11].try_into().expect("length checked")),
        })
    }
}

/// The per-shard aggregation component: counts and sums every reading
/// it is invoked with, acknowledging each with its running
/// `(count, sum)` — the ack a reading must receive to count as
/// *acknowledged*, and the utility-side ground truth the conservation
/// check compares against.
#[derive(Default, Debug)]
pub struct ShardAggregator {
    count: u64,
    sum: u64,
}

impl Component for ShardAggregator {
    fn label(&self) -> &str {
        "fleet-aggregator"
    }

    fn on_call(
        &mut self,
        _ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let reading = FleetReading::decode(inv.data).map_err(ComponentError::new)?;
        self.count += 1;
        self.sum += u64::from(reading.wh);
        let mut ack = Vec::with_capacity(16);
        ack.extend_from_slice(&self.count.to_le_bytes());
        ack.extend_from_slice(&self.sum.to_le_bytes());
        Ok(ack)
    }
}

/// Fleet scenario configuration.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// Simulated meters (stress configurations use ≥100_000).
    pub meters: u32,
    /// Utility-side aggregation shards (= substrates handed to
    /// [`FleetWorld::new`]).
    pub shards: u32,
    /// Bounded ingest-inbox capacity per shard — the backpressure knob.
    pub inbox_capacity: usize,
    /// Reading rounds (fleet logical ticks with production).
    pub rounds: u64,
    /// Deterministic fleet churn (crashes, recalls) on the fleet clock.
    pub churn: ChurnPlan,
    /// WAN steady loss: drop every n-th packet (0 = lossless).
    pub drop_every: u64,
    /// Fraction of the fleet rolled out on firmware v2, in ppm. The v2
    /// cohort is the first `meters * ppm / 1e6` meter ids.
    pub v2_fraction_ppm: u32,
    /// Overload leg: in this round every Up meter produces two readings
    /// instead of one, overrunning the bounded inboxes.
    pub burst_round: Option<u64>,
    /// Retry schedule for both the WAN path and ingest deferral.
    pub backoff: BackoffSchedule,
    /// Logical ticks a crashed meter waits before its respawn attempt.
    pub restart_backoff: u64,
    /// Restart budget per meter; exhaustion quarantines.
    pub max_restarts: u32,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            meters: 240,
            shards: 2,
            inbox_capacity: 120,
            rounds: 6,
            churn: ChurnPlan::new(),
            drop_every: 7,
            v2_fraction_ppm: 250_000,
            burst_round: None,
            backoff: BackoffSchedule::capped(1, 8, 4),
            restart_backoff: 2,
            max_restarts: 2,
        }
    }
}

/// Fleet-wide robustness accounting. Every field is deterministic —
/// all are folded into [`FleetWorld::fleet_digest`].
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct FleetStats {
    /// Readings produced by Up meters.
    pub produced: u64,
    /// Sum of produced watt-hours (meter-side conservation ledger).
    pub produced_wh: u64,
    /// Sealed batches shipped over the WAN.
    pub wan_batches: u64,
    /// Extra WAN transmissions beyond the first attempt.
    pub wan_retransmissions: u64,
    /// Batches whose schedule exhausted with a typed timeout (deferred
    /// whole, re-sealed, retried later).
    pub wan_timeouts: u64,
    /// Duplicate WAN deliveries absorbed by the numbered receive window
    /// (a duplicating adversary or a retransmission race; each copy is
    /// opened once and the replays counted here, never double-ingested).
    pub wan_duplicates: u64,
    /// Readings delivered to the utility side (post-WAN, pre-ingest).
    pub delivered: u64,
    /// Readings refused by a full ingest inbox (each is deferred and
    /// retried — shed load, never dropped load).
    pub shed: u64,
    /// Readings acknowledged by a shard aggregator.
    pub acked: u64,
    /// Meter crashes injected by churn.
    pub crashes: u64,
    /// Successful meter respawns (full re-attest cycle).
    pub respawns: u64,
    /// Meters quarantined by the same-tick recall sweep.
    pub quarantined_by_recall: u64,
    /// Meters quarantined by a same-tick distrust-wave sweep (the
    /// firmware's review score dropped below the admission threshold).
    pub quarantined_by_distrust: u64,
    /// Meters quarantined on respawn (registry refused the firmware).
    pub quarantined_on_respawn: u64,
    /// Meters quarantined by restart-budget exhaustion.
    pub quarantined_by_budget: u64,
    /// Ticks spent draining deferred readings after the last round.
    pub drain_ticks: u64,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MeterState {
    Up,
    Down { resume_at: u64 },
    Quarantined,
}

#[derive(Debug)]
struct MeterSim {
    firmware: Firmware,
    state: MeterState,
    restarts: u32,
}

/// A reading in flight, with its deterministic retry position.
#[derive(Clone, Copy, Debug)]
struct Pending {
    reading: FleetReading,
    attempt: u32,
    retry_at: u64,
}

/// A sealed batch whose WAN schedule exhausted. Retransmissions must be
/// **byte-identical** — `open_numbered` treats a fresh (higher) sequence
/// as a record-loss signal, so a deferred batch keeps its sealed bytes
/// and goes out again verbatim.
#[derive(Debug)]
struct WanBatch {
    record: Vec<u8>,
    readings: Vec<Pending>,
    attempt: u32,
    retry_at: u64,
}

/// One utility shard's lane: its fabric endpoints, its WAN channel
/// pair, and its two deferral queues.
struct ShardLane {
    env: DomainId,
    cap: ChannelCap,
    /// Concentrator (client) end of the sealed WAN channel.
    up: SecureChannel,
    /// Utility (server) end.
    down: SecureChannel,
    conc_addr: Addr,
    util_addr: Addr,
    /// Readings waiting to be sealed into a WAN batch.
    outbound: VecDeque<Pending>,
    /// A sealed batch awaiting byte-identical retransmission.
    wan_pending: Option<WanBatch>,
    /// Readings delivered but refused by the bounded inbox.
    deferred: VecDeque<Pending>,
    /// Last aggregator acknowledgment: (count, sum).
    last_ack: (u64, u64),
}

/// The assembled fleet world. Construct with [`FleetWorld::new`], drive
/// with [`FleetWorld::tick`] or [`FleetWorld::run`], then read
/// [`FleetWorld::stats`] and [`FleetWorld::fleet_digest`].
pub struct FleetWorld {
    /// The fleet firmware registry (recalls revoke digests here).
    pub registry: Registry,
    /// The adversarial WAN.
    pub network: Network,
    config: FleetConfig,
    fab: ShardFabric,
    inboxes: Vec<ShardInbox>,
    post: ShardPost,
    lanes: Vec<ShardLane>,
    meters: Vec<MeterSim>,
    /// The firmware auditor cohort: their signed review proofs are the
    /// registry trust graph's input (endorsements at rollout, distrust
    /// waves under churn).
    reviewers: Vec<SigningKey>,
    trust: TrustPolicy,
    evidence_v1: AttestationEvidence,
    evidence_v2: AttestationEvidence,
    stats: FleetStats,
    round: u64,
    wan_clock: u64,
}

impl std::fmt::Debug for FleetWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FleetWorld({} meters, {} shards, round {})",
            self.meters.len(),
            self.lanes.len(),
            self.round
        )
    }
}

fn build_channel_pair(seed: &str) -> (SecureChannel, SecureChannel) {
    let mut client_rng = Drbg::from_seed(format!("{seed}-client-rng").as_bytes());
    let mut server_rng = Drbg::from_seed(format!("{seed}-server-rng").as_bytes());
    let client_id = SigningKey::from_seed(format!("{seed}-client-id").as_bytes());
    let server_id = SigningKey::from_seed(format!("{seed}-server-id").as_bytes());
    let open = ChannelPolicy::open();
    let (state, hello) = ClientHandshake::start(client_id, &mut client_rng);
    let pending =
        ServerHandshake::accept(&server_id, &mut server_rng, &hello).expect("fleet handshake");
    let (awaiting, server_hello) = pending.respond(None, &hello);
    let (client_chan, finish, _peer) = state
        .finish(&server_hello, &open, |_| None)
        .expect("fleet handshake finish");
    let (server_chan, _peer) = awaiting
        .complete(&finish, &open)
        .expect("fleet handshake complete");
    (client_chan, server_chan)
}

impl FleetWorld {
    /// Builds the world over `substrates` — one per shard, all the same
    /// backend (that is what makes the digest's backend-invariance a
    /// meaningful claim).
    ///
    /// # Panics
    ///
    /// Panics on setup failures (fixed topology: these are programming
    /// errors, not scenario outcomes) and when `substrates.len()`
    /// disagrees with `config.shards`.
    pub fn new(substrates: Vec<Box<dyn Substrate>>, config: FleetConfig) -> FleetWorld {
        assert_eq!(
            substrates.len(),
            config.shards as usize,
            "one substrate per shard"
        );
        assert!(config.shards > 0, "at least one shard");

        // --- firmware registry -------------------------------------------
        let publisher = SigningKey::from_seed(b"fleet firmware publisher");
        let mut registry = Registry::new("fleet-registry");
        registry.trust_root(&publisher.verifying_key());
        for fw in [Firmware::V1, Firmware::V2] {
            let manifest = ManifestDraft::new(fw.name(), fw.image())
                .loc(1_500)
                .sign(&publisher, None);
            registry
                .publish(fw.image(), manifest)
                .expect("publish fleet firmware");
        }

        // --- firmware review web -----------------------------------------
        // A small auditor cohort: the first reviewer is the trust root,
        // vouches for the others, and every reviewer endorses both
        // builds at rollout. The registry's wot-threshold pass then
        // gates every resolve on the aggregated score — a later
        // distrust wave (see `ChurnKind::DistrustWave`) supersedes the
        // endorsements and grounds the cohort without any revocation.
        let reviewers: Vec<SigningKey> = (0..FLEET_REVIEWERS)
            .map(|i| SigningKey::from_seed(format!("fleet firmware reviewer {i}").as_bytes()))
            .collect();
        let mut graph = TrustGraph::new();
        graph.seed_root(&reviewers[0].verifying_key().to_bytes());
        registry.attach_wot(graph, FLEET_WOT_THRESHOLD_MILLI);
        for peer in &reviewers[1..] {
            let vouch = TrustProof::issue(
                &reviewers[0],
                &peer.verifying_key(),
                Rating::High,
                ENDORSE_EPOCH,
            );
            registry
                .ingest_proof(&Proof::Trust(vouch))
                .expect("root vouch verifies");
        }
        for fw in [Firmware::V1, Firmware::V2] {
            for reviewer in &reviewers {
                let endorse =
                    ReviewProof::issue(reviewer, fw.measurement(), Rating::High, ENDORSE_EPOCH);
                registry
                    .ingest_proof(&Proof::Review(endorse))
                    .expect("rollout endorsement verifies");
            }
        }

        // --- device attestation root -------------------------------------
        // One platform attestation key stands in for the fleet's device
        // class; per-firmware evidence is what a respawned meter presents
        // on its re-attest leg.
        let platform = SigningKey::from_seed(b"fleet device platform key");
        let boot_state = Digest::of(b"fleet boot stack v1");
        let mut trust = TrustPolicy::new();
        trust.trust_platform(platform.verifying_key());
        trust.expect_measurement(Firmware::V1.measurement());
        trust.expect_measurement(Firmware::V2.measurement());
        trust.expect_platform_state(boot_state);
        let evidence_for = |fw: Firmware| {
            AttestationEvidence::sign(
                "fleet-device",
                &platform,
                fw.measurement(),
                boot_state,
                b"fleet.reattest",
            )
        };

        // --- utility shards ----------------------------------------------
        let mut fab = ShardFabric::new(substrates);
        let mut network = Network::new("fleet-wan");
        let (inboxes, post) = shard_channels(config.shards as usize, config.inbox_capacity);
        let mut lanes = Vec::with_capacity(config.shards as usize);
        for s in 0..config.shards {
            fab.pin(&format!("fleet-agg{s}"), ShardId(s));
            fab.pin(&format!("fleet-ingress{s}"), ShardId(s));
            let agg = fab
                .spawn(
                    DomainSpec::named(&format!("fleet-agg{s}")),
                    Box::new(ShardAggregator::default()),
                )
                .expect("spawn aggregator");
            let env = fab
                .spawn(
                    DomainSpec::named(&format!("fleet-ingress{s}")),
                    Box::new(lateral_substrate::testkit::Echo),
                )
                .expect("spawn ingress");
            let cap = fab.grant_channel(env, agg, Badge(15)).expect("grant");
            let conc_addr = Addr::new(&format!("fleet-conc-{s}.example"));
            let util_addr = Addr::new(&format!("fleet-shard-{s}.utility.example"));
            network.register(conc_addr.clone());
            network.register(util_addr.clone());
            let (up, down) = build_channel_pair(&format!("fleet-lane-{s}"));
            lanes.push(ShardLane {
                env,
                cap,
                up,
                down,
                conc_addr,
                util_addr,
                outbound: VecDeque::new(),
                wan_pending: None,
                deferred: VecDeque::new(),
                last_ack: (0, 0),
            });
        }
        network.set_attack(if config.drop_every > 0 {
            AttackMode::DropEvery(config.drop_every)
        } else {
            AttackMode::Passive
        });

        // --- the fleet ----------------------------------------------------
        // The v2 cohort is the first ppm-fraction of meter ids — a
        // deterministic rollout wave.
        let v2_count =
            (u64::from(config.meters) * u64::from(config.v2_fraction_ppm) / 1_000_000) as u32;
        let meters = (0..config.meters)
            .map(|id| MeterSim {
                firmware: if id < v2_count {
                    Firmware::V2
                } else {
                    Firmware::V1
                },
                state: MeterState::Up,
                restarts: 0,
            })
            .collect();

        FleetWorld {
            registry,
            network,
            config,
            fab,
            inboxes,
            post,
            lanes,
            meters,
            reviewers,
            trust,
            evidence_v1: evidence_for(Firmware::V1),
            evidence_v2: evidence_for(Firmware::V2),
            stats: FleetStats::default(),
            round: 0,
            wan_clock: 0,
        }
    }

    /// The current fleet round (logical tick).
    #[must_use]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The robustness accounting so far.
    #[must_use]
    pub fn stats(&self) -> &FleetStats {
        &self.stats
    }

    /// Readings produced but not yet acknowledged: outbound (pre-WAN)
    /// plus deferred (shed by ingest). Inboxes drain every tick, so at
    /// tick boundaries this is the complete in-flight set.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| {
                l.outbound.len()
                    + l.deferred.len()
                    + l.wan_pending.as_ref().map_or(0, |b| b.readings.len())
            })
            .sum()
    }

    /// Meters currently quarantined.
    #[must_use]
    pub fn quarantined(&self) -> usize {
        self.meters
            .iter()
            .filter(|m| m.state == MeterState::Quarantined)
            .count()
    }

    /// Meters currently up.
    #[must_use]
    pub fn up(&self) -> usize {
        self.meters
            .iter()
            .filter(|m| m.state == MeterState::Up)
            .count()
    }

    /// Per-shard aggregator ground truth from the latest acks:
    /// `(count, wh sum)` per shard.
    #[must_use]
    pub fn shard_totals(&self) -> Vec<(u64, u64)> {
        self.lanes.iter().map(|l| l.last_ack).collect()
    }

    /// One fleet tick: churn → respawns → production → WAN shipping →
    /// bounded ingest → batched aggregation → epoch barrier.
    pub fn tick(&mut self) {
        let t = self.round;
        self.apply_churn(t);
        self.respawn_due(t);
        if t < self.config.rounds {
            self.produce(t);
        }
        for s in 0..self.lanes.len() {
            self.ship_lane(s, t);
            self.ingest_lane(s, t);
            self.aggregate_lane(s);
        }
        self.fab.advance_epoch();
        self.round += 1;
    }

    /// Runs every configured round, then keeps ticking (no production)
    /// until all deferred readings are acknowledged.
    ///
    /// # Panics
    ///
    /// Panics if the fleet cannot drain within a generous bound — under
    /// any loss mode short of a total outage the retry schedules
    /// guarantee it can.
    pub fn run(&mut self) -> FleetStats {
        while self.round < self.config.rounds {
            self.tick();
        }
        let mut guard = 0u64;
        while self.pending() > 0 {
            self.tick();
            self.stats.drain_ticks += 1;
            guard += 1;
            assert!(
                guard <= self.config.rounds + 128,
                "fleet failed to drain {} deferred reading(s)",
                self.pending()
            );
        }
        self.stats
    }

    /// The deterministic fleet-state digest: fleet clock, every meter's
    /// state and restart count, the full robustness accounting, every
    /// shard's acknowledged totals, and the shard fabric's
    /// backend-invariant merged-trace digest. Identical across backends
    /// and across runs — E15's gate.
    #[must_use]
    pub fn fleet_digest(&self) -> Digest {
        let mut bytes = Vec::with_capacity(self.meters.len() * 2 + 256);
        bytes.extend_from_slice(&self.round.to_le_bytes());
        for m in &self.meters {
            bytes.push(match m.state {
                MeterState::Up => 0,
                MeterState::Down { .. } => 1,
                MeterState::Quarantined => 2,
            });
            bytes.push(m.restarts as u8);
        }
        let s = &self.stats;
        for v in [
            s.produced,
            s.produced_wh,
            s.wan_batches,
            s.wan_retransmissions,
            s.wan_timeouts,
            s.wan_duplicates,
            s.delivered,
            s.shed,
            s.acked,
            s.crashes,
            s.respawns,
            s.quarantined_by_recall,
            s.quarantined_by_distrust,
            s.quarantined_on_respawn,
            s.quarantined_by_budget,
            s.drain_ticks,
        ] {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        for lane in &self.lanes {
            bytes.extend_from_slice(&lane.last_ack.0.to_le_bytes());
            bytes.extend_from_slice(&lane.last_ack.1.to_le_bytes());
        }
        Digest::of_parts(&[
            b"lateral.fleet.v1",
            &bytes,
            self.fab.merged_invariant_digest().as_bytes(),
        ])
    }

    // --- tick phases -----------------------------------------------------

    fn apply_churn(&mut self, t: u64) {
        let events: Vec<_> = self.config.churn.due(t).cloned().collect();
        for ev in events {
            match &ev.kind {
                ChurnKind::CrashFraction { .. } => {
                    for (id, m) in self.meters.iter_mut().enumerate() {
                        if m.state != MeterState::Up || !ev.selects(id as u64) {
                            continue;
                        }
                        self.stats.crashes += 1;
                        // destroy: the instance is gone; what remains is
                        // either a scheduled respawn or a quarantine.
                        if m.restarts >= self.config.max_restarts {
                            m.state = MeterState::Quarantined;
                            self.stats.quarantined_by_budget += 1;
                        } else {
                            m.state = MeterState::Down {
                                resume_at: t + self.config.restart_backoff,
                            };
                        }
                    }
                }
                ChurnKind::Recall { image } => self.recall(image),
                ChurnKind::DistrustWave { image } => self.distrust_wave(image),
            }
        }
    }

    /// The mid-fleet recall: revoke the build's digest in the registry,
    /// then quarantine every meter running it — in this same tick.
    fn recall(&mut self, image_name: &str) {
        let fw = if image_name == FLEET_FW_V2_NAME {
            Firmware::V2
        } else {
            Firmware::V1
        };
        let _ = self.registry.revoke(fw.measurement(), "fleet-wide recall");
        for m in &mut self.meters {
            if m.firmware == fw && m.state != MeterState::Quarantined {
                m.state = MeterState::Quarantined;
                self.stats.quarantined_by_recall += 1;
            }
        }
    }

    /// The distrust wave: every auditor issues a distrust review on the
    /// build, superseding its rollout endorsement. No revocation is
    /// written — the registry's trust graph alone drops the score below
    /// the admission threshold, and every meter running the build is
    /// quarantined in this same tick (zero restart budget burned). A
    /// down meter misses the sweep but respawns into the failing
    /// wot-threshold pass instead.
    fn distrust_wave(&mut self, image_name: &str) {
        let fw = if image_name == FLEET_FW_V2_NAME {
            Firmware::V2
        } else {
            Firmware::V1
        };
        for reviewer in &self.reviewers {
            let wave =
                ReviewProof::issue(reviewer, fw.measurement(), Rating::Distrust, DISTRUST_EPOCH);
            self.registry
                .ingest_proof(&Proof::Review(wave))
                .expect("distrust review verifies");
        }
        debug_assert!(
            self.registry.wot_demoted(fw.measurement()),
            "a full-cohort distrust wave must demote the build"
        );
        for m in &mut self.meters {
            if m.firmware == fw && m.state != MeterState::Quarantined {
                m.state = MeterState::Quarantined;
                self.stats.quarantined_by_distrust += 1;
            }
        }
    }

    /// The supervision cycle for every meter whose backoff expired:
    /// re-resolve firmware through the registry (a recall refuses the
    /// respawn and quarantines), re-measure the served bytes, re-attest
    /// against the fleet trust policy, re-grant the send right.
    fn respawn_due(&mut self, t: u64) {
        for m in &mut self.meters {
            let MeterState::Down { resume_at } = m.state else {
                continue;
            };
            if resume_at > t {
                continue;
            }
            // re-resolve: the registry is the recall authority.
            let resolved = match self.registry.resolve(m.firmware.name()) {
                Ok(r) => r,
                Err(_) => {
                    m.state = MeterState::Quarantined;
                    self.stats.quarantined_on_respawn += 1;
                    continue;
                }
            };
            // re-measure: the served bytes must measure as the build
            // this meter is certified for.
            assert_eq!(
                measurement_of(&resolved.image),
                m.firmware.measurement(),
                "registry served unexpected firmware bytes"
            );
            // re-attest: hardware-rooted evidence for the respawned
            // instance must satisfy the fleet trust policy.
            let evidence = match m.firmware {
                Firmware::V1 => &self.evidence_v1,
                Firmware::V2 => &self.evidence_v2,
            };
            self.trust
                .verify(evidence)
                .expect("respawned meter re-attests");
            // re-grant: the meter regains its concentrator send right.
            m.restarts += 1;
            m.state = MeterState::Up;
            self.stats.respawns += 1;
        }
    }

    fn produce(&mut self, t: u64) {
        let per_meter: u8 = if self.config.burst_round == Some(t) {
            2
        } else {
            1
        };
        let shards = self.lanes.len() as u32;
        for (id, m) in self.meters.iter().enumerate() {
            if m.state != MeterState::Up {
                continue;
            }
            let id = id as u32;
            for idx in 0..per_meter {
                let wh = 1_000 + ((u64::from(id) + t + u64::from(idx)) % 7) as u16 * 50;
                let reading = FleetReading {
                    meter: id,
                    round: t as u32,
                    idx,
                    wh,
                };
                self.stats.produced += 1;
                self.stats.produced_wh += u64::from(wh);
                self.lanes[(id % shards) as usize]
                    .outbound
                    .push_back(Pending {
                        reading,
                        attempt: 0,
                        retry_at: t,
                    });
            }
        }
    }

    /// Ships one lane's traffic over the WAN with deadline-aware capped
    /// backoff. A previously deferred sealed batch goes out first —
    /// retransmitted **byte-identical** so the receive window stays
    /// coherent; only once the lane is clear is the next due batch
    /// sealed. An exhausted schedule (typed timeout) defers the batch;
    /// it is never dropped.
    fn ship_lane(&mut self, s: usize, t: u64) {
        // Leg 1: retransmit a deferred sealed batch, if one is due.
        if let Some(batch) = self.lanes[s].wan_pending.take() {
            if batch.retry_at > t {
                self.lanes[s].wan_pending = Some(batch);
                return;
            }
            match self.transmit(s, &batch.record) {
                Some(plain) => self.accept_batch(s, &plain, t),
                None => {
                    let lane = &mut self.lanes[s];
                    lane.wan_pending = Some(WanBatch {
                        retry_at: t + self.config.backoff.delay_before(batch.attempt + 1).max(1),
                        attempt: batch.attempt + 1,
                        ..batch
                    });
                    return;
                }
            }
        }
        // Leg 2: seal and ship the next batch of due readings.
        let lane = &mut self.lanes[s];
        let mut due = Vec::new();
        let mut rest = VecDeque::new();
        for p in lane.outbound.drain(..) {
            if p.retry_at <= t {
                due.push(p);
            } else {
                rest.push_back(p);
            }
        }
        lane.outbound = rest;
        if due.is_empty() {
            return;
        }
        let mut batch = Vec::with_capacity(due.len() * READING_BYTES);
        for p in &due {
            p.reading.encode_into(&mut batch);
        }
        let record = lane.up.seal_numbered(&batch);
        self.stats.wan_batches += 1;
        match self.transmit(s, &record) {
            Some(plain) => self.accept_batch(s, &plain, t),
            None => {
                self.lanes[s].wan_pending = Some(WanBatch {
                    record,
                    readings: due,
                    attempt: 1,
                    retry_at: t + self.config.backoff.delay_before(1).max(1),
                });
            }
        }
    }

    /// One `send_with_backoff` round for a sealed record: returns the
    /// opened plaintext on delivery, `None` when the schedule exhausted
    /// (classified and counted as a typed timeout).
    fn transmit(&mut self, s: usize, record: &[u8]) -> Option<Vec<u8>> {
        let lane = &mut self.lanes[s];
        let mut clock = self.wan_clock;
        let sent = send_with_backoff(
            &mut self.network,
            &lane.conc_addr,
            &lane.util_addr,
            record,
            &self.config.backoff,
            &mut clock,
        );
        self.wan_clock = clock;
        match sent {
            Ok(attempts) => {
                self.stats.wan_retransmissions += u64::from(attempts.saturating_sub(1));
                // Drain EVERY delivered copy: a duplicating adversary
                // (or a retransmission race) can land the same record
                // several times in one round. The numbered window opens
                // the fresh copy once and absorbs each replay as
                // `Ok(None)`; treating a leftover duplicate as a fresh
                // ack — or leaving it to poison the next round's inbox —
                // was the bug this loop fixes.
                let mut plain = None;
                while let Some(p) = self
                    .network
                    .recv(&lane.util_addr)
                    .expect("utility endpoint is registered")
                {
                    match lane
                        .down
                        .open_numbered(&p.payload)
                        .expect("retransmissions keep the receive window coherent")
                    {
                        Some(fresh) => {
                            debug_assert!(plain.is_none(), "one record per transmit");
                            plain = Some(fresh);
                        }
                        None => self.stats.wan_duplicates += 1,
                    }
                }
                if plain.is_none() {
                    // Delivered per the network's ledger but nothing
                    // arrived — treat as loss and let the caller defer.
                    self.stats.wan_timeouts += 1;
                }
                plain
            }
            Err(NetError::RetryExhausted { last_err, .. }) => {
                if matches!(*last_err, NetError::Timeout(_)) {
                    self.stats.wan_timeouts += 1;
                }
                None
            }
            Err(e) => panic!("unexpected WAN error: {e}"),
        }
    }

    /// Hands a delivered batch's readings to the ingest stage.
    fn accept_batch(&mut self, s: usize, plain: &[u8], t: u64) {
        let lane = &mut self.lanes[s];
        for chunk in plain.chunks(READING_BYTES) {
            let reading = FleetReading::decode(chunk).expect("sealed batch is well-formed");
            self.stats.delivered += 1;
            lane.deferred.push_back(Pending {
                reading,
                attempt: 0,
                retry_at: t,
            });
        }
    }

    /// Pushes due delivered readings into the shard's bounded inbox.
    /// [`SubstrateError::Overloaded`] sheds the reading onto its
    /// deterministic retry schedule — counted, never dropped.
    fn ingest_lane(&mut self, s: usize, t: u64) {
        let lane = &mut self.lanes[s];
        let mut shed_now = 0u64;
        let mut still_deferred = VecDeque::new();
        for mut p in lane.deferred.drain(..) {
            if p.retry_at > t {
                still_deferred.push_back(p);
                continue;
            }
            let mut payload = Vec::with_capacity(READING_BYTES);
            p.reading.encode_into(&mut payload);
            match self.post.post(ShardId(s as u32), DomainId(0), payload) {
                Ok(_reply) => {}
                Err(SubstrateError::Overloaded(_)) => {
                    shed_now += 1;
                    p.attempt += 1;
                    p.retry_at = t + self.config.backoff.delay_before(p.attempt).max(1);
                    still_deferred.push_back(p);
                }
                Err(e) => panic!("unexpected ingest error: {e}"),
            }
        }
        lane.deferred = still_deferred;
        if shed_now > 0 {
            self.stats.shed += shed_now;
            if let Some(tel) = self.fab.shard_mut(ShardId(s as u32)).telemetry_mut_ref() {
                tel.metrics_mut().incr("fleet.ingest.shed", shed_now);
            }
        }
    }

    /// Drains the shard's inbox and aggregates the accepted readings as
    /// one `invoke_batch` round on the shard's engine.
    fn aggregate_lane(&mut self, s: usize) {
        let mut payloads = Vec::new();
        self.inboxes[s].drain(|_target, payload| {
            payloads.push(payload.to_vec());
            Ok(Vec::new())
        });
        if payloads.is_empty() {
            return;
        }
        let lane = &mut self.lanes[s];
        let views: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let replies = self
            .fab
            .invoke_batch(lane.env, &lane.cap, &views)
            .expect("aggregation batch");
        for ack in &replies {
            assert_eq!(ack.len(), 16, "aggregator acks are (count, sum)");
            lane.last_ack = (
                u64::from_le_bytes(ack[0..8].try_into().expect("length checked")),
                u64::from_le_bytes(ack[8..16].try_into().expect("length checked")),
            );
        }
        self.stats.acked += replies.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_hw::machine::MachineBuilder;
    use lateral_microkernel::Microkernel;
    use lateral_substrate::fault::ChurnEvent;
    use lateral_substrate::software::SoftwareSubstrate;

    fn software_pool(shards: u32) -> Vec<Box<dyn Substrate>> {
        (0..shards)
            .map(|_| Box::new(SoftwareSubstrate::new("fleet-test")) as Box<dyn Substrate>)
            .collect()
    }

    fn conservation(world: &FleetWorld) {
        let stats = world.stats();
        let totals = world.shard_totals();
        let agg_count: u64 = totals.iter().map(|(c, _)| c).sum();
        let agg_sum: u64 = totals.iter().map(|(_, s)| s).sum();
        assert_eq!(
            stats.acked, agg_count,
            "every acknowledged reading is in aggregator state"
        );
        assert_eq!(stats.produced, stats.acked + world.pending() as u64);
        if world.pending() == 0 {
            assert_eq!(
                agg_sum, stats.produced_wh,
                "watt-hours conserved end to end"
            );
        }
    }

    #[test]
    fn calm_fleet_acks_every_reading() {
        let mut world = FleetWorld::new(software_pool(2), FleetConfig::default());
        let stats = world.run();
        assert_eq!(stats.produced, 240 * 6);
        assert_eq!(stats.acked, stats.produced, "zero lost readings");
        assert_eq!(stats.shed, 0, "no overload without a burst");
        assert!(
            stats.wan_retransmissions > 0,
            "steady loss forced retransmissions"
        );
        conservation(&world);

        // Run-twice determinism: byte-identical fleet digest.
        let mut again = FleetWorld::new(software_pool(2), FleetConfig::default());
        again.run();
        assert_eq!(world.fleet_digest(), again.fleet_digest());
    }

    #[test]
    fn duplicate_burst_never_double_ingests_a_reading() {
        // Regression: a duplicating adversary lands every WAN record
        // several times. Before the transmit drain-and-dedup fix, the
        // second copy either panicked the single-recv path on the next
        // round or was mistaken for a fresh ack. Every duplicate must be
        // absorbed by the numbered window and counted, with conservation
        // intact.
        let config = FleetConfig {
            drop_every: 0, // duplication replaces steady loss
            ..FleetConfig::default()
        };
        let mut world = FleetWorld::new(software_pool(2), config.clone());
        world.network.set_attack(AttackMode::DuplicateBurst(3));
        let stats = world.run();
        assert_eq!(stats.acked, stats.produced, "no reading lost or doubled");
        assert!(
            stats.wan_duplicates > 0,
            "the burst produced duplicates and each was absorbed"
        );
        conservation(&world);

        // Run-twice determinism survives the duplicating adversary.
        let mut again = FleetWorld::new(software_pool(2), config);
        again.network.set_attack(AttackMode::DuplicateBurst(3));
        again.run();
        assert_eq!(world.fleet_digest(), again.fleet_digest());
    }

    #[test]
    fn overload_burst_sheds_then_drains() {
        let config = FleetConfig {
            burst_round: Some(2),
            ..FleetConfig::default()
        };
        let mut world = FleetWorld::new(software_pool(2), config);
        let stats = world.run();
        assert!(stats.shed > 0, "the burst overran the bounded inboxes");
        assert_eq!(stats.produced, 240 * 6 + 240, "burst round produced double");
        assert_eq!(
            stats.acked, stats.produced,
            "shed load was deferred, not lost"
        );
        conservation(&world);
        // The shed count is also visible as a metric on the fabric.
        let merged = world.fab.merged_metrics();
        assert_eq!(merged.counter("fleet.ingest.shed"), stats.shed);
    }

    #[test]
    fn churn_crash_recall_and_recovery() {
        let config = FleetConfig {
            rounds: 8,
            churn: ChurnPlan::new()
                .with(ChurnEvent::crash_fraction(2, 100_000))
                .with(ChurnEvent::recall(4, FLEET_FW_V2_NAME)),
            ..FleetConfig::default()
        };
        let v2_count = 240 * 250_000 / 1_000_000;
        let mut world = FleetWorld::new(software_pool(2), config);

        // Tick up to (and including) the recall tick.
        while world.round() <= 4 {
            world.tick();
        }
        // The recall quarantined the whole v2 cohort in its own tick.
        assert_eq!(world.quarantined(), v2_count, "same-tick quarantine sweep");
        assert!(world.stats().quarantined_by_recall > 0);
        assert!(world.stats().crashes > 0, "the crash wave fired at tick 2");
        let acked_at_recall = world.stats().acked;

        let stats = world.run();
        assert!(
            stats.acked > acked_at_recall,
            "the v1 fleet kept aggregating after the recall"
        );
        assert_eq!(stats.acked, stats.produced, "zero lost under churn");
        assert!(stats.respawns > 0, "crashed v1 meters came back");
        conservation(&world);

        // Determinism under churn too.
        let config = FleetConfig {
            rounds: 8,
            churn: ChurnPlan::new()
                .with(ChurnEvent::crash_fraction(2, 100_000))
                .with(ChurnEvent::recall(4, FLEET_FW_V2_NAME)),
            ..FleetConfig::default()
        };
        let mut again = FleetWorld::new(software_pool(2), config);
        again.run();
        assert_eq!(world.fleet_digest(), again.fleet_digest());
    }

    #[test]
    fn distrust_wave_quarantines_cohort_same_tick_without_revocation() {
        let config = || FleetConfig {
            rounds: 8,
            churn: ChurnPlan::new().with(ChurnEvent::distrust_wave(4, FLEET_FW_V2_NAME)),
            ..FleetConfig::default()
        };
        let v2_count = 240 * 250_000 / 1_000_000;
        let mut world = FleetWorld::new(software_pool(2), config());

        while world.round() <= 4 {
            world.tick();
        }
        // The wave quarantined the whole v2 cohort in its own tick —
        // through review scores alone, never a revocation.
        assert_eq!(world.quarantined(), v2_count, "same-tick distrust sweep");
        assert_eq!(world.stats().quarantined_by_distrust, v2_count as u64);
        assert!(
            !world.registry.is_revoked(Firmware::V2.measurement()),
            "a distrust wave writes no revocation"
        );
        assert!(
            world.registry.resolve(FLEET_FW_V2_NAME).is_err(),
            "the demoted build must no longer resolve"
        );
        assert_eq!(world.stats().crashes, 0, "no restart budget was touched");
        let acked_at_wave = world.stats().acked;

        let stats = world.run();
        assert!(
            stats.acked > acked_at_wave,
            "the v1 fleet kept aggregating after the wave"
        );
        assert_eq!(stats.acked, stats.produced, "zero lost under the wave");
        conservation(&world);

        // Determinism: a second run reproduces the digest byte for byte.
        let mut again = FleetWorld::new(software_pool(2), config());
        again.run();
        assert_eq!(world.fleet_digest(), again.fleet_digest());
    }

    #[test]
    fn wan_outage_defers_and_recovers_without_loss() {
        let mut world = FleetWorld::new(software_pool(2), FleetConfig::default());
        world.network.set_attack(AttackMode::DropAll);
        for _ in 0..3 {
            world.tick();
        }
        let stats = *world.stats();
        assert!(stats.produced > 0);
        assert_eq!(stats.acked, 0, "a total outage acknowledges nothing");
        assert!(stats.wan_timeouts > 0, "loss classified as typed timeouts");
        assert_eq!(
            world.pending() as u64,
            stats.produced,
            "every reading is still queued, none dropped"
        );
        // Service returns (steady loss only): everything drains.
        world.network.set_attack(AttackMode::DropEvery(7));
        let stats = world.run();
        assert_eq!(stats.acked, stats.produced, "outage deferred, never lost");
        conservation(&world);
    }

    #[test]
    fn fleet_digest_is_backend_invariant() {
        let mut soft = FleetWorld::new(software_pool(2), FleetConfig::default());
        soft.run();
        let micro: Vec<Box<dyn Substrate>> = (0..2)
            .map(|_| {
                let machine = MachineBuilder::new().name("fleet-mk").frames(256).build();
                Box::new(Microkernel::new(machine, "fleet-test")) as Box<dyn Substrate>
            })
            .collect();
        let mut micro = FleetWorld::new(micro, FleetConfig::default());
        micro.run();
        assert_eq!(
            soft.fleet_digest(),
            micro.fleet_digest(),
            "fleet digest must not depend on the hosting backend"
        );
    }

    #[test]
    fn recall_grounds_respawning_v2_meters() {
        // A v2 meter that is *down* when the recall lands must be
        // refused at respawn (registry re-resolution), not restarted.
        let config = FleetConfig {
            rounds: 8,
            // Crash 30% at tick 1; recall v2 at tick 2 — before the
            // tick-3 respawns come due.
            churn: ChurnPlan::new()
                .with(ChurnEvent::crash_fraction(1, 300_000))
                .with(ChurnEvent::recall(2, FLEET_FW_V2_NAME)),
            restart_backoff: 3,
            ..FleetConfig::default()
        };
        let mut world = FleetWorld::new(software_pool(2), config);
        let stats = world.run();
        // Every v2 meter ended quarantined, whether it was up at the
        // recall (same-tick sweep) or respawned into the revocation.
        let v2_count = 240 * 250_000 / 1_000_000;
        assert_eq!(
            stats.quarantined_by_recall + stats.quarantined_on_respawn,
            v2_count as u64 + stats.quarantined_on_respawn.min(0),
            "recall + respawn refusals cover the v2 cohort"
        );
        assert_eq!(world.quarantined() as u64, {
            let q = stats.quarantined_by_recall
                + stats.quarantined_on_respawn
                + stats.quarantined_by_budget;
            q
        });
        assert_eq!(stats.acked, stats.produced);
        conservation(&world);
    }
}
