//! The email client, vertical and horizontal (Figure 1, §III-C).
//!
//! Both variants expose the same assets:
//!
//! | asset | sensitivity | horizontal holder |
//! |---|---|---|
//! | `tls-keys` | secret | `tls` |
//! | `account-password` | secret | `tls` |
//! | `mail-archive` | personal | `mail-store` |
//! | `contacts` | personal | `address-book` |
//! | `user-dictionary` | personal | `input-method` |
//! | `display-trust` | personal | `secure-gui` |
//!
//! In the vertical variant one [`LegacyOs`] domain holds all six; in the
//! horizontal variant they are spread over isolated components wired by
//! a POLA manifest. The harness compromises the hostile-input parsers
//! (HTML renderer, IMAP engine) and measures what is reachable.

use lateral_components::addressbook::AddressBook;
use lateral_components::attachments::AttachmentDecoder;
use lateral_components::compromise::{AttackReport, Subverted, REPORT_QUERY};
use lateral_components::gui::SecureGui;
use lateral_components::html::HtmlRenderer;
use lateral_components::imap::ImapEngine;
use lateral_components::input::InputMethod;
use lateral_components::legacyos::LegacyOs;
use lateral_components::mailstore::{ClientIdSource, MailStore};
use lateral_core::composer::{compose, Assembly};
use lateral_core::manifest::{AppManifest, ComponentManifest, Sensitivity};
use lateral_core::CoreError;
use lateral_crypto::sign::SigningKey;
use lateral_net::channel::ChannelPolicy;
use lateral_substrate::component::Component;
use lateral_substrate::substrate::Substrate;

/// Exploit marker accepted by the subverted parsers (same as the HTML
/// renderer's).
pub use lateral_components::html::EXPLOIT_MARKER;

/// The subsystems both variants contain (compromise entry points).
pub const SUBSYSTEMS: [&str; 7] = [
    "imap-engine",
    "tls",
    "html-renderer",
    "attachment-decoder",
    "address-book",
    "input-method",
    "mail-store",
];

/// Manifest of the horizontal (decomposed) email client.
pub fn horizontal_manifest() -> AppManifest {
    AppManifest::new(
        "mail-horizontal",
        vec![
            // The UI orchestrates; it holds no assets itself.
            ComponentManifest::new("mail-ui")
                .loc(8_000)
                .channel("render", "html-renderer", 1)
                .channel("decode", "attachment-decoder", 8)
                .channel("fetch", "imap-engine", 2)
                .channel("store", "mail-store", 3)
                .channel("abook", "address-book", 4)
                .channel("input", "input-method", 5)
                .channel("draw", "secure-gui", 6),
            // Hostile-input parsers: isolated, no outbound channels.
            ComponentManifest::new("html-renderer").loc(30_000),
            ComponentManifest::new("attachment-decoder").loc(15_000),
            ComponentManifest::new("imap-engine")
                .loc(12_000)
                .channel("net", "tls", 7),
            // The TLS component guards keys and credentials.
            ComponentManifest::new("tls")
                .loc(5_000)
                .asset("tls-keys", Sensitivity::Secret)
                .asset("account-password", Sensitivity::Secret),
            ComponentManifest::new("mail-store")
                .loc(4_000)
                .asset("mail-archive", Sensitivity::Personal),
            ComponentManifest::new("address-book")
                .loc(2_000)
                .asset("contacts", Sensitivity::Personal),
            ComponentManifest::new("input-method")
                .loc(3_000)
                .asset("user-dictionary", Sensitivity::Personal),
            ComponentManifest::new("secure-gui")
                .loc(4_000)
                .asset("display-trust", Sensitivity::Personal),
        ],
    )
}

/// Manifest of the vertical (monolithic) email client: the same 83 kLoC
/// and the same assets in ONE legacy domain.
pub fn vertical_manifest() -> AppManifest {
    AppManifest::new(
        "mail-vertical",
        vec![ComponentManifest::new("mail-monolith")
            .loc(83_000)
            .legacy()
            .asset("tls-keys", Sensitivity::Secret)
            .asset("account-password", Sensitivity::Secret)
            .asset("mail-archive", Sensitivity::Personal)
            .asset("contacts", Sensitivity::Personal)
            .asset("user-dictionary", Sensitivity::Personal)
            .asset("display-trust", Sensitivity::Personal)],
    )
}

/// Builds a component instance for the horizontal manifest. Every
/// hostile-input component is wrapped in the subversion harness.
fn horizontal_factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
    let c: Box<dyn Component> = match cm.name.as_str() {
        "mail-ui" => Box::new(lateral_substrate::testkit::Forwarder),
        "html-renderer" => Box::new(Subverted::with_default_marker(HtmlRenderer::new())),
        "attachment-decoder" => Box::new(Subverted::with_default_marker(AttachmentDecoder::new())),
        "imap-engine" => Box::new(Subverted::with_default_marker(ImapEngine::new())),
        "tls" => Box::new(Subverted::with_default_marker(
            lateral_components::tls::TlsComponent::new(
                lateral_components::tls::TlsRole::Client,
                SigningKey::from_seed(b"mail tls identity"),
                ChannelPolicy::open(),
                false,
                Some(("user", "hunter2")),
            ),
        )),
        "mail-store" => Box::new(Subverted::with_default_marker(MailStore::new(
            ClientIdSource::KernelBadge,
            &[(3, "user"), (0xE4F, "env")],
        ))),
        "address-book" => Box::new(Subverted::with_default_marker(AddressBook::with_contacts(
            &[("alice", "alice@example.org")],
        ))),
        "input-method" => Box::new(Subverted::with_default_marker(InputMethod::with_words(&[
            "meeting", "hello",
        ]))),
        "secure-gui" => Box::new(Subverted::with_default_marker(SecureGui::new())),
        _ => return None,
    };
    Some(c)
}

/// Builds the vertical monolith.
fn vertical_factory(cm: &ComponentManifest) -> Option<Box<dyn Component>> {
    if cm.name != "mail-monolith" {
        return None;
    }
    Some(Box::new(LegacyOs::new(
        "mail-monolith",
        &[
            "imap-engine",
            "tls",
            "html-renderer",
            "attachment-decoder",
            "address-book",
            "input-method",
            "mail-store",
        ],
        &[
            ("tls-keys", "-----PRIVATE KEY-----"),
            ("account-password", "hunter2"),
            ("mail-archive", "3 years of mail"),
            ("contacts", "alice,bob"),
            ("user-dictionary", "personal words"),
            ("display-trust", "focus state"),
        ],
    )))
}

/// The horizontal email client, running.
pub struct HorizontalEmail {
    /// The composed assembly.
    pub assembly: Assembly,
}

impl HorizontalEmail {
    /// Composes the horizontal client over `substrates`.
    ///
    /// # Errors
    ///
    /// Composition errors from [`lateral_core::composer::compose`].
    pub fn build(substrates: Vec<Box<dyn Substrate>>) -> Result<HorizontalEmail, CoreError> {
        let app = horizontal_manifest();
        let mut factory = horizontal_factory;
        let assembly = compose(&app, substrates, &mut factory)?;
        Ok(HorizontalEmail { assembly })
    }

    /// Delivers hostile input to one subsystem (an email body to the
    /// renderer, a server response to the IMAP engine, …).
    ///
    /// # Errors
    ///
    /// Propagates composition lookup failures; component-level failures
    /// are fine (hostile input may be rejected).
    pub fn deliver_hostile(&mut self, subsystem: &str, input: &[u8]) -> Result<(), CoreError> {
        // Components keep their protocol; wrap input appropriately.
        let request: Vec<u8> = match subsystem {
            "html-renderer" | "attachment-decoder" => input.to_vec(),
            "imap-engine" => [b"parse:", input].concat(),
            "tls" => [b"recv:", input].concat(),
            "mail-store" => [b"put:user=env;", input].concat(),
            "address-book" => [b"add:x=", input].concat(),
            "input-method" => [b"learn:", input].concat(),
            other => return Err(CoreError::NotFound(format!("subsystem '{other}'"))),
        };
        // Failures are expected for malformed hostile input.
        let _ = self.assembly.call_component(subsystem, &request);
        Ok(())
    }

    /// Queries the attack report of a (possibly compromised) component.
    ///
    /// # Errors
    ///
    /// Lookup or decode failures.
    pub fn attack_report(&mut self, subsystem: &str) -> Result<AttackReport, CoreError> {
        let raw = self.assembly.call_component(subsystem, REPORT_QUERY)?;
        AttackReport::decode(&raw).map_err(|e| CoreError::Substrate(e.to_string()))
    }
}

/// The vertical email client, running.
pub struct VerticalEmail {
    /// The composed assembly (a single legacy domain).
    pub assembly: Assembly,
}

impl VerticalEmail {
    /// Composes the vertical client over `substrates`.
    ///
    /// # Errors
    ///
    /// Composition errors.
    pub fn build(substrates: Vec<Box<dyn Substrate>>) -> Result<VerticalEmail, CoreError> {
        let app = vertical_manifest();
        let mut factory = vertical_factory;
        let assembly = compose(&app, substrates, &mut factory)?;
        Ok(VerticalEmail { assembly })
    }

    /// Delivers hostile input to one *internal subsystem* of the
    /// monolith.
    ///
    /// # Errors
    ///
    /// Lookup failures.
    pub fn deliver_hostile(&mut self, subsystem: &str, input: &[u8]) -> Result<(), CoreError> {
        let mut request = format!("deliver:{subsystem}:").into_bytes();
        request.extend_from_slice(input);
        let _ = self.assembly.call_component("mail-monolith", &request);
        Ok(())
    }

    /// Attempts to loot all assets (succeeds exactly when compromised).
    ///
    /// # Errors
    ///
    /// Lookup failures only; a refusal returns `Ok(None)`.
    pub fn loot(&mut self) -> Result<Option<String>, CoreError> {
        match self.assembly.call_component("mail-monolith", b"loot:") {
            Ok(bytes) => Ok(Some(String::from_utf8_lossy(&bytes).into_owned())),
            Err(CoreError::Substrate(_)) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lateral_core::analysis;
    use lateral_substrate::software::SoftwareSubstrate;

    fn pool() -> Vec<Box<dyn Substrate>> {
        vec![Box::new(SoftwareSubstrate::new("email-pool"))]
    }

    #[test]
    fn manifests_validate() {
        horizontal_manifest().validate().unwrap();
        vertical_manifest().validate().unwrap();
        // Same total application size, same asset set.
        assert_eq!(
            horizontal_manifest().total_loc(),
            vertical_manifest().total_loc()
        );
    }

    #[test]
    fn horizontal_renderer_compromise_is_contained() {
        let mut app = HorizontalEmail::build(pool()).unwrap();
        let evil = format!("<script>{EXPLOIT_MARKER}</script>");
        app.deliver_hostile("html-renderer", evil.as_bytes())
            .unwrap();
        let report = app.attack_report("html-renderer").unwrap();
        assert!(report.active, "renderer was exploited");
        assert!(report.contained(), "substrate contained it: {report:?}");
        assert_eq!(report.granted_channels, 0, "renderer has no channels");
        // Static analysis agrees.
        let br = analysis::blast_radius(&horizontal_manifest(), "html-renderer");
        assert!(br.reachable_assets.is_empty());
    }

    #[test]
    fn vertical_any_exploit_loses_everything() {
        let mut app = VerticalEmail::build(pool()).unwrap();
        assert_eq!(app.loot().unwrap(), None, "not compromised yet");
        app.deliver_hostile(
            "html-renderer",
            format!("x {} x", lateral_components::legacyos::LEGACY_EXPLOIT).as_bytes(),
        )
        .unwrap();
        let loot = app.loot().unwrap().expect("monolith compromised");
        assert!(loot.contains("tls-keys"));
        assert!(loot.contains("account-password=hunter2"));
        assert!(loot.contains("user-dictionary"));
    }

    #[test]
    fn imap_compromise_reaches_only_tls_downstream() {
        let app = horizontal_manifest();
        let br = analysis::blast_radius(&app, "imap-engine");
        assert!(br.reachable_components.contains("tls"));
        assert!(!br.reachable_components.contains("mail-store"));
        assert_eq!(br.reachable_assets.len(), 2); // the two tls secrets
    }

    #[test]
    fn per_asset_tcb_is_much_smaller_horizontally() {
        let h = horizontal_manifest();
        let v = vertical_manifest();
        let substrate_tcb = 10_000;
        let h_tcb = analysis::asset_tcb_loc(&h, "user-dictionary", substrate_tcb).unwrap();
        let v_tcb = analysis::asset_tcb_loc(&v, "user-dictionary", substrate_tcb).unwrap();
        assert!(
            h_tcb * 3 < v_tcb,
            "horizontal TCB {h_tcb} should be well under vertical {v_tcb}"
        );
    }

    #[test]
    fn runtime_compromise_of_every_parser_is_contained() {
        for subsystem in ["html-renderer", "imap-engine"] {
            let mut app = HorizontalEmail::build(pool()).unwrap();
            app.deliver_hostile(subsystem, EXPLOIT_MARKER.as_bytes())
                .unwrap();
            let report = app.attack_report(subsystem).unwrap();
            assert!(report.active, "{subsystem} exploited");
            assert!(report.contained(), "{subsystem} contained: {report:?}");
        }
    }
}
