//! The smart-meter appliance and utility server of Figure 3.
//!
//! Appliance side: a microkernel hosts the virtualized Android UI and
//! the egress gateway; the meter agent lives in the TrustZone secure
//! world, its identity rooted in the fused per-device key. Utility side:
//! the anonymizer frontend runs in an SGX enclave next to an untrusted
//! host database. The two sides meet over an adversarial network with a
//! mutually attested secure channel:
//!
//! * the utility trusts readings only from an attested meter ("otherwise
//!   users could disconnect the actual meter and instead have a software
//!   emulation send fake data");
//! * the meter sends readings only to the *audited* anonymizer build
//!   ("the smart meter would … refuse to talk to a manipulated instance
//!   that may violate user privacy");
//! * the gateway caps what the (assumed compromised) Android side can
//!   send anywhere — the anti-DDoS policy;
//! * the secure GUI's trusted indicator defeats in-appliance phishing.

use lateral_components::anonymizer::{
    Anonymizer, ManipulatedAnonymizer, AUDITED_IMAGE, MANIPULATED_IMAGE,
};
use lateral_components::gateway::Gateway;
use lateral_components::gui::{SecureGui, DRIVER_BADGE};
use lateral_components::split_cmd;
use lateral_crypto::rng::Drbg;
use lateral_crypto::sign::SigningKey;
use lateral_crypto::Digest;
use lateral_hw::machine::MachineBuilder;
use lateral_microkernel::Microkernel;
use lateral_net::channel::{
    ChannelPolicy, ClientHandshake, SecureChannel, ServerAwaitFinish, ServerHandshake,
};
use lateral_net::sim::{AttackMode, Network};
use lateral_net::Addr;
use lateral_registry::{ManifestDraft, Registry};
use lateral_sgx::Sgx;
use lateral_substrate::attest::TrustPolicy;
use lateral_substrate::cap::{Badge, ChannelCap};
use lateral_substrate::component::{Component, ComponentError, Invocation};
use lateral_substrate::substrate::{DomainContext, DomainSpec, Substrate};
use lateral_substrate::DomainId;
use lateral_telemetry::outcome as span_outcome;
use lateral_trustzone::TrustZone;

/// Image of the genuine meter firmware.
pub const METER_IMAGE: &[u8] = b"meter firmware v1 (calibrated)";

/// The meter agent: sensor + secure-channel client inside TrustZone.
pub struct MeterAgent {
    identity: SigningKey,
    policy: ChannelPolicy,
    meter_id: String,
    period: u64,
    state: AgentState,
    rng: Option<Drbg>,
}

enum AgentState {
    Idle,
    AwaitingServerHello(ClientHandshake),
    Established(Box<SecureChannel>),
}

impl std::fmt::Debug for MeterAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MeterAgent({})", self.meter_id)
    }
}

impl MeterAgent {
    /// Creates a meter agent that will only talk to peers satisfying
    /// `policy` (i.e. the attested, audited anonymizer frontend).
    pub fn new(meter_id: &str, identity: SigningKey, policy: ChannelPolicy) -> MeterAgent {
        MeterAgent {
            identity,
            policy,
            meter_id: meter_id.to_string(),
            period: 202_607,
            state: AgentState::Idle,
            rng: None,
        }
    }

    fn rng(&mut self, ctx: &mut dyn DomainContext) -> &mut Drbg {
        if self.rng.is_none() {
            let mut seed = Vec::new();
            for _ in 0..4 {
                seed.extend_from_slice(&ctx.rng_u64().to_le_bytes());
            }
            self.rng = Some(Drbg::from_seed(&seed));
        }
        self.rng.as_mut().expect("just initialized")
    }
}

impl Component for MeterAgent {
    fn label(&self) -> &str {
        "meter-agent"
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "hello" => {
                let identity = self.identity.clone();
                let (state, hello) = ClientHandshake::start(identity, self.rng(ctx));
                self.state = AgentState::AwaitingServerHello(state);
                Ok(hello)
            }
            "complete" => {
                let state = match std::mem::replace(&mut self.state, AgentState::Idle) {
                    AgentState::AwaitingServerHello(s) => s,
                    other => {
                        self.state = other;
                        return Err(ComponentError::new("no handshake in progress"));
                    }
                };
                // The meter attests itself: hardware-rooted evidence bound
                // to this exact channel. A fake meter (no trust anchor)
                // gets None here and is rejected by the utility.
                let (channel, finish, _peer) = state
                    .finish(payload, &self.policy, |transcript| {
                        ctx.attest(transcript.as_bytes()).ok()
                    })
                    .map_err(|e| ComponentError::new(format!("handshake: {e}")))?;
                self.state = AgentState::Established(Box::new(channel));
                Ok(finish)
            }
            "send-reading" => {
                // Simulated sensor: deterministic consumption curve.
                let wh = 1_000 + (self.period % 7) * 150;
                let msg = format!("reading:{},{},{}", self.meter_id, self.period, wh);
                self.period += 1;
                match &mut self.state {
                    AgentState::Established(c) => Ok(c.seal(msg.as_bytes())),
                    _ => Err(ComponentError::new("channel not established")),
                }
            }
            "recv" => match &mut self.state {
                AgentState::Established(c) => c
                    .open(payload)
                    .map_err(|e| ComponentError::new(format!("record: {e}"))),
                _ => Err(ComponentError::new("channel not established")),
            },
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

/// The utility frontend: secure-channel server + anonymizer in one
/// attested enclave.
pub struct UtilityFrontend {
    identity: SigningKey,
    policy: ChannelPolicy,
    anonymizer: Box<dyn Component>,
    state: FrontendState,
    rng: Option<Drbg>,
}

enum FrontendState {
    Idle,
    AwaitingFinish(ServerAwaitFinish),
    Established(Box<SecureChannel>),
}

impl std::fmt::Debug for UtilityFrontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UtilityFrontend(..)")
    }
}

impl UtilityFrontend {
    /// Creates the frontend; `policy` states what the utility requires of
    /// meters (attested genuine firmware), `anonymizer` is the processing
    /// component (audited or manipulated build).
    pub fn new(
        identity: SigningKey,
        policy: ChannelPolicy,
        anonymizer: Box<dyn Component>,
    ) -> UtilityFrontend {
        UtilityFrontend {
            identity,
            policy,
            anonymizer,
            state: FrontendState::Idle,
            rng: None,
        }
    }

    fn rng(&mut self, ctx: &mut dyn DomainContext) -> &mut Drbg {
        if self.rng.is_none() {
            let mut seed = Vec::new();
            for _ in 0..4 {
                seed.extend_from_slice(&ctx.rng_u64().to_le_bytes());
            }
            self.rng = Some(Drbg::from_seed(&seed));
        }
        self.rng.as_mut().expect("just initialized")
    }
}

impl Component for UtilityFrontend {
    fn label(&self) -> &str {
        "utility-frontend"
    }

    fn on_call(
        &mut self,
        ctx: &mut dyn DomainContext,
        inv: Invocation<'_>,
    ) -> Result<Vec<u8>, ComponentError> {
        let (cmd, payload) = split_cmd(inv.data)?;
        match cmd {
            "accept" => {
                let identity = self.identity.clone();
                let pending = {
                    let rng = self.rng(ctx);
                    ServerHandshake::accept(&identity, rng, payload)
                        .map_err(|e| ComponentError::new(format!("handshake: {e}")))?
                };
                // Channel-bound evidence from the quoting enclave.
                let evidence = ctx.attest(pending.transcript().as_bytes()).ok();
                let (awaiting, server_hello) = pending.respond(evidence, payload);
                self.state = FrontendState::AwaitingFinish(awaiting);
                Ok(server_hello)
            }
            "finish" => {
                let state = match std::mem::replace(&mut self.state, FrontendState::Idle) {
                    FrontendState::AwaitingFinish(s) => s,
                    other => {
                        self.state = other;
                        return Err(ComponentError::new("no handshake in progress"));
                    }
                };
                let (channel, _peer) = state
                    .complete(payload, &self.policy)
                    .map_err(|e| ComponentError::new(format!("handshake: {e}")))?;
                self.state = FrontendState::Established(Box::new(channel));
                Ok(b"ok".to_vec())
            }
            "process" => {
                let plaintext = match &mut self.state {
                    FrontendState::Established(c) => c
                        .open(payload)
                        .map_err(|e| ComponentError::new(format!("record: {e}")))?,
                    _ => return Err(ComponentError::new("channel not established")),
                };
                let reply = self.anonymizer.on_call(
                    ctx,
                    Invocation {
                        badge: inv.badge,
                        data: &plaintext,
                    },
                )?;
                match &mut self.state {
                    FrontendState::Established(c) => Ok(c.seal(&reply)),
                    _ => unreachable!("state checked above"),
                }
            }
            "retained" => self.anonymizer.on_call(ctx, inv),
            "aggregate" => self.anonymizer.on_call(ctx, inv),
            other => Err(ComponentError::new(format!("unknown command '{other}'"))),
        }
    }
}

/// Scenario configuration.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Deploy the manipulated anonymizer build on the utility side.
    pub manipulated_anonymizer: bool,
    /// Replace the meter with a software emulation on a substrate
    /// without a trust anchor (the fake-meter attack).
    pub fake_meter: bool,
    /// The in-path network adversary's behavior.
    pub network_attack: AttackMode,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            manipulated_anonymizer: false,
            fake_meter: false,
            network_attack: AttackMode::Passive,
        }
    }
}

/// Outcome of a billing round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BillingOutcome {
    /// End-to-end success; contains the billing acknowledgment.
    Billed(String),
    /// A party refused during the handshake (attestation / signature /
    /// pinning failure) — contains the reason.
    Refused(String),
    /// The network ate or mangled the traffic; no reply arrived.
    NoService(String),
}

/// The assembled Figure 3 world.
pub struct SmartMeterWorld {
    /// The appliance's component registry: meter firmware is published,
    /// certified, and served from here — spawn and recovery both
    /// resolve through it, so a revocation grounds the meter until
    /// certified firmware ships.
    pub registry: Registry,
    /// Appliance: microkernel side (Android, gateway, GUI).
    pub kernel: Microkernel,
    /// Appliance: TrustZone side (meter agent) — absent for fake meters.
    pub trustzone: Option<TrustZone>,
    /// Utility server (SGX).
    pub utility: Sgx,
    /// The adversarial network.
    pub network: Network,
    meter_domain: DomainId,
    meter_env: DomainId,
    meter_cap: ChannelCap,
    meter_policy: ChannelPolicy,
    frontend_env: DomainId,
    frontend_cap: ChannelCap,
    gateway_cap: ChannelCap,
    gui_driver_cap: ChannelCap,
    android_gui_cap: ChannelCap,
    kernel_env: DomainId,
    meter_addr: Addr,
    utility_addr: Addr,
}

impl std::fmt::Debug for SmartMeterWorld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SmartMeterWorld")
    }
}

impl SmartMeterWorld {
    /// Builds the whole world under `config`.
    ///
    /// # Panics
    ///
    /// Panics on setup failures (fixed topology; failures are programming
    /// errors, not scenario outcomes).
    pub fn new(config: WorldConfig) -> SmartMeterWorld {
        // --- utility server ------------------------------------------------
        let utility_machine = MachineBuilder::new()
            .name("utility-server")
            .frames(256)
            .build();
        let mut utility = Sgx::new(utility_machine, "utility");
        let frontend_image = if config.manipulated_anonymizer {
            MANIPULATED_IMAGE
        } else {
            AUDITED_IMAGE
        };
        // The utility accepts only genuine attested meter firmware.
        let mut meter_trust = TrustPolicy::new();
        // (platform key filled in below once the meter side exists)

        // --- appliance -----------------------------------------------------
        let kernel_machine = MachineBuilder::new()
            .name("meter-appliance")
            .frames(256)
            .build();
        let mut kernel = Microkernel::new(kernel_machine, "appliance");
        let (trustzone, meter_platform_key) = if config.fake_meter {
            (None, None)
        } else {
            let tz_machine = MachineBuilder::new().name("meter-soc").frames(128).build();
            let tz = TrustZone::new(tz_machine, "meter-device-7")
                .with_platform_state(Digest::of(b"meter boot stack v1"));
            let key = tz.platform_verifying_key().expect("tz attests");
            (Some(tz), Some(key))
        };
        if let Some(k) = meter_platform_key {
            meter_trust.trust_platform(k);
        }
        meter_trust.expect_measurement(
            DomainSpec::named("meter-agent")
                .with_image(METER_IMAGE)
                .measurement(),
        );
        let utility_policy = ChannelPolicy::open().with_attestation(meter_trust);

        // The meter accepts only the audited anonymizer frontend, attested
        // by the utility's SGX.
        let mut utility_trust = TrustPolicy::new();
        utility_trust.trust_platform(utility.platform_verifying_key().expect("sgx attests"));
        utility_trust.expect_measurement(
            DomainSpec::named("utility-frontend")
                .with_image(AUDITED_IMAGE)
                .measurement(),
        );
        let meter_policy = ChannelPolicy::open().with_attestation(utility_trust);

        // --- spawn the utility frontend enclave ----------------------------
        let anonymizer: Box<dyn Component> = if config.manipulated_anonymizer {
            Box::new(ManipulatedAnonymizer::new())
        } else {
            Box::new(Anonymizer::new())
        };
        let frontend = UtilityFrontend::new(
            SigningKey::from_seed(b"utility channel identity"),
            utility_policy,
            anonymizer,
        );
        let frontend_domain = utility
            .spawn(
                DomainSpec::named("utility-frontend").with_image(frontend_image),
                Box::new(frontend),
            )
            .expect("spawn frontend");
        // Untrusted host DB next to it (present for realism; not driven in
        // the happy path).
        utility
            .spawn_host(
                DomainSpec::named("billing-db"),
                Box::new(lateral_substrate::testkit::Echo),
            )
            .expect("spawn db");
        let frontend_env = utility
            .spawn_host(
                DomainSpec::named("__env__"),
                Box::new(lateral_substrate::testkit::Echo),
            )
            .expect("spawn env");
        let frontend_cap = utility
            .grant_channel(frontend_env, frontend_domain, Badge(1))
            .expect("grant");

        // --- component registry --------------------------------------------
        // The meter firmware is served from a registry, not baked into
        // the spawn site: publish + certify here, resolve at every spawn
        // (including supervised recovery).
        let firmware_publisher = SigningKey::from_seed(b"meter firmware publisher");
        let mut registry = Registry::new("appliance-registry");
        registry.trust_root(&firmware_publisher.verifying_key());
        let firmware_manifest = ManifestDraft::new("meter-agent", METER_IMAGE)
            .loc(2_000)
            .sign(&firmware_publisher, None);
        registry
            .publish(METER_IMAGE, firmware_manifest)
            .expect("publish meter firmware");
        let meter_firmware = registry
            .resolve("meter-agent")
            .expect("meter firmware certifies")
            .image;

        // --- spawn the meter agent -----------------------------------------
        let agent = MeterAgent::new(
            "meter-7",
            SigningKey::from_seed(b"meter channel identity"),
            meter_policy.clone(),
        );
        let (meter_domain, meter_env, meter_cap, trustzone) = match trustzone {
            Some(mut tz) => {
                let d = tz
                    .spawn(
                        DomainSpec::named("meter-agent").with_image(&meter_firmware),
                        Box::new(agent),
                    )
                    .expect("spawn meter");
                let env = tz
                    .spawn_normal(
                        DomainSpec::named("__env__"),
                        Box::new(lateral_substrate::testkit::Echo),
                    )
                    .expect("spawn env");
                let cap = tz.grant_channel(env, d, Badge(1)).expect("grant");
                (d, env, cap, Some(tz))
            }
            None => {
                // Fake meter: the agent runs on the plain microkernel with
                // NO attestation identity. Its image even *claims* to be
                // genuine (certified bytes straight from the registry) —
                // attestation is what catches the lie.
                let d = kernel
                    .spawn(
                        DomainSpec::named("meter-agent").with_image(&meter_firmware),
                        Box::new(agent),
                    )
                    .expect("spawn fake meter");
                let env = kernel
                    .spawn(
                        DomainSpec::named("__tz_env__"),
                        Box::new(lateral_substrate::testkit::Echo),
                    )
                    .expect("spawn env");
                let cap = kernel.grant_channel(env, d, Badge(1)).expect("grant");
                (d, env, cap, None)
            }
        };

        // --- appliance legacy side: android, gateway, GUI -------------------
        let android = kernel
            .spawn(
                DomainSpec::named("android").with_mem_pages(8),
                Box::new(lateral_substrate::testkit::Echo),
            )
            .expect("spawn android");
        let gateway = kernel
            .spawn(
                DomainSpec::named("gateway"),
                Box::new(Gateway::new(&["utility.example.org"], 8_000)),
            )
            .expect("spawn gateway");
        let gui = kernel
            .spawn(DomainSpec::named("secure-gui"), Box::new(SecureGui::new()))
            .expect("spawn gui");
        let kernel_env = kernel
            .spawn(
                DomainSpec::named("__env__"),
                Box::new(lateral_substrate::testkit::Echo),
            )
            .expect("spawn env");
        let gateway_cap = kernel
            .grant_channel(android, gateway, Badge(0xA))
            .expect("grant");
        let gui_driver_cap = kernel
            .grant_channel(kernel_env, gui, DRIVER_BADGE)
            .expect("grant");
        let android_gui_cap = kernel
            .grant_channel(android, gui, Badge(0xA))
            .expect("grant");

        // --- network ---------------------------------------------------------
        let mut network = Network::new("smart-meter-world");
        let meter_addr = Addr::new("meter-7.home.example");
        let utility_addr = Addr::new("utility.example.org");
        network.register(meter_addr.clone());
        network.register(utility_addr.clone());
        network.set_attack(config.network_attack);

        let mut world = SmartMeterWorld {
            registry,
            kernel,
            trustzone,
            utility,
            network,
            meter_domain,
            meter_env,
            meter_cap,
            meter_policy,
            frontend_env,
            frontend_cap,
            gateway_cap,
            gui_driver_cap,
            android_gui_cap,
            kernel_env,
            meter_addr,
            utility_addr,
        };
        world.register_gui_labels();
        world
    }

    fn register_gui_labels(&mut self) {
        // The composer binds GUI badges to labels: badge 0xA (=10) is the
        // Android window, permanently labeled untrusted — whatever it
        // paints.
        let env = self.kernel_env;
        let cap = self.gui_driver_cap;
        self.kernel
            .invoke(env, &cap, b"register:10=Android Apps=untrusted")
            .expect("register android window");
    }

    fn meter_call(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let (env, cap) = (self.meter_env, self.meter_cap);
        match &mut self.trustzone {
            Some(tz) => tz.invoke(env, &cap, data).map_err(|e| e.to_string()),
            None => self
                .kernel
                .invoke(env, &cap, data)
                .map_err(|e| e.to_string()),
        }
    }

    fn meter_call_batch(&mut self, payloads: &[&[u8]]) -> Result<Vec<Vec<u8>>, String> {
        let (env, cap) = (self.meter_env, self.meter_cap);
        match &mut self.trustzone {
            Some(tz) => tz
                .invoke_batch(env, &cap, payloads)
                .map_err(|e| e.to_string()),
            None => self
                .kernel
                .invoke_batch(env, &cap, payloads)
                .map_err(|e| e.to_string()),
        }
    }

    fn utility_call(&mut self, data: &[u8]) -> Result<Vec<u8>, String> {
        let (env, cap) = (self.frontend_env, self.frontend_cap);
        self.utility
            .invoke(env, &cap, data)
            .map_err(|e| e.to_string())
    }

    /// Ships `payload` from the meter to the utility over the adversarial
    /// network, returning what (if anything) arrives.
    fn ship_to_utility(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        let (from, to) = (self.meter_addr.clone(), self.utility_addr.clone());
        self.network.send(&from, &to, payload).ok()?;
        self.network
            .recv(&self.utility_addr.clone())
            .ok()
            .flatten()
            .map(|p| p.payload)
    }

    fn ship_to_meter(&mut self, payload: &[u8]) -> Option<Vec<u8>> {
        let (from, to) = (self.utility_addr.clone(), self.meter_addr.clone());
        self.network.send(&from, &to, payload).ok()?;
        self.network
            .recv(&self.meter_addr.clone())
            .ok()
            .flatten()
            .map(|p| p.payload)
    }

    /// Runs one full billing round: handshake with mutual channel-bound
    /// attestation, one reading, one acknowledgment. The whole round is
    /// recorded as one `billing round` span on each side's fabric, so
    /// every handshake and record invocation nests into a causal tree
    /// (rendered by [`SmartMeterWorld::telemetry_report`]).
    pub fn billing_round(&mut self) -> BillingOutcome {
        let meter_span = {
            let sub: &mut dyn Substrate = match &mut self.trustzone {
                Some(tz) => tz,
                None => &mut self.kernel,
            };
            let at = sub.now();
            sub.telemetry_mut_ref()
                .map(|t| t.begin_span("billing round", "app", at))
        };
        let utility_span = {
            let at = self.utility.now();
            self.utility
                .telemetry_mut_ref()
                .map(|t| t.begin_span("billing round", "app", at))
        };
        let outcome = self.billing_round_steps();
        let code = match &outcome {
            BillingOutcome::Billed(_) => span_outcome::OK,
            _ => span_outcome::FAILED,
        };
        if let Some(id) = meter_span {
            let sub: &mut dyn Substrate = match &mut self.trustzone {
                Some(tz) => tz,
                None => &mut self.kernel,
            };
            let at = sub.now();
            if let Some(t) = sub.telemetry_mut_ref() {
                t.end_span(id, at, code);
            }
        }
        if let Some(id) = utility_span {
            let at = self.utility.now();
            if let Some(t) = self.utility.telemetry_mut_ref() {
                t.end_span(id, at, code);
            }
        }
        outcome
    }

    fn billing_round_steps(&mut self) -> BillingOutcome {
        // 1. Meter → utility: ClientHello.
        let hello = match self.meter_call(b"hello:") {
            Ok(h) => h,
            Err(e) => return BillingOutcome::Refused(format!("meter: {e}")),
        };
        let Some(hello_wire) = self.ship_to_utility(&hello) else {
            return BillingOutcome::NoService("hello lost".into());
        };
        // 2. Utility: accept, produce ServerHello (+ SGX evidence).
        let server_hello = match self.utility_call(&[b"accept:".as_slice(), &hello_wire].concat()) {
            Ok(sh) => sh,
            Err(e) => return BillingOutcome::Refused(format!("utility: {e}")),
        };
        let Some(sh_wire) = self.ship_to_meter(&server_hello) else {
            return BillingOutcome::NoService("server hello lost".into());
        };
        // 3. Meter: verify utility evidence, produce Finish (+ TZ evidence).
        let finish = match self.meter_call(&[b"complete:".as_slice(), &sh_wire].concat()) {
            Ok(f) => f,
            Err(e) => return BillingOutcome::Refused(format!("meter: {e}")),
        };
        let Some(finish_wire) = self.ship_to_utility(&finish) else {
            return BillingOutcome::NoService("finish lost".into());
        };
        // 4. Utility: verify meter evidence.
        if let Err(e) = self.utility_call(&[b"finish:".as_slice(), &finish_wire].concat()) {
            return BillingOutcome::Refused(format!("utility: {e}"));
        }
        // 5. Reading + ack.
        let record = match self.meter_call(b"send-reading:") {
            Ok(r) => r,
            Err(e) => return BillingOutcome::Refused(format!("meter: {e}")),
        };
        let Some(record_wire) = self.ship_to_utility(&record) else {
            return BillingOutcome::NoService("reading lost".into());
        };
        let ack_record = match self.utility_call(&[b"process:".as_slice(), &record_wire].concat()) {
            Ok(a) => a,
            Err(e) => return BillingOutcome::Refused(format!("utility: {e}")),
        };
        let Some(ack_wire) = self.ship_to_meter(&ack_record) else {
            return BillingOutcome::NoService("ack lost".into());
        };
        match self.meter_call(&[b"recv:".as_slice(), &ack_wire].concat()) {
            Ok(ack) => BillingOutcome::Billed(String::from_utf8_lossy(&ack).into_owned()),
            Err(e) => BillingOutcome::Refused(format!("meter: {e}")),
        }
    }

    /// Sends `n` further readings over the session established by a
    /// completed [`SmartMeterWorld::billing_round`], using the batched
    /// invocation path on the meter side: one `send-reading:` batch
    /// produces all sealed records (one capability check, one span),
    /// each record still crosses the adversarial network and is
    /// processed by the utility individually, and one final `recv:`
    /// batch consumes every acknowledgment. Returns the acks in order.
    ///
    /// # Errors
    ///
    /// The first failing step's error, as a message.
    pub fn batched_readings(&mut self, n: usize) -> Result<Vec<String>, String> {
        let requests: Vec<&[u8]> = (0..n).map(|_| b"send-reading:".as_slice()).collect();
        let records = self.meter_call_batch(&requests)?;
        let mut ack_requests = Vec::with_capacity(records.len());
        for record in &records {
            let wire = self
                .ship_to_utility(record)
                .ok_or_else(|| "reading lost".to_string())?;
            let ack = self.utility_call(&[b"process:".as_slice(), &wire].concat())?;
            let ack_wire = self
                .ship_to_meter(&ack)
                .ok_or_else(|| "ack lost".to_string())?;
            ack_requests.push([b"recv:".as_slice(), &ack_wire].concat());
        }
        let views: Vec<&[u8]> = ack_requests.iter().map(Vec::as_slice).collect();
        let acks = self.meter_call_batch(&views)?;
        Ok(acks
            .into_iter()
            .map(|a| String::from_utf8_lossy(&a).into_owned())
            .collect())
    }

    /// Compromised Android floods `dest` with `attempts` sends of
    /// `bytes_each`; returns (allowed, denied) as enforced by the gateway.
    pub fn android_flood(&mut self, dest: &str, attempts: u32, bytes_each: u32) -> (u32, u32) {
        let android_cap = self.gateway_cap;
        let android = android_cap.owner;
        let mut allowed = 0;
        let mut denied = 0;
        for _ in 0..attempts {
            let req = format!("send:{dest}:{bytes_each}");
            match self.kernel.invoke(android, &android_cap, req.as_bytes()) {
                Ok(_) => allowed += 1,
                Err(_) => denied += 1,
            }
        }
        (allowed, denied)
    }

    /// Android draws a phishing screen; returns
    /// `(indicator shown to the user, screen content)`.
    pub fn phishing_attempt(&mut self) -> (String, String) {
        let android_cap = self.android_gui_cap;
        let android = android_cap.owner;
        self.kernel
            .invoke(
                android,
                &android_cap,
                b"draw:== Meter Readings: enter your utility password ==",
            )
            .expect("draw");
        let env = self.kernel_env;
        let driver = self.gui_driver_cap;
        self.kernel
            .invoke(env, &driver, b"focus:10")
            .expect("focus");
        let indicator = self
            .kernel
            .invoke(env, &driver, b"indicator:")
            .expect("indicator");
        let screen = self
            .kernel
            .invoke(env, &driver, b"screen:")
            .expect("screen");
        (
            String::from_utf8_lossy(&indicator).into_owned(),
            String::from_utf8_lossy(&screen).into_owned(),
        )
    }

    /// The meter agent's domain (attack experiments aim hardware probes
    /// at its frames through [`SmartMeterWorld::trustzone`]).
    pub fn meter_domain(&self) -> DomainId {
        self.meter_domain
    }

    /// Renders both sides' span trees — the meter substrate's and the
    /// utility's — so a billing round can be read as the causal story
    /// it is.
    pub fn telemetry_report(&self) -> String {
        let meter = match &self.trustzone {
            Some(tz) => tz.telemetry_ref(),
            None => self.kernel.telemetry_ref(),
        };
        format!(
            "meter:\n{}utility:\n{}",
            meter
                .map(lateral_telemetry::Telemetry::render_tree)
                .unwrap_or_default(),
            self.utility
                .telemetry_ref()
                .map(lateral_telemetry::Telemetry::render_tree)
                .unwrap_or_default(),
        )
    }

    /// Installs a deterministic fault plan into the TrustZone fabric
    /// (robustness experiments crash the meter agent at precise points).
    ///
    /// # Panics
    ///
    /// Panics for fake-meter worlds — there is no TrustZone to inject
    /// into.
    pub fn inject_meter_fault(&mut self, plan: lateral_substrate::fault::FaultPlan) {
        self.trustzone
            .as_mut()
            .expect("fault injection targets the real TrustZone meter")
            .fabric_mut_ref()
            .expect("trustzone routes through the fabric")
            .install_fault_plan(plan);
    }

    /// The supervision cycle for a crashed meter agent: re-resolve the
    /// firmware through the registry (a revoked image grounds the
    /// meter), destroy the fail-stopped domain, respawn the freshly
    /// served bytes, verify the successor measures identically, and
    /// re-grant the environment channel. Channel state is *not*
    /// replayed — the next [`SmartMeterWorld::billing_round`] performs
    /// a full mutually attested handshake, which is exactly how the
    /// successor proves itself to the utility again.
    ///
    /// # Errors
    ///
    /// A string describing the failure (no TrustZone, refused firmware
    /// resolution, spawn failure, or measurement divergence).
    pub fn recover_meter(&mut self) -> Result<(), String> {
        let firmware = self
            .registry
            .resolve("meter-agent")
            .map_err(|e| format!("firmware resolution: {e}"))?;
        let tz = self
            .trustzone
            .as_mut()
            .ok_or_else(|| "fake meters are not supervised".to_string())?;
        let spec = DomainSpec::named("meter-agent").with_image(&firmware.image);
        let baseline = spec.measurement();
        let _ = tz.destroy(self.meter_domain);
        let agent = MeterAgent::new(
            "meter-7",
            SigningKey::from_seed(b"meter channel identity"),
            self.meter_policy.clone(),
        );
        let successor = tz.spawn(spec, Box::new(agent)).map_err(|e| e.to_string())?;
        if tz.measurement(successor).map_err(|e| e.to_string())? != baseline {
            let _ = tz.destroy(successor);
            return Err("successor measurement diverged from meter firmware".into());
        }
        self.meter_cap = tz
            .grant_channel(self.meter_env, successor, Badge(1))
            .map_err(|e| e.to_string())?;
        self.meter_domain = successor;
        Ok(())
    }

    /// Asks the deployed frontend how many identified records it
    /// retained (ground truth for the privacy property).
    pub fn retained_identified_records(&mut self) -> u64 {
        let raw = self.utility_call(b"retained:").expect("retained query");
        String::from_utf8_lossy(&raw).parse().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_world_bills_successfully() {
        let mut world = SmartMeterWorld::new(WorldConfig::default());
        match world.billing_round() {
            BillingOutcome::Billed(ack) => {
                assert!(ack.starts_with("billed:meter-7:"), "ack: {ack}");
            }
            other => panic!("expected billing, got {other:?}"),
        }
        assert_eq!(world.retained_identified_records(), 0);
        // Subsequent rounds reuse… a new handshake each round also works.
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));
    }

    #[test]
    fn batched_readings_bill_in_order_after_handshake() {
        let mut world = SmartMeterWorld::new(WorldConfig::default());
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));
        let acks = world.batched_readings(3).expect("batched readings bill");
        assert_eq!(acks.len(), 3);
        for ack in &acks {
            assert!(ack.starts_with("billed:meter-7:"), "ack: {ack}");
        }
        assert_eq!(world.retained_identified_records(), 0);
        // The session survives the batch: a fresh full round still works.
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));
    }

    #[test]
    fn billing_round_is_one_span_tree_on_each_side() {
        let mut world = SmartMeterWorld::new(WorldConfig::default());
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));
        let report = world.telemetry_report();
        let (meter, utility) = report
            .split_once("utility:\n")
            .expect("report has both sides");
        for side in [meter, utility] {
            assert!(
                side.contains("billing round [app]"),
                "round root present: {side}"
            );
            // Invocations nest under the round root (two-space indent).
            assert!(
                side.contains("\n  invoke "),
                "invocations nest under the round: {side}"
            );
        }
        // A refused round closes its spans as failed.
        let mut world = SmartMeterWorld::new(WorldConfig {
            manipulated_anonymizer: true,
            ..WorldConfig::default()
        });
        assert!(matches!(world.billing_round(), BillingOutcome::Refused(_)));
        assert!(
            world.telemetry_report().contains("billing round [app]"),
            "failed rounds still record the span"
        );
    }

    #[test]
    fn manipulated_anonymizer_is_refused_by_the_meter() {
        let mut world = SmartMeterWorld::new(WorldConfig {
            manipulated_anonymizer: true,
            ..WorldConfig::default()
        });
        match world.billing_round() {
            BillingOutcome::Refused(reason) => {
                assert!(
                    reason.contains("meter:"),
                    "refusal came from the meter: {reason}"
                );
            }
            other => panic!("expected refusal, got {other:?}"),
        }
        // And crucially: no reading was ever sent, so nothing is retained.
        assert_eq!(world.retained_identified_records(), 0);
    }

    #[test]
    fn fake_meter_is_refused_by_the_utility() {
        let mut world = SmartMeterWorld::new(WorldConfig {
            fake_meter: true,
            ..WorldConfig::default()
        });
        match world.billing_round() {
            BillingOutcome::Refused(reason) => {
                assert!(
                    reason.contains("utility:"),
                    "refusal came from the utility: {reason}"
                );
            }
            other => panic!("expected refusal, got {other:?}"),
        }
    }

    #[test]
    fn corrupting_network_cannot_forge_but_can_deny() {
        let mut world = SmartMeterWorld::new(WorldConfig {
            network_attack: AttackMode::CorruptAll,
            ..WorldConfig::default()
        });
        match world.billing_round() {
            BillingOutcome::Billed(_) => panic!("corrupted traffic must not bill"),
            BillingOutcome::Refused(_) | BillingOutcome::NoService(_) => {}
        }
    }

    #[test]
    fn dropping_network_denies_service_only() {
        let mut world = SmartMeterWorld::new(WorldConfig {
            network_attack: AttackMode::DropAll,
            ..WorldConfig::default()
        });
        assert!(matches!(
            world.billing_round(),
            BillingOutcome::NoService(_)
        ));
    }

    #[test]
    fn crashed_meter_recovers_and_reattests() {
        use lateral_substrate::fault::{FaultPlan, FaultSpec};

        let mut world = SmartMeterWorld::new(WorldConfig::default());
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));

        // The meter firmware fail-stops on its next invocation.
        world.inject_meter_fault(FaultPlan::new().with(FaultSpec::crash("meter-agent", 1)));
        match world.billing_round() {
            BillingOutcome::Refused(reason) => {
                assert!(reason.contains("crashed"), "fail-stop visible: {reason}");
            }
            other => panic!("expected refusal during the crash window, got {other:?}"),
        }
        // The crash window persists until something supervises it.
        assert!(!matches!(world.billing_round(), BillingOutcome::Billed(_)));

        // Destroy → respawn → re-measure → re-grant; the next round then
        // re-attests the successor to the utility from scratch.
        world.recover_meter().unwrap();
        match world.billing_round() {
            BillingOutcome::Billed(ack) => assert!(ack.starts_with("billed:meter-7:")),
            other => panic!("expected recovery, got {other:?}"),
        }
        assert_eq!(world.retained_identified_records(), 0);
    }

    #[test]
    fn revoked_firmware_grounds_the_meter_until_recertified() {
        use lateral_registry::measurement_of;
        use lateral_substrate::fault::{FaultPlan, FaultSpec};

        let mut world = SmartMeterWorld::new(WorldConfig::default());
        assert!(matches!(world.billing_round(), BillingOutcome::Billed(_)));

        // A vulnerability is found in the deployed firmware; the
        // registry revokes it while the meter happens to crash.
        world
            .registry
            .revoke(measurement_of(METER_IMAGE), "field recall")
            .unwrap();
        world.inject_meter_fault(FaultPlan::new().with(FaultSpec::crash("meter-agent", 1)));
        assert!(!matches!(world.billing_round(), BillingOutcome::Billed(_)));

        // Recovery re-resolves through the registry and is refused — the
        // supervisor must not respawn recalled firmware.
        let err = world.recover_meter().unwrap_err();
        assert!(err.contains("revoked"), "{err}");
        assert!(!matches!(world.billing_round(), BillingOutcome::Billed(_)));
    }

    #[test]
    fn gateway_caps_android_flood() {
        let mut world = SmartMeterWorld::new(WorldConfig::default());
        // Non-whitelisted DDoS target: all denied.
        let (allowed, denied) = world.android_flood("victim.example.net", 50, 100);
        assert_eq!(allowed, 0);
        assert_eq!(denied, 50);
        // Whitelisted utility: budget-capped.
        let (allowed, denied) = world.android_flood("utility.example.org", 50, 1000);
        assert_eq!(allowed, 8, "8000-byte budget = 8 sends");
        assert_eq!(denied, 42);
    }

    #[test]
    fn trusted_indicator_defeats_phishing() {
        let mut world = SmartMeterWorld::new(WorldConfig::default());
        let (indicator, screen) = world.phishing_attempt();
        assert!(screen.contains("enter your utility password"));
        assert_eq!(indicator, "Android Apps [red]");
    }
}
